"""Packaging for the self-stabilizing MDST reproduction.

Installs the ``repro`` package from ``src/`` and wires the ``repro``
console script (``repro run | sweep | bench | report``, see
:mod:`repro.runtime.cli`).  Plain setuptools keeps editable installs
(``pip install -e .``) working in offline environments where the ``wheel``
package is unavailable; for development without installing, prepend
``src/`` to ``PYTHONPATH`` instead.
"""

from setuptools import find_packages, setup

setup(
    name="repro-mdst",
    version="1.1.0",
    description=("Reproduction of Blin, Potop-Butucaru & Rovedakis (IPDPS "
                 "2009): self-stabilizing minimum-degree spanning tree "
                 "within one from the optimal degree"),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=[
        "networkx>=2.6",
        "numpy>=1.21",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.runtime.cli:main",
        ],
    },
)
