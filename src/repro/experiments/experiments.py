"""Experiment definitions E1-E8 (see docs/experiments.md).

Each function runs one experiment over the given profile and returns an
:class:`~repro.analysis.reporting.ExperimentReport` whose rows are the
"table" that experiment regenerates.  The pytest benchmarks in
``benchmarks/`` call these functions with the ``quick`` profile and print the
tables.

Since the runtime refactor every experiment **dispatches through the
parallel sweep engine** (:class:`repro.runtime.SweepEngine`): it first
expands its workload into a list of serializable
:class:`~repro.runtime.spec.RunSpec`, then executes them with ``workers``
processes (``workers=1``, the default, is the original serial path) and an
optional on-disk :class:`~repro.runtime.cache.ResultCache`, and finally
assembles the rows in deterministic workload order.  Results are therefore
identical regardless of the worker count, and repeated invocations with a
cache resolve without re-running simulations.

The underlying simulations run on the activity-aware kernel
(:mod:`repro.sim.network`): enabled-event scheduling, configuration-version
caching and incremental convergence detection.  The kernel only skips
redundant predicate evaluations and idle-channel polling, so every row in
every table is byte-identical to the pre-kernel implementation -- the round,
step and message counts are part of the reproduced claims.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.convergence import loglog_slope, paper_round_bound
from ..analysis.memory import message_bound_bits
from ..analysis.reporting import ExperimentReport
from ..runtime.cache import ResultCache
from ..runtime.engine import SweepEngine
from ..runtime.spec import RunSpec
from .config import ExperimentProfile, get_profile
from .workloads import (
    baseline_workload,
    hub_workload,
    quality_workload,
    scaling_workload,
    stabilization_workload,
)

__all__ = [
    "EXPERIMENTS",
    "experiment_e1_degree_quality",
    "experiment_e2_convergence",
    "experiment_e3_memory",
    "experiment_e4_message_length",
    "experiment_e5_self_stabilization",
    "experiment_e6_baselines",
    "experiment_e7_simultaneous_reduction",
    "experiment_e8_improvement_cost",
    "run_all_experiments",
]


def _resolve(profile: ExperimentProfile | str) -> ExperimentProfile:
    return get_profile(profile) if isinstance(profile, str) else profile


def _engine(workers: int, cache: Optional[ResultCache]) -> SweepEngine:
    return SweepEngine(workers=workers, cache=cache)


def _pick(row: Dict[str, object], keys: Sequence[str]) -> Dict[str, object]:
    """Project a task row onto the experiment's column set, in order."""
    return {key: row[key] for key in keys if key in row}


# ---------------------------------------------------------------------------
# E1: Theorem 2 -- final degree within one of optimal
# ---------------------------------------------------------------------------

def experiment_e1_degree_quality(profile: ExperimentProfile | str = "quick",
                                 use_protocol: bool = True,
                                 workers: int = 1,
                                 cache: Optional[ResultCache] = None
                                 ) -> ExperimentReport:
    """Final tree degree of the algorithm vs Δ* (exact or certified) and FR."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E1",
        description="Theorem 2: deg(T) <= Δ*+1 across graph families",
        metadata={"profile": profile.name},
    )
    protocol_cap = max(profile.protocol_sizes)
    specs = [
        RunSpec(task="quality", family=inst.family, n=inst.n, seed=inst.seed,
                max_rounds=profile.max_rounds,
                params=(("protocol_cap", protocol_cap),
                        ("use_protocol", use_protocol)))
        for inst in quality_workload(profile)
    ]
    for outcome in _engine(workers, cache).execute(specs):
        report.add_row(**outcome.row)
    return report


# ---------------------------------------------------------------------------
# E2: Lemma 5 -- convergence rounds scale polynomially
# ---------------------------------------------------------------------------

def experiment_e2_convergence(profile: ExperimentProfile | str = "quick",
                              workers: int = 1,
                              cache: Optional[ResultCache] = None
                              ) -> ExperimentReport:
    """Convergence rounds / messages vs network size, against the paper bound."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E2",
        description="Lemma 5: convergence rounds vs n, m (paper bound m*n^2*log n)",
        metadata={"profile": profile.name},
    )
    specs = [
        RunSpec(task="protocol", family=inst.family, n=inst.n, seed=inst.seed,
                initial="isolated", max_rounds=profile.max_rounds)
        for inst in scaling_workload(profile)
    ]
    for outcome in _engine(workers, cache).execute(specs):
        row = _pick(outcome.row, ("family", "n", "m", "seed", "converged",
                                  "rounds", "messages", "tree_degree"))
        row["paper_bound"] = int(paper_round_bound(int(outcome.row["n"]),
                                                   int(outcome.row["m"])))
        report.add_row(**row)
    # attach the empirical scaling exponent per family
    slopes: Dict[str, float] = {}
    for family, rows in report.group_by("family").items():
        sizes = [r["n"] for r in rows if r["converged"]]
        rounds = [r["rounds"] for r in rows if r["converged"]]
        if len(set(sizes)) >= 2:
            slopes[str(family)] = round(loglog_slope(sizes, rounds), 3)
    report.metadata["round_scaling_exponents"] = slopes
    return report


# ---------------------------------------------------------------------------
# E3: memory O(δ log n)
# ---------------------------------------------------------------------------

def experiment_e3_memory(profile: ExperimentProfile | str = "quick",
                         workers: int = 1,
                         cache: Optional[ResultCache] = None
                         ) -> ExperimentReport:
    """Measured per-node state bits vs the O(δ log n) envelope."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E3",
        description="Lemma 5: per-node memory vs O(δ log n) bound",
        metadata={"profile": profile.name},
    )
    specs = [
        RunSpec(task="memory", family=inst.family, n=inst.n, seed=inst.seed)
        for inst in scaling_workload(profile)
    ]
    for outcome in _engine(workers, cache).execute(specs):
        report.add_row(**outcome.row)
    return report


# ---------------------------------------------------------------------------
# E4: message length O(n log n)
# ---------------------------------------------------------------------------

def experiment_e4_message_length(profile: ExperimentProfile | str = "quick",
                                 workers: int = 1,
                                 cache: Optional[ResultCache] = None
                                 ) -> ExperimentReport:
    """Largest message observed during a run vs the O(n log n) envelope."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E4",
        description="Message length vs O(n log n) bound",
        metadata={"profile": profile.name},
    )
    specs = [
        RunSpec(task="protocol", family=inst.family, n=inst.n, seed=inst.seed,
                initial="bfs_tree", max_rounds=profile.max_rounds)
        for inst in scaling_workload(profile)
    ]
    for outcome in _engine(workers, cache).execute(specs):
        n = int(outcome.row["n"])
        bits = int(outcome.row.get("max_message_bits", 0))
        report.add_row(
            family=outcome.row["family"],
            n=n,
            m=outcome.row["m"],
            seed=outcome.row["seed"],
            max_message_bits=bits,
            bound_bits=message_bound_bits(n),
            within_bound=bits <= message_bound_bits(n),
            converged=outcome.row["converged"],
        )
    return report


# ---------------------------------------------------------------------------
# E5: self-stabilization -- convergence and recovery from arbitrary states
# ---------------------------------------------------------------------------

def experiment_e5_self_stabilization(profile: ExperimentProfile | str = "quick",
                                     workers: int = 1,
                                     cache: Optional[ResultCache] = None
                                     ) -> ExperimentReport:
    """Convergence from corrupted states, under several schedulers, plus
    recovery after a mid-run transient fault."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E5",
        description="Definition 1: convergence + closure from arbitrary configurations",
        metadata={"profile": profile.name},
    )
    specs: List[RunSpec] = []
    modes: List[str] = []
    for instance in stabilization_workload(profile):
        for scheduler in profile.schedulers:
            for initial in ("corrupted", "isolated"):
                specs.append(RunSpec(
                    task="protocol", family=instance.family, n=instance.n,
                    seed=instance.seed, scheduler=scheduler, initial=initial,
                    max_rounds=profile.max_rounds))
                modes.append("cold-start")
        # recovery: converge first, then corrupt half the nodes mid-run
        specs.append(RunSpec(
            task="protocol", family=instance.family, n=instance.n,
            seed=instance.seed, scheduler="synchronous", initial="bfs_tree",
            max_rounds=profile.max_rounds,
            fault_round=profile.max_rounds // 4, fault_fraction=0.5))
        modes.append("mid-run-fault")
    for outcome, mode in zip(_engine(workers, cache).execute(specs), modes):
        report.add_row(
            family=outcome.row["family"],
            n=outcome.row["n"],
            scheduler=outcome.row["scheduler"],
            initial=outcome.row["initial"],
            mode=mode,
            converged=outcome.row["converged"],
            rounds=outcome.row["rounds"],
            closure_violations=outcome.row["closure_violations"],
            tree_degree=outcome.row["tree_degree"],
        )
    return report


# ---------------------------------------------------------------------------
# E6: degree of MDST vs naive spanning trees
# ---------------------------------------------------------------------------

def experiment_e6_baselines(profile: ExperimentProfile | str = "quick",
                            workers: int = 1,
                            cache: Optional[ResultCache] = None
                            ) -> ExperimentReport:
    """Maximum degree of BFS/DFS/MST/random trees vs the algorithm's tree."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E6",
        description="Motivation: naive tree degree vs MDST degree",
        metadata={"profile": profile.name},
    )
    specs = [
        RunSpec(task="baselines", family=inst.family, n=inst.n, seed=inst.seed)
        for inst in baseline_workload(profile)
    ]
    for outcome in _engine(workers, cache).execute(specs):
        report.add_row(**outcome.row)
    return report


# ---------------------------------------------------------------------------
# E7: simultaneous reduction of several maximum-degree nodes
# ---------------------------------------------------------------------------

def experiment_e7_simultaneous_reduction(profile: ExperimentProfile | str = "quick",
                                         hub_counts: Sequence[int] = (2, 3, 4),
                                         workers: int = 1,
                                         cache: Optional[ResultCache] = None
                                         ) -> ExperimentReport:
    """Cost of reducing several hubs: serialized model vs concurrent model vs
    the real message-passing protocol."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E7",
        description="Simultaneous degree reduction on multi-hub graphs (vs serialized)",
        metadata={"profile": profile.name},
    )
    seen: set[tuple] = set()
    specs: List[RunSpec] = []
    for instance in hub_workload(profile, hub_counts=hub_counts):
        key = (instance.family, instance.n)
        if key in seen:
            continue
        seen.add(key)
        specs.append(RunSpec(
            task="hub", family=instance.family, n=instance.n, seed=instance.seed,
            initial="bfs_tree", max_rounds=profile.max_rounds))
    for outcome in _engine(workers, cache).execute(specs):
        report.add_row(**outcome.row)
    return report


# ---------------------------------------------------------------------------
# E8: cost of a single improvement (Figures 4-5 micro-benchmark)
# ---------------------------------------------------------------------------

def experiment_e8_improvement_cost(profile: ExperimentProfile | str = "quick",
                                   cycle_lengths: Sequence[int] = (6, 10, 16),
                                   workers: int = 1,
                                   cache: Optional[ResultCache] = None
                                   ) -> ExperimentReport:
    """Rounds and messages needed for one improvement on a cycle + hub graph."""
    profile = _resolve(profile)
    report = ExperimentReport(
        experiment="E8",
        description="Single improvement cost vs fundamental-cycle length (Figs 4-5)",
        metadata={"profile": profile.name},
    )
    specs = [
        RunSpec(task="improvement", family="hard_hub", n=length, seed=7,
                initial="bfs_tree", max_rounds=profile.max_rounds,
                params=(("hub_degree", length),))
        for length in cycle_lengths
    ]
    for outcome in _engine(workers, cache).execute(specs):
        report.add_row(**outcome.row)
    return report


EXPERIMENTS = {
    "E1": experiment_e1_degree_quality,
    "E2": experiment_e2_convergence,
    "E3": experiment_e3_memory,
    "E4": experiment_e4_message_length,
    "E5": experiment_e5_self_stabilization,
    "E6": experiment_e6_baselines,
    "E7": experiment_e7_simultaneous_reduction,
    "E8": experiment_e8_improvement_cost,
}


def run_all_experiments(profile: ExperimentProfile | str = "quick",
                        workers: int = 1,
                        cache: Optional[ResultCache] = None
                        ) -> Dict[str, ExperimentReport]:
    """Run every experiment and return the reports keyed by experiment id."""
    return {exp_id: func(profile, workers=workers, cache=cache)
            for exp_id, func in EXPERIMENTS.items()}
