"""Experiment definitions E1-E8 (see DESIGN.md §3 and EXPERIMENTS.md).

Each function runs one experiment over the given profile and returns an
:class:`~repro.analysis.reporting.ExperimentReport` whose rows are the
"table" that experiment regenerates.  The pytest benchmarks in
``benchmarks/`` call these functions with the ``quick`` profile and print the
tables; EXPERIMENTS.md records representative output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import networkx as nx
import numpy as np

from ..analysis.convergence import ConvergenceRecord, loglog_slope, paper_round_bound
from ..analysis.memory import memory_report, message_bound_bits, state_bound_bits
from ..analysis.metrics import evaluate_tree
from ..analysis.reporting import ExperimentReport
from ..baselines.blin_butelle import serialized_vs_concurrent_cost
from ..baselines.exact import exact_mdst_degree
from ..baselines.fuerer_raghavachari import fuerer_raghavachari
from ..baselines.local_search import greedy_local_search
from ..baselines.simple_trees import evaluate_simple_trees
from ..core.improvement import improvement_possible
from ..core.protocol import MDSTConfig, build_mdst_network, run_mdst
from ..core.reference import ReferenceMDST
from ..graphs.properties import is_hamiltonian_path_certificate, mdst_lower_bound
from ..graphs.spanning import bfs_spanning_tree, tree_degree
from ..sim.faults import FaultPlan
from .config import ExperimentProfile, get_profile
from .workloads import (
    WorkloadInstance,
    baseline_workload,
    hub_workload,
    quality_workload,
    scaling_workload,
    stabilization_workload,
)

__all__ = [
    "experiment_e1_degree_quality",
    "experiment_e2_convergence",
    "experiment_e3_memory",
    "experiment_e4_message_length",
    "experiment_e5_self_stabilization",
    "experiment_e6_baselines",
    "experiment_e7_simultaneous_reduction",
    "experiment_e8_improvement_cost",
    "run_all_experiments",
]


def _known_optimal(graph: nx.Graph, exact_limit: int = 12) -> Optional[int]:
    """Δ* when cheaply available: exact solver (small n) or a certificate."""
    cert = graph.graph.get("hamiltonian_path")
    if cert and is_hamiltonian_path_certificate(graph, cert):
        return 2
    if graph.graph.get("family") == "two_hub":
        # L leaves each adjacent to both hubs: any tree needs deg(a)+deg(b) >= L+1,
        # and a balanced split achieves ceil((L+1)/2) = L//2 + 1.
        leaves = graph.number_of_nodes() - 2
        return leaves // 2 + 1
    if graph.number_of_nodes() <= exact_limit:
        return exact_mdst_degree(graph)
    return None


# ---------------------------------------------------------------------------
# E1: Theorem 2 -- final degree within one of optimal
# ---------------------------------------------------------------------------

def experiment_e1_degree_quality(profile: ExperimentProfile | str = "quick",
                                 use_protocol: bool = True) -> ExperimentReport:
    """Final tree degree of the algorithm vs Δ* (exact or certified) and FR."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E1",
        description="Theorem 2: deg(T) <= Δ*+1 across graph families",
        metadata={"profile": profile.name},
    )
    for instance in quality_workload(profile):
        graph = instance.build()
        optimal = _known_optimal(graph)
        reference = ReferenceMDST(graph).run()
        fr = fuerer_raghavachari(graph)
        row: Dict[str, object] = {
            "family": instance.family,
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
            "seed": instance.seed,
            "optimal": optimal,
            "lower_bound": mdst_lower_bound(graph),
            "bfs_degree": tree_degree(graph.nodes, bfs_spanning_tree(graph)),
            "reference_degree": reference.final_degree,
            "fr_degree": fr.final_degree,
        }
        if use_protocol and graph.number_of_nodes() <= max(profile.protocol_sizes):
            result = run_mdst(graph, MDSTConfig(seed=instance.seed,
                                                max_rounds=profile.max_rounds))
            row["protocol_degree"] = result.tree_degree
            row["protocol_converged"] = result.converged
        if optimal is not None:
            achieved = row.get("protocol_degree", reference.final_degree)
            row["within_one"] = achieved <= optimal + 1
        report.add_row(**row)
    return report


# ---------------------------------------------------------------------------
# E2: Lemma 5 -- convergence rounds scale polynomially
# ---------------------------------------------------------------------------

def experiment_e2_convergence(profile: ExperimentProfile | str = "quick"
                              ) -> ExperimentReport:
    """Convergence rounds / messages vs network size, against the paper bound."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E2",
        description="Lemma 5: convergence rounds vs n, m (paper bound m*n^2*log n)",
        metadata={"profile": profile.name},
    )
    for instance in scaling_workload(profile):
        graph = instance.build()
        result = run_mdst(graph, MDSTConfig(seed=instance.seed, initial="isolated",
                                            max_rounds=profile.max_rounds))
        rounds = result.run.extra.get("convergence_round") or result.rounds
        report.add_row(
            family=instance.family,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            seed=instance.seed,
            converged=result.converged,
            rounds=rounds,
            messages=result.run.messages,
            tree_degree=result.tree_degree,
            paper_bound=int(paper_round_bound(graph.number_of_nodes(),
                                              graph.number_of_edges())),
        )
    # attach the empirical scaling exponent per family
    slopes: Dict[str, float] = {}
    for family, rows in report.group_by("family").items():
        sizes = [r["n"] for r in rows if r["converged"]]
        rounds = [r["rounds"] for r in rows if r["converged"]]
        if len(set(sizes)) >= 2:
            slopes[str(family)] = round(loglog_slope(sizes, rounds), 3)
    report.metadata["round_scaling_exponents"] = slopes
    return report


# ---------------------------------------------------------------------------
# E3: memory O(δ log n)
# ---------------------------------------------------------------------------

def experiment_e3_memory(profile: ExperimentProfile | str = "quick"
                         ) -> ExperimentReport:
    """Measured per-node state bits vs the O(δ log n) envelope."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E3",
        description="Lemma 5: per-node memory vs O(δ log n) bound",
        metadata={"profile": profile.name},
    )
    for instance in scaling_workload(profile):
        graph = instance.build()
        network = build_mdst_network(graph, MDSTConfig(seed=instance.seed))
        mem = memory_report(network)
        row = mem.as_dict()
        row["family"] = instance.family
        row["seed"] = instance.seed
        report.add_row(**row)
    return report


# ---------------------------------------------------------------------------
# E4: message length O(n log n)
# ---------------------------------------------------------------------------

def experiment_e4_message_length(profile: ExperimentProfile | str = "quick"
                                 ) -> ExperimentReport:
    """Largest message observed during a run vs the O(n log n) envelope."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E4",
        description="Message length vs O(n log n) bound",
        metadata={"profile": profile.name},
    )
    for instance in scaling_workload(profile):
        graph = instance.build()
        result = run_mdst(graph, MDSTConfig(seed=instance.seed, initial="bfs_tree",
                                            max_rounds=profile.max_rounds))
        n = graph.number_of_nodes()
        report.add_row(
            family=instance.family,
            n=n,
            m=graph.number_of_edges(),
            seed=instance.seed,
            max_message_bits=result.run.extra.get("max_message_bits", 0),
            bound_bits=message_bound_bits(n),
            within_bound=(result.run.extra.get("max_message_bits", 0)
                          <= message_bound_bits(n)),
            converged=result.converged,
        )
    return report


# ---------------------------------------------------------------------------
# E5: self-stabilization -- convergence and recovery from arbitrary states
# ---------------------------------------------------------------------------

def experiment_e5_self_stabilization(profile: ExperimentProfile | str = "quick"
                                     ) -> ExperimentReport:
    """Convergence from corrupted states, under several schedulers, plus
    recovery after a mid-run transient fault."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E5",
        description="Definition 1: convergence + closure from arbitrary configurations",
        metadata={"profile": profile.name},
    )
    for instance in stabilization_workload(profile):
        graph = instance.build()
        for scheduler in profile.schedulers:
            for initial in ("corrupted", "isolated"):
                result = run_mdst(graph, MDSTConfig(
                    seed=instance.seed, scheduler=scheduler, initial=initial,
                    max_rounds=profile.max_rounds))
                report.add_row(
                    family=instance.family,
                    n=graph.number_of_nodes(),
                    scheduler=scheduler,
                    initial=initial,
                    mode="cold-start",
                    converged=result.converged,
                    rounds=result.run.extra.get("convergence_round") or result.rounds,
                    closure_violations=len(result.report.closure_violations),
                    tree_degree=result.tree_degree,
                )
        # recovery: converge first, then corrupt half the nodes mid-run
        plan = FaultPlan().add(round_index=profile.max_rounds // 4, node_fraction=0.5)
        result = run_mdst(graph, MDSTConfig(seed=instance.seed, initial="bfs_tree",
                                            max_rounds=profile.max_rounds),
                          fault_plan=plan)
        report.add_row(
            family=instance.family,
            n=graph.number_of_nodes(),
            scheduler="synchronous",
            initial="bfs_tree",
            mode="mid-run-fault",
            converged=result.converged,
            rounds=result.run.extra.get("convergence_round") or result.rounds,
            closure_violations=len(result.report.closure_violations),
            tree_degree=result.tree_degree,
        )
    return report


# ---------------------------------------------------------------------------
# E6: degree of MDST vs naive spanning trees
# ---------------------------------------------------------------------------

def experiment_e6_baselines(profile: ExperimentProfile | str = "quick"
                            ) -> ExperimentReport:
    """Maximum degree of BFS/DFS/MST/random trees vs the algorithm's tree."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E6",
        description="Motivation: naive tree degree vs MDST degree",
        metadata={"profile": profile.name},
    )
    for instance in baseline_workload(profile):
        graph = instance.build()
        naive = evaluate_simple_trees(graph, seed=instance.seed)
        reference = ReferenceMDST(graph).run()
        local = greedy_local_search(graph)
        row: Dict[str, object] = {
            "family": instance.family,
            "n": graph.number_of_nodes(),
            "m": graph.number_of_edges(),
            "seed": instance.seed,
            "mdst_degree": reference.final_degree,
            "local_search_degree": local.final_degree,
            "lower_bound": mdst_lower_bound(graph),
        }
        for name, res in naive.items():
            row[f"{name}_degree"] = res.degree
        report.add_row(**row)
    return report


# ---------------------------------------------------------------------------
# E7: simultaneous reduction of several maximum-degree nodes
# ---------------------------------------------------------------------------

def experiment_e7_simultaneous_reduction(profile: ExperimentProfile | str = "quick",
                                         hub_counts: Sequence[int] = (2, 3, 4)
                                         ) -> ExperimentReport:
    """Cost of reducing several hubs: serialized model vs concurrent model vs
    the real message-passing protocol."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E7",
        description="Simultaneous degree reduction on multi-hub graphs (vs serialized)",
        metadata={"profile": profile.name},
    )
    seen: set[tuple] = set()
    for instance in hub_workload(profile, hub_counts=hub_counts):
        key = (instance.family, instance.n)
        if key in seen:
            continue
        seen.add(key)
        graph = instance.build()
        model = serialized_vs_concurrent_cost(graph)
        result = run_mdst(graph, MDSTConfig(seed=instance.seed, initial="bfs_tree",
                                            max_rounds=profile.max_rounds))
        initial_deg = tree_degree(graph.nodes, bfs_spanning_tree(graph))
        report.add_row(
            hubs=instance.n // 5,
            n=graph.number_of_nodes(),
            m=graph.number_of_edges(),
            initial_degree=initial_deg,
            final_degree=model.final_degree,
            swaps=model.swaps,
            serialized_rounds=model.serialized_rounds,
            concurrent_rounds=model.concurrent_rounds,
            speedup=round(model.speedup, 2),
            protocol_rounds=result.run.extra.get("convergence_round") or result.rounds,
            protocol_degree=result.tree_degree,
            protocol_converged=result.converged,
        )
    return report


# ---------------------------------------------------------------------------
# E8: cost of a single improvement (Figures 4-5 micro-benchmark)
# ---------------------------------------------------------------------------

def experiment_e8_improvement_cost(profile: ExperimentProfile | str = "quick",
                                   cycle_lengths: Sequence[int] = (6, 10, 16)
                                   ) -> ExperimentReport:
    """Rounds and messages needed for one improvement on a cycle + hub graph."""
    profile = get_profile(profile) if isinstance(profile, str) else profile
    report = ExperimentReport(
        experiment="E8",
        description="Single improvement cost vs fundamental-cycle length (Figs 4-5)",
        metadata={"profile": profile.name},
    )
    from ..graphs.generators import hard_hub_graph
    for length in cycle_lengths:
        graph = hard_hub_graph(length)
        initial = bfs_spanning_tree(graph, root=0)
        initial_degree = tree_degree(graph.nodes, initial)
        result = run_mdst(graph, MDSTConfig(seed=7, initial="bfs_tree",
                                            max_rounds=profile.max_rounds),
                          initial_tree=initial)
        by_type = result.run.extra.get("deliveries_by_type", {})
        report.add_row(
            hub_degree=length,
            n=graph.number_of_nodes(),
            initial_degree=initial_degree,
            final_degree=result.tree_degree,
            converged=result.converged,
            rounds=result.run.extra.get("convergence_round") or result.rounds,
            search_messages=by_type.get("Search", 0),
            remove_messages=by_type.get("Remove", 0),
            back_messages=by_type.get("Back", 0),
            deblock_messages=by_type.get("Deblock", 0),
        )
    return report


def run_all_experiments(profile: ExperimentProfile | str = "quick"
                        ) -> Dict[str, ExperimentReport]:
    """Run every experiment and return the reports keyed by experiment id."""
    return {
        "E1": experiment_e1_degree_quality(profile),
        "E2": experiment_e2_convergence(profile),
        "E3": experiment_e3_memory(profile),
        "E4": experiment_e4_message_length(profile),
        "E5": experiment_e5_self_stabilization(profile),
        "E6": experiment_e6_baselines(profile),
        "E7": experiment_e7_simultaneous_reduction(profile),
        "E8": experiment_e8_improvement_cost(profile),
    }
