"""Workload definitions: which graphs each experiment runs on.

A workload is a list of :class:`WorkloadInstance` (family, size, seed).  The
selections mirror the paper's motivation: ad-hoc/sensor-style geometric
graphs, peer-to-peer-style random graphs, plus structured and adversarial
families whose optimal degree is known or cheaply boundable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import networkx as nx

from ..graphs.generators import make_graph
from .config import ExperimentProfile

__all__ = ["WorkloadInstance", "instantiate", "quality_workload",
           "scaling_workload", "stabilization_workload", "hub_workload",
           "baseline_workload"]


@dataclass(frozen=True)
class WorkloadInstance:
    """One graph instance to run an experiment on."""

    family: str
    n: int
    seed: int

    def build(self) -> nx.Graph:
        return make_graph(self.family, self.n, seed=self.seed)

    @property
    def label(self) -> str:
        return f"{self.family}-n{self.n}-s{self.seed}"


def instantiate(instances: Iterable[WorkloadInstance]) -> List[nx.Graph]:
    """Build every instance of a workload."""
    return [inst.build() for inst in instances]


def quality_workload(profile: ExperimentProfile) -> List[WorkloadInstance]:
    """E1: families with computable / known Δ*, small enough for exact solving
    plus larger instances with certificates (Hamiltonian, two-hub)."""
    families_exact = ["complete", "wheel", "erdos_renyi_dense", "two_hub",
                      "lollipop", "hard_hub", "ring_with_chords"]
    families_large = ["dense_hamiltonian", "two_hub", "star_of_cliques",
                      "random_geometric", "erdos_renyi_sparse"]
    instances: List[WorkloadInstance] = []
    for rep in range(profile.repetitions):
        seed = profile.seed_for(rep)
        for family in families_exact:
            for n in profile.exact_sizes:
                instances.append(WorkloadInstance(family, n, seed))
        for family in families_large:
            for n in profile.protocol_sizes:
                instances.append(WorkloadInstance(family, n, seed))
    return instances


def scaling_workload(profile: ExperimentProfile, reference: bool = False
                     ) -> List[WorkloadInstance]:
    """E2/E3/E4: size sweeps on sparse and dense random families."""
    families = ["erdos_renyi_sparse", "random_geometric", "ring_with_chords",
                "erdos_renyi_dense"]
    sizes = profile.reference_sizes if reference else profile.protocol_sizes
    instances: List[WorkloadInstance] = []
    for rep in range(profile.repetitions):
        seed = profile.seed_for(rep)
        for family in families:
            for n in sizes:
                instances.append(WorkloadInstance(family, n, seed))
    return instances


def stabilization_workload(profile: ExperimentProfile) -> List[WorkloadInstance]:
    """E5: moderate instances used for corruption / recovery experiments."""
    families = ["erdos_renyi_sparse", "random_geometric", "grid", "wheel"]
    instances: List[WorkloadInstance] = []
    for rep in range(profile.repetitions):
        seed = profile.seed_for(rep)
        for family in families:
            n = profile.protocol_sizes[min(1, len(profile.protocol_sizes) - 1)]
            instances.append(WorkloadInstance(family, n, seed))
    return instances


def hub_workload(profile: ExperimentProfile, hub_counts: Sequence[int] = (2, 3, 4)
                 ) -> List[WorkloadInstance]:
    """E7: star-of-cliques instances with a growing number of hubs."""
    instances: List[WorkloadInstance] = []
    for rep in range(profile.repetitions):
        seed = profile.seed_for(rep)
        for hubs in hub_counts:
            # star_of_cliques ignores the seed; n maps to hub count via n // 5
            instances.append(WorkloadInstance("star_of_cliques", hubs * 5, seed))
    return instances


def baseline_workload(profile: ExperimentProfile) -> List[WorkloadInstance]:
    """E6: families where naive trees are clearly sub-optimal."""
    families = ["complete", "erdos_renyi_dense", "barabasi_albert", "wheel",
                "random_geometric", "dense_hamiltonian"]
    instances: List[WorkloadInstance] = []
    for rep in range(profile.repetitions):
        seed = profile.seed_for(rep)
        for family in families:
            for n in profile.protocol_sizes[-2:]:
                instances.append(WorkloadInstance(family, n, seed))
    return instances
