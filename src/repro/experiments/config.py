"""Experiment configuration: sizes, repetitions, schedulers, quick mode.

Every experiment can run in two profiles:

* ``quick`` -- small networks, one repetition; used by the pytest benchmark
  suite so the whole harness regenerates every table in minutes on a laptop;
* ``full``  -- the sizes reported in EXPERIMENTS.md.

The profiles differ only in scale, never in code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["ExperimentProfile", "QUICK_PROFILE", "FULL_PROFILE", "get_profile"]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale parameters shared by the experiment definitions."""

    name: str
    #: node counts used by protocol-level (message-passing) sweeps
    protocol_sizes: Tuple[int, ...]
    #: node counts used by reference-engine (centralized) sweeps
    reference_sizes: Tuple[int, ...]
    #: node counts small enough for the exact Δ* solver
    exact_sizes: Tuple[int, ...]
    #: repetitions per configuration
    repetitions: int
    #: maximum simulated rounds per protocol run
    max_rounds: int
    #: seeds (one per repetition)
    seeds: Tuple[int, ...]
    #: schedulers exercised by the self-stabilization experiments
    schedulers: Tuple[str, ...] = ("synchronous", "random")

    def seed_for(self, repetition: int) -> int:
        return self.seeds[repetition % len(self.seeds)]


QUICK_PROFILE = ExperimentProfile(
    name="quick",
    protocol_sizes=(8, 12, 16),
    reference_sizes=(20, 40, 80),
    exact_sizes=(6, 8, 10),
    repetitions=2,
    max_rounds=4000,
    seeds=(11, 23),
)

FULL_PROFILE = ExperimentProfile(
    name="full",
    protocol_sizes=(10, 16, 24, 32),
    reference_sizes=(25, 50, 100, 200, 400),
    exact_sizes=(6, 8, 10, 12),
    repetitions=3,
    max_rounds=12000,
    seeds=(11, 23, 37),
)

_PROFILES: Dict[str, ExperimentProfile] = {
    "quick": QUICK_PROFILE,
    "full": FULL_PROFILE,
}


def get_profile(name: str = "quick") -> ExperimentProfile:
    """Look up a profile by name (``quick`` or ``full``)."""
    try:
        return _PROFILES[name]
    except KeyError as exc:
        raise KeyError(f"unknown profile {name!r}; known: {sorted(_PROFILES)}") from exc
