"""Sweep runner: execute the protocol / reference engine over workloads.

The runner is a thin orchestration layer gluing together workload instances,
protocol configurations and the analysis records.  Batch execution
dispatches through the parallel sweep engine
(:class:`repro.runtime.SweepEngine`): :func:`run_workload` turns a list of
:class:`~repro.experiments.workloads.WorkloadInstance` into
:class:`~repro.runtime.spec.RunSpec` and fans them over worker processes
(``workers=1`` keeps the historical serial path).  The single-instance
helpers :func:`run_protocol_on` / :func:`run_reference_on` remain the
in-process primitives -- they are what the engine's worker tasks ultimately
call, and what interactive users reach for when they want live
``MDSTResult`` objects rather than serialized records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import networkx as nx

from ..analysis.convergence import ConvergenceRecord
from ..core.protocol import MDSTConfig, MDSTResult, run_mdst
from ..core.reference import ReferenceMDST, ReferenceResult
from ..graphs.spanning import bfs_spanning_tree
from ..runtime.cache import ResultCache
from ..runtime.engine import SweepEngine
from ..runtime.spec import RunSpec
from ..runtime.tasks import RunOutcome
from .workloads import WorkloadInstance

__all__ = ["ProtocolRun", "run_protocol_on", "run_reference_on",
           "protocol_record", "specs_for_workload", "run_workload",
           "workload_records"]


@dataclass
class ProtocolRun:
    """A protocol execution bundled with its workload instance."""

    instance: WorkloadInstance
    graph: nx.Graph
    result: MDSTResult

    @property
    def record(self) -> ConvergenceRecord:
        return protocol_record(self.instance, self.graph, self.result)


def protocol_record(instance: WorkloadInstance, graph: nx.Graph,
                    result: MDSTResult, scheduler: str = "") -> ConvergenceRecord:
    """Reduce a protocol run to a :class:`ConvergenceRecord`."""
    return ConvergenceRecord(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        rounds=result.run.rounds,
        convergence_round=result.run.extra.get("convergence_round"),
        steps=result.run.steps,
        messages=result.run.messages,
        converged=result.run.converged,
        tree_degree=result.run.tree_degree,
        seed=instance.seed,
        family=instance.family,
        scheduler=scheduler,
    )


def run_protocol_on(instance: WorkloadInstance, config: Optional[MDSTConfig] = None,
                    graph: Optional[nx.Graph] = None) -> ProtocolRun:
    """Run the message-passing protocol on one workload instance (in-process)."""
    graph = graph if graph is not None else instance.build()
    config = config or MDSTConfig(seed=instance.seed)
    result = run_mdst(graph, config)
    return ProtocolRun(instance=instance, graph=graph, result=result)


def run_reference_on(instance: WorkloadInstance, graph: Optional[nx.Graph] = None,
                     from_bfs: bool = True) -> tuple[nx.Graph, ReferenceResult]:
    """Run the reference engine on one workload instance (in-process)."""
    graph = graph if graph is not None else instance.build()
    initial = bfs_spanning_tree(graph) if from_bfs else None
    engine = ReferenceMDST(graph, initial_tree=initial)
    return graph, engine.run()


# ---------------------------------------------------------------------------
# Batch execution through the sweep engine
# ---------------------------------------------------------------------------

def specs_for_workload(instances: Iterable[WorkloadInstance],
                       task: str = "protocol",
                       scheduler: str = "synchronous",
                       initial: str = "isolated",
                       max_rounds: int = 5000) -> List[RunSpec]:
    """Translate workload instances into engine run specs."""
    return [RunSpec(task=task, family=inst.family, n=inst.n, seed=inst.seed,
                    scheduler=scheduler, initial=initial, max_rounds=max_rounds)
            for inst in instances]


def run_workload(instances: Iterable[WorkloadInstance],
                 task: str = "protocol",
                 scheduler: str = "synchronous",
                 initial: str = "isolated",
                 max_rounds: int = 5000,
                 workers: int = 1,
                 cache: Optional[ResultCache] = None) -> List[RunOutcome]:
    """Run a whole workload through the sweep engine.

    ``workers=1`` executes serially in-process (the historical behaviour);
    larger values fan the instances across a process pool.  Results come
    back in workload order either way.
    """
    engine = SweepEngine(workers=workers, cache=cache)
    return engine.execute(specs_for_workload(
        instances, task=task, scheduler=scheduler, initial=initial,
        max_rounds=max_rounds))


def workload_records(instances: Iterable[WorkloadInstance],
                     workers: int = 1,
                     cache: Optional[ResultCache] = None,
                     **spec_kwargs) -> List[ConvergenceRecord]:
    """Convergence records for a protocol sweep over ``instances``."""
    outcomes = run_workload(instances, workers=workers, cache=cache,
                            **spec_kwargs)
    return [o.record for o in outcomes if o.record is not None]
