"""Sweep runner: execute the protocol / reference engine over workloads.

The runner is a thin orchestration layer gluing together workload instances,
protocol configurations and the analysis records; each experiment definition
in :mod:`repro.experiments.experiments` composes these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import networkx as nx

from ..analysis.convergence import ConvergenceRecord
from ..analysis.memory import MemoryReport, memory_report
from ..core.protocol import MDSTConfig, MDSTResult, build_mdst_network, run_mdst
from ..core.reference import ReferenceMDST, ReferenceResult
from ..graphs.spanning import bfs_spanning_tree
from .workloads import WorkloadInstance

__all__ = ["ProtocolRun", "run_protocol_on", "run_reference_on", "protocol_record"]


@dataclass
class ProtocolRun:
    """A protocol execution bundled with its workload instance."""

    instance: WorkloadInstance
    graph: nx.Graph
    result: MDSTResult

    @property
    def record(self) -> ConvergenceRecord:
        return protocol_record(self.instance, self.graph, self.result)


def protocol_record(instance: WorkloadInstance, graph: nx.Graph,
                    result: MDSTResult, scheduler: str = "") -> ConvergenceRecord:
    """Reduce a protocol run to a :class:`ConvergenceRecord`."""
    return ConvergenceRecord(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        rounds=result.run.rounds,
        convergence_round=result.run.extra.get("convergence_round"),
        steps=result.run.steps,
        messages=result.run.messages,
        converged=result.run.converged,
        tree_degree=result.run.tree_degree,
        seed=instance.seed,
        family=instance.family,
        scheduler=scheduler,
    )


def run_protocol_on(instance: WorkloadInstance, config: Optional[MDSTConfig] = None,
                    graph: Optional[nx.Graph] = None) -> ProtocolRun:
    """Run the message-passing protocol on one workload instance."""
    graph = graph if graph is not None else instance.build()
    config = config or MDSTConfig(seed=instance.seed)
    result = run_mdst(graph, config)
    return ProtocolRun(instance=instance, graph=graph, result=result)


def run_reference_on(instance: WorkloadInstance, graph: Optional[nx.Graph] = None,
                     from_bfs: bool = True) -> tuple[nx.Graph, ReferenceResult]:
    """Run the reference engine on one workload instance."""
    graph = graph if graph is not None else instance.build()
    initial = bfs_spanning_tree(graph) if from_bfs else None
    engine = ReferenceMDST(graph, initial_tree=initial)
    return graph, engine.run()
