"""Experiment harness: profiles, workloads, sweep runner, E1-E8 definitions."""

from .config import FULL_PROFILE, QUICK_PROFILE, ExperimentProfile, get_profile
from .experiments import (
    EXPERIMENTS,
    experiment_e1_degree_quality,
    experiment_e2_convergence,
    experiment_e3_memory,
    experiment_e4_message_length,
    experiment_e5_self_stabilization,
    experiment_e6_baselines,
    experiment_e7_simultaneous_reduction,
    experiment_e8_improvement_cost,
    run_all_experiments,
)
from .runner import (
    ProtocolRun,
    protocol_record,
    run_protocol_on,
    run_reference_on,
    run_workload,
    specs_for_workload,
    workload_records,
)
from .workloads import (
    WorkloadInstance,
    baseline_workload,
    hub_workload,
    instantiate,
    quality_workload,
    scaling_workload,
    stabilization_workload,
)

__all__ = [name for name in dir() if not name.startswith("_")]
