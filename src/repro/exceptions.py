"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures without masking programming
errors (``TypeError``, ``KeyError`` ...) coming from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Raised when an input graph violates a structural requirement.

    Typical causes: the graph is empty, disconnected, directed, or contains
    self-loops -- none of which are supported by the algorithms in this
    library (the paper assumes an undirected connected network).
    """


class NotConnectedError(GraphError):
    """Raised when an operation requires a connected graph but got one that
    is not connected."""


class NotASpanningTreeError(GraphError):
    """Raised when an edge set claimed to be a spanning tree is not one."""


class SimulationError(ReproError):
    """Base class for errors raised by the message-passing simulator."""


class ChannelError(SimulationError):
    """Raised on misuse of a FIFO channel (unknown endpoint, closed channel)."""


class SchedulerError(SimulationError):
    """Raised when a scheduler is asked to schedule an impossible step."""


class ConvergenceError(SimulationError):
    """Raised when a protocol fails to converge within its round budget.

    The exception carries the number of rounds executed and, when available,
    a snapshot of the offending configuration to ease debugging.
    """

    def __init__(self, message: str, rounds: int | None = None):
        super().__init__(message)
        self.rounds = rounds


class ProtocolError(SimulationError):
    """Raised when a protocol implementation violates its own invariants
    (e.g. a node sends a message over a non-existent link)."""


class ConfigurationError(ReproError):
    """Raised when an experiment or simulator configuration is invalid."""


class BaselineError(ReproError):
    """Raised by baseline algorithms (exact solver, Fürer–Raghavachari, ...)."""


class ExactSolverBudgetError(BaselineError):
    """Raised when the exact MDST solver exceeds its node/edge budget."""
