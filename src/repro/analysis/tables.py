"""Plain-text table rendering for benchmark and experiment output.

The benchmark harness prints the rows an evaluation section would tabulate;
this module renders lists of dictionaries as aligned ASCII tables (and
optionally CSV) with no third-party dependencies.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_csv", "render_rows"]


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render ``rows`` (list of dicts) as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_stringify(row.get(c)) for c in columns] for row in rows]
    widths = [max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def format_csv(rows: Sequence[Mapping[str, object]],
               columns: Optional[Sequence[str]] = None) -> str:
    """Render ``rows`` as CSV text."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(columns), extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow({c: row.get(c) for c in columns})
    return buf.getvalue()


def render_rows(rows: Sequence[Mapping[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None, csv_output: bool = False) -> str:
    """Render rows as a table or CSV depending on ``csv_output``."""
    return format_csv(rows, columns) if csv_output else format_table(rows, columns, title)
