"""Memory and message-length accounting (Lemma 5, §5 "Complexity issues").

The paper claims

* **memory**: ``O(δ log n)`` bits per node in the send/receive model (a
  constant number of ``O(log n)``-bit variables plus one cached copy per
  neighbour), ``O(log n)`` in the classical model (own variables only);
* **message length**: ``O(n log n)`` bits, dominated by the cycle path
  carried by ``Search`` / ``Remove`` / ``Back`` messages.

The functions here compute the corresponding theoretical envelopes so that
experiments E3/E4 can compare measured values against them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..sim.network import Network

__all__ = ["MemoryReport", "memory_report", "state_bound_bits", "message_bound_bits",
           "log_n_bits"]


def log_n_bits(n: int) -> int:
    """Bits of one identifier in an ``n``-node network (``ceil(log2 n) + 1``)."""
    return max(1, math.ceil(math.log2(max(n, 2)))) + 1


def state_bound_bits(n: int, delta: int, own_variables: int = 6,
                     copies_per_neighbor: int = 7) -> int:
    """Theoretical ``O(δ log n)`` envelope for per-node state.

    ``own_variables`` and ``copies_per_neighbor`` are the constants of the
    implementation (root, parent, distance, dmax, sub_max, deg and the cached
    copies thereof); the envelope is what E3 plots against measurements.
    """
    bits = log_n_bits(n)
    return own_variables * bits + copies_per_neighbor * bits * delta


def message_bound_bits(n: int, fields_per_entry: int = 4, overhead: int = 16) -> int:
    """Theoretical ``O(n log n)`` envelope for message length.

    A ``Search`` token carries, per visited node, a path entry (a pair of
    node id and degree, plus the pair's length field under the size
    accounting of :mod:`repro.sim.messages`) and a visited-set entry, i.e. at
    most ``fields_per_entry = 4`` identifier-sized fields per network node.
    """
    return overhead + fields_per_entry * (n + 2) * log_n_bits(n)


@dataclass(frozen=True)
class MemoryReport:
    """Measured vs theoretical memory/message sizes for one network."""

    nodes: int
    max_graph_degree: int
    max_state_bits: int
    total_state_bits: int
    state_bound_bits: int
    max_message_bits: int
    message_bound_bits: int

    @property
    def state_within_bound(self) -> bool:
        return self.max_state_bits <= self.state_bound_bits

    @property
    def message_within_bound(self) -> bool:
        return self.max_message_bits <= self.message_bound_bits

    def as_dict(self) -> Dict[str, object]:
        return {
            "n": self.nodes,
            "delta": self.max_graph_degree,
            "max_state_bits": self.max_state_bits,
            "state_bound_bits": self.state_bound_bits,
            "state_within_bound": self.state_within_bound,
            "max_message_bits": self.max_message_bits,
            "message_bound_bits": self.message_bound_bits,
            "message_within_bound": self.message_within_bound,
        }


def memory_report(network: Network) -> MemoryReport:
    """Build a :class:`MemoryReport` for the current state of ``network``."""
    n = len(network)
    delta = network.max_graph_degree()
    return MemoryReport(
        nodes=n,
        max_graph_degree=delta,
        max_state_bits=network.max_state_bits(),
        total_state_bits=network.total_state_bits(),
        state_bound_bits=state_bound_bits(n, delta),
        max_message_bits=network.max_channel_message_bits(),
        message_bound_bits=message_bound_bits(n),
    )
