"""Analysis layer: tree quality metrics, convergence/memory accounting, tables."""

from .convergence import (
    ConvergenceRecord,
    aggregate_records,
    loglog_slope,
    paper_round_bound,
)
from .memory import (
    MemoryReport,
    log_n_bits,
    memory_report,
    message_bound_bits,
    state_bound_bits,
)
from .metrics import (TreeQuality, degree_gap, degree_histogram_of_tree,
                      evaluate_tree, gini)
from .reporting import ExperimentReport
from .tables import format_csv, format_table, render_rows

__all__ = [name for name in dir() if not name.startswith("_")]
