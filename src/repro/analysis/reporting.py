"""Experiment result records: collection, aggregation and persistence.

An :class:`ExperimentReport` is the uniform container benchmarks and the
experiment runner fill with row dictionaries; it can render itself as a
table, export CSV/JSON, and compute per-group aggregates.  Keeping this in
one place means every experiment produces artefacts with the same shape,
which EXPERIMENTS.md relies on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .tables import format_csv, format_table

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """A named collection of result rows with helpers for output."""

    experiment: str
    description: str = ""
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **fields: object) -> None:
        """Append one result row."""
        self.rows.append(dict(fields))

    def extend(self, rows: Iterable[Mapping[str, object]]) -> None:
        for row in rows:
            self.rows.append(dict(row))

    # -- aggregation -------------------------------------------------------------

    def group_by(self, key: str) -> Dict[object, List[Dict[str, object]]]:
        """Group rows by the value of ``key``."""
        groups: Dict[object, List[Dict[str, object]]] = {}
        for row in self.rows:
            groups.setdefault(row.get(key), []).append(row)
        return groups

    def aggregate(self, group_key: str, value_key: str,
                  reducer: Callable[[Sequence[float]], float] = np.mean
                  ) -> Dict[object, float]:
        """Reduce ``value_key`` over groups of ``group_key`` (default: mean)."""
        out: Dict[object, float] = {}
        for group, rows in self.group_by(group_key).items():
            values = [float(r[value_key]) for r in rows
                      if r.get(value_key) is not None]
            if values:
                out[group] = float(reducer(values))
        return out

    def column(self, key: str) -> List[object]:
        """All values of one column (missing values skipped)."""
        return [row[key] for row in self.rows if key in row]

    # -- rendering / persistence ---------------------------------------------------

    def to_table(self, columns: Optional[Sequence[str]] = None) -> str:
        title = f"[{self.experiment}] {self.description}".strip()
        return format_table(self.rows, columns=columns, title=title)

    def to_csv(self, columns: Optional[Sequence[str]] = None) -> str:
        return format_csv(self.rows, columns=columns)

    def to_json(self) -> str:
        return json.dumps({
            "experiment": self.experiment,
            "description": self.description,
            "metadata": self.metadata,
            "rows": self.rows,
        }, indent=2, default=str)

    def save(self, path: str | Path) -> Path:
        """Write the report as JSON; returns the path."""
        path = Path(path)
        path.write_text(self.to_json(), encoding="utf-8")
        return path

    @staticmethod
    def load(path: str | Path) -> "ExperimentReport":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        report = ExperimentReport(experiment=data["experiment"],
                                  description=data.get("description", ""),
                                  metadata=data.get("metadata", {}))
        report.extend(data.get("rows", []))
        return report
