"""Convergence accounting: rounds, steps, messages, scaling fits.

The paper's Lemma 5 claims an ``O(m n^2 log n)`` round bound.  The
experiments cannot (and need not) hit that worst case; what they verify is
that measured convergence rounds (i) are finite from arbitrary initial
configurations and (ii) grow polynomially and stay far *below* the bound.
This module provides the bookkeeping: per-run records, aggregation over
repetitions, and a log-log slope estimate for the scaling experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["ConvergenceRecord", "aggregate_records", "loglog_slope",
           "paper_round_bound"]


@dataclass(frozen=True)
class ConvergenceRecord:
    """One protocol run reduced to its convergence-relevant numbers."""

    nodes: int
    edges: int
    rounds: int
    convergence_round: Optional[int]
    steps: int
    messages: int
    converged: bool
    tree_degree: int
    seed: Optional[int] = None
    family: str = ""
    scheduler: str = ""

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "n": self.nodes,
            "m": self.edges,
            "scheduler": self.scheduler,
            "converged": self.converged,
            "rounds": self.rounds,
            "convergence_round": self.convergence_round,
            "steps": self.steps,
            "messages": self.messages,
            "tree_degree": self.tree_degree,
            "seed": self.seed,
        }


def aggregate_records(records: Sequence[ConvergenceRecord]) -> dict:
    """Mean/max summary over repeated runs of the same configuration."""
    if not records:
        return {"runs": 0}
    rounds = [r.convergence_round if r.convergence_round is not None else r.rounds
              for r in records]
    messages = [r.messages for r in records]
    return {
        "runs": len(records),
        "converged": sum(1 for r in records if r.converged),
        "mean_rounds": float(np.mean(rounds)),
        "max_rounds": int(np.max(rounds)),
        "mean_messages": float(np.mean(messages)),
        "max_messages": int(np.max(messages)),
        "mean_degree": float(np.mean([r.tree_degree for r in records])),
    }


def loglog_slope(sizes: Sequence[float], values: Sequence[float]) -> float:
    """Least-squares slope of ``log(values)`` vs ``log(sizes)``.

    Used to estimate the empirical polynomial exponent of round/message
    growth; a slope of ``p`` indicates ``values ~ sizes**p``.
    """
    if len(sizes) != len(values) or len(sizes) < 2:
        raise ValueError("need at least two (size, value) pairs of equal length")
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.maximum(np.asarray(values, dtype=float), 1e-12))
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def paper_round_bound(n: int, m: int) -> float:
    """The paper's worst-case round bound ``m * n^2 * log2(n)`` (Lemma 5)."""
    if n < 2:
        return 0.0
    return float(m) * float(n) ** 2 * math.log2(n)
