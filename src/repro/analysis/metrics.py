"""Tree-quality metrics used across experiments.

The central metric is the maximum tree degree and its gap to the optimum Δ*
(or to a certified lower bound when Δ* is too expensive to compute); the
module also provides degree-distribution statistics used by the baseline
comparison (E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import networkx as nx

from ..graphs.properties import mdst_lower_bound
from ..graphs.spanning import tree_degree, tree_degrees
from ..types import Edge

__all__ = ["TreeQuality", "evaluate_tree", "degree_gap",
           "degree_histogram_of_tree", "gini"]


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a load distribution (0 = perfectly even).

    Used by the P2P scenarios to quantify relay-load fairness of an overlay
    tree: feed it the per-node tree degrees and a value near 0 means no
    peer relays disproportionately more traffic than the rest.  An empty or
    all-zero distribution is perfectly even by convention.
    """
    ordered = sorted(values)
    n = len(ordered)
    total = sum(ordered)
    if n == 0 or total == 0:
        return 0.0
    cum = 0.0
    for i, v in enumerate(ordered, start=1):
        cum += i * v
    return (2 * cum) / (n * total) - (n + 1) / n


@dataclass(frozen=True)
class TreeQuality:
    """Quality record of one spanning tree with respect to its graph."""

    degree: int
    optimal_degree: Optional[int]
    lower_bound: int
    gap_to_optimal: Optional[int]
    within_one_of_optimal: Optional[bool]
    mean_degree: float
    leaves: int
    internal_max_fraction: float

    def as_dict(self) -> dict:
        return {
            "degree": self.degree,
            "optimal_degree": self.optimal_degree,
            "lower_bound": self.lower_bound,
            "gap_to_optimal": self.gap_to_optimal,
            "within_one_of_optimal": self.within_one_of_optimal,
            "mean_degree": round(self.mean_degree, 3),
            "leaves": self.leaves,
            "internal_max_fraction": round(self.internal_max_fraction, 4),
        }


def degree_histogram_of_tree(graph: nx.Graph, edges: Iterable[Edge]) -> Dict[int, int]:
    """Histogram ``tree degree -> number of nodes`` for the tree ``edges``."""
    degrees = tree_degrees(graph.nodes, edges)
    hist: Dict[int, int] = {}
    for d in degrees.values():
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))


def degree_gap(tree_deg: int, optimal_degree: Optional[int]) -> Optional[int]:
    """Gap ``deg(T) - Δ*`` (``None`` when Δ* is unknown)."""
    if optimal_degree is None:
        return None
    return tree_deg - optimal_degree


def evaluate_tree(graph: nx.Graph, edges: Iterable[Edge],
                  optimal_degree: Optional[int] = None) -> TreeQuality:
    """Compute the quality record of a spanning tree.

    ``optimal_degree`` is the exact Δ* when available (small instances); the
    structural lower bound is always included so larger instances still get a
    certified statement (``degree <= lower_bound + 1`` implies optimal-within-one).
    """
    edges = set(edges)
    degrees = tree_degrees(graph.nodes, edges)
    values = list(degrees.values())
    deg = max(values) if values else 0
    lb = mdst_lower_bound(graph) if graph.number_of_nodes() > 1 else 0
    gap = degree_gap(deg, optimal_degree)
    within = None if optimal_degree is None else deg <= optimal_degree + 1
    max_count = sum(1 for d in values if d == deg) if values else 0
    return TreeQuality(
        degree=deg,
        optimal_degree=optimal_degree,
        lower_bound=lb,
        gap_to_optimal=gap,
        within_one_of_optimal=within,
        mean_degree=sum(values) / len(values) if values else 0.0,
        leaves=sum(1 for d in values if d == 1),
        internal_max_fraction=max_count / len(values) if values else 0.0,
    )
