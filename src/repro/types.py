"""Shared type aliases and small value objects used across the library.

The simulator and the algorithms intentionally use *plain Python ints* as node
identifiers: the paper assumes each processor owns a unique comparable
identifier (``ID_v``), and integer ids keep the hot paths (dict lookups, list
manipulation of cycle paths) cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple

#: A node identifier.  The paper assumes unique, totally ordered identifiers.
NodeId = int

#: An undirected edge, always stored in canonical ``(min, max)`` order.
Edge = Tuple[NodeId, NodeId]


def canonical_edge(u: NodeId, v: NodeId) -> Edge:
    """Return the canonical representation of the undirected edge ``{u, v}``.

    Canonicalisation lets edge sets be compared and hashed regardless of the
    orientation in which an edge was produced.

    >>> canonical_edge(5, 2)
    (2, 5)
    """
    if u == v:
        raise ValueError(f"self-loop edge ({u}, {v}) is not allowed")
    return (u, v) if u < v else (v, u)


def canonical_edges(edges: Iterable[Tuple[NodeId, NodeId]]) -> set[Edge]:
    """Canonicalise an iterable of edges into a set."""
    return {canonical_edge(u, v) for (u, v) in edges}


@dataclass(frozen=True)
class TreeSnapshot:
    """An immutable snapshot of a (claimed) spanning tree.

    Attributes
    ----------
    root:
        Identifier of the tree root.
    parent:
        Mapping ``node -> parent``; the root maps to itself.
    edges:
        Canonical edge set of the tree.
    """

    root: NodeId
    parent: dict[NodeId, NodeId] = field(hash=False)
    edges: frozenset[Edge] = field(hash=False)

    @staticmethod
    def from_parent_map(parent: dict[NodeId, NodeId]) -> "TreeSnapshot":
        """Build a snapshot from a ``node -> parent`` map.

        The root is the (unique) node whose parent is itself.  No validation
        beyond root detection is performed here; use
        :func:`repro.graphs.validation.check_spanning_tree` for full checks.
        """
        roots = [v for v, p in parent.items() if p == v]
        if len(roots) != 1:
            raise ValueError(
                f"parent map must contain exactly one self-parented root, got {roots}"
            )
        edges = frozenset(
            canonical_edge(v, p) for v, p in parent.items() if p != v
        )
        return TreeSnapshot(root=roots[0], parent=dict(parent), edges=edges)

    def degree_of(self, v: NodeId) -> int:
        """Degree of ``v`` in the tree."""
        return sum(1 for (a, b) in self.edges if a == v or b == v)

    def degree(self) -> int:
        """Maximum node degree of the tree (``deg(T)`` in the paper)."""
        counts: dict[NodeId, int] = {}
        for a, b in self.edges:
            counts[a] = counts.get(a, 0) + 1
            counts[b] = counts.get(b, 0) + 1
        return max(counts.values()) if counts else 0


@dataclass(frozen=True)
class RunResult:
    """Outcome of running a distributed protocol to convergence.

    Attributes
    ----------
    converged:
        Whether the legitimacy predicate was reached within the round budget.
    rounds:
        Number of (asynchronous) rounds executed.
    steps:
        Number of atomic steps (single message receipt or timeout action).
    messages:
        Total number of messages delivered.
    tree:
        Final tree snapshot (``None`` if no coherent tree was formed).
    tree_degree:
        Degree of the final tree (``0`` when ``tree`` is ``None``).
    extra:
        Free-form per-protocol metrics (e.g. improvements performed).
    """

    converged: bool
    rounds: int
    steps: int
    messages: int
    tree: TreeSnapshot | None
    tree_degree: int
    extra: dict = field(default_factory=dict, hash=False)
