"""repro -- reproduction of "Self-stabilizing minimum-degree spanning tree
within one from the optimal degree" (Blin, Gradinariu Potop-Butucaru,
Rovedakis, IPDPS 2009).

Subpackages
-----------
``repro.graphs``
    Network generators, spanning-tree utilities, validation, I/O.
``repro.sim``
    Asynchronous message-passing simulator (FIFO channels, send/receive
    atomicity, schedulers, fault injection, tracing).
``repro.stabilization``
    Self-stabilizing substrate modules: spanning tree (rules R1/R2),
    PIF max-degree aggregation, global predicates.
``repro.core``
    The MDST algorithm itself: per-node protocol, improvement logic,
    legitimacy predicates, reference engine, high-level runner.
``repro.protocols``
    The unified protocol registry: the :class:`ProtocolAdapter` contract,
    the generic ``run_protocol`` engine, and the built-in ``mdst`` /
    ``spanning_tree`` / ``pif_max_degree`` adapters.
``repro.baselines``
    Exact Δ* solver, Fürer–Raghavachari, centralized local search,
    simple spanning trees, fragment-based distributed baseline.
``repro.analysis``
    Metrics, convergence/memory accounting, tables, result records.
``repro.experiments``
    Workloads, sweep runner and the E1-E8 experiment definitions.
``repro.runtime``
    Parallel sweep engine: serializable run specs, process-pool execution,
    on-disk result caching, and the ``repro`` command-line interface.
"""

from .types import Edge, NodeId, RunResult, TreeSnapshot, canonical_edge, canonical_edges
from .exceptions import (
    BaselineError,
    ChannelError,
    ConfigurationError,
    ConvergenceError,
    ExactSolverBudgetError,
    GraphError,
    NotASpanningTreeError,
    NotConnectedError,
    ProtocolError,
    ReproError,
    SchedulerError,
    SimulationError,
)

__version__ = "1.1.0"

__all__ = [
    "Edge",
    "NodeId",
    "RunResult",
    "TreeSnapshot",
    "canonical_edge",
    "canonical_edges",
    "ReproError",
    "GraphError",
    "NotConnectedError",
    "NotASpanningTreeError",
    "SimulationError",
    "ChannelError",
    "SchedulerError",
    "ConvergenceError",
    "ProtocolError",
    "ConfigurationError",
    "BaselineError",
    "ExactSolverBudgetError",
    "__version__",
]
