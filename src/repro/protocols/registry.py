"""The protocol registry: name -> :class:`~repro.protocols.base.ProtocolAdapter`.

Built-in adapters (``mdst``, ``spanning_tree``, ``pif_max_degree``) are
registered lazily on first lookup rather than at import time: the MDST
adapter imports :mod:`repro.core.protocol`, which itself imports this
package for the generic runner, so eager registration would close an import
cycle.  Lookup through :func:`get_protocol` (or any read of
:data:`PROTOCOLS`) triggers the one-time built-in load; third-party
protocols join via :func:`register_protocol` at any point.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping

from ..exceptions import ConfigurationError
from .base import ProtocolAdapter

__all__ = ["PROTOCOLS", "capable_names", "churn_capable_names",
           "get_protocol", "protocol_names", "register_protocol"]

_ADAPTERS: Dict[str, ProtocolAdapter] = {}
_BUILTINS_LOADED = False


def _load_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # Importing the modules runs their register_protocol(...) calls.  The
    # flag flips only after they all succeed: a failed import propagates to
    # every caller (Python's module cache keeps the retry cheap) instead of
    # leaving a silently empty registry behind the first traceback.
    from . import mdst, pif, spanning_tree  # noqa: F401
    _BUILTINS_LOADED = True


def register_protocol(adapter: ProtocolAdapter,
                      replace: bool = False) -> ProtocolAdapter:
    """Register ``adapter`` under its :attr:`~ProtocolAdapter.name`.

    Returns the adapter so the call can double as a module-level
    declaration.  Re-registering an existing name requires ``replace=True``
    (guards against two protocols silently shadowing each other).
    """
    if not adapter.name:
        raise ConfigurationError("protocol adapters need a non-empty name")
    if adapter.name in _ADAPTERS and not replace:
        raise ConfigurationError(
            f"protocol {adapter.name!r} is already registered "
            f"(pass replace=True to override)")
    _ADAPTERS[adapter.name] = adapter
    return adapter


def get_protocol(name: str) -> ProtocolAdapter:
    """The registered adapter for ``name``; unknown names list the registry."""
    _load_builtins()
    try:
        return _ADAPTERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(protocol_names())}") from None


def protocol_names() -> List[str]:
    """Sorted names of every registered protocol."""
    _load_builtins()
    return sorted(_ADAPTERS)


def churn_capable_names() -> List[str]:
    """Sorted names of the registered protocols that support topology churn
    (the one listing both the churn task and the CLI error messages use)."""
    return capable_names("supports_churn")


def capable_names(flag: str) -> List[str]:
    """Sorted names of the protocols whose capability ``flag`` is set.

    ``flag`` is any of the :class:`~repro.protocols.base.ProtocolAdapter`
    capability attributes (``supports_churn``, ``supports_crash``,
    ``supports_byzantine``, ``supports_unreliable_channels``, ...); the CLI
    uses this to list the eligible protocols in early-validation errors.
    """
    _load_builtins()
    return sorted(name for name, adapter in _ADAPTERS.items()
                  if getattr(adapter, flag, False))


class _ProtocolRegistry(Mapping):
    """Read-only mapping view over the registry (lazy built-in load).

    Supports everything a plain dict of adapters would -- iteration,
    ``in``, ``len``, ``PROTOCOLS["mdst"]`` -- while deferring the built-in
    imports until first use.
    """

    def __getitem__(self, name: str) -> ProtocolAdapter:
        _load_builtins()
        return _ADAPTERS[name]

    def __iter__(self) -> Iterator[str]:
        return iter(protocol_names())

    def __len__(self) -> int:
        _load_builtins()
        return len(_ADAPTERS)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PROTOCOLS({protocol_names()})"


#: The registry, as a lazy read-only mapping ``name -> adapter``.
PROTOCOLS = _ProtocolRegistry()
