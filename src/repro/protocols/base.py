"""The protocol-adapter contract of the unified protocol registry.

The paper's MDST algorithm is a *composition* of self-stabilizing layers --
a spanning-tree module and a PIF-style aggregation layer -- and the repo
implements those layers both standalone (:mod:`repro.stabilization`) and
fused (:mod:`repro.core`).  Historically only the fused protocol could be
driven by the runtime stack (specs, sweeps, caching, churn/fault plans,
CLI, benchmarks); everything else needed hand-rolled harness code.

A :class:`ProtocolAdapter` packages what the generic runner
(:func:`repro.protocols.runner.run_protocol`) needs to drive *any*
self-stabilizing protocol through that stack:

* a **process factory** (:meth:`~ProtocolAdapter.build_network`),
* the recognised **initial-configuration policies** and how to install them
  (:meth:`~ProtocolAdapter.prepare_initial`),
* a **legitimacy-predicate factory** (:meth:`~ProtocolAdapter.make_legitimacy`)
  whose product must be a pure function of the per-node snapshots and the
  live graph, so the simulator's
  :class:`~repro.sim.monitors.PredicateCache` -- keyed on
  ``(snapshot_key, topology_version)`` -- stays sound for every protocol,
* a **per-run metrics extractor** (:meth:`~ProtocolAdapter.extract_metrics`),
* **capability flags**: whether the protocol survives live topology churn
  (``supports_churn``), transient fault injection (``supports_faults``),
  an explicit initial spanning tree (``supports_initial_tree``), and the
  adversary axis -- unreliable channels
  (``supports_unreliable_channels``), crash/recover node faults
  (``supports_crash``) and Byzantine gossip (``supports_byzantine``).

Adapters are stateless singletons: one instance serves every run, so all
per-run data must flow through the config, the network or the rng.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError
from ..sim.adversary import Adversary
from ..sim.faults import corrupt_channels, corrupt_states
from ..sim.network import Network
from ..sim.simulator import SimulationReport
from ..types import Edge, NodeId

__all__ = ["ProtocolAdapter", "ProtocolRunConfig", "corrupt_configuration"]

Predicate = Callable[[Network], bool]


@dataclass
class ProtocolRunConfig:
    """Protocol-agnostic configuration of one run.

    The common knobs every registered protocol understands; anything
    protocol-specific (e.g. the MDST node's ``search_period``) travels in
    :attr:`options` and is interpreted by the adapter.

    Attributes
    ----------
    protocol:
        Name of the protocol in the :data:`~repro.protocols.PROTOCOLS`
        registry that executes this run.
    scheduler:
        ``"synchronous"``, ``"random"``, ``"adversarial"`` or ``"weighted"``.
    seed:
        Master seed for the scheduler, fault injection and random initial
        configurations.
    initial:
        Initial-configuration policy; must be one of the adapter's
        :attr:`~ProtocolAdapter.initial_policies`.
    corrupt_channel_fraction:
        With ``initial="corrupted"``, fraction of channels pre-loaded with
        garbage messages.
    stability_window:
        Consecutive legitimate rounds required to declare convergence.
    max_rounds:
        Round budget.
    extra_rounds_after_convergence:
        Extra rounds simulated after convergence to witness closure.
    keep_trace_events:
        Record the full event log (memory-heavy; used by examples).
    slow_links, max_delay:
        Parameters of the adversarial scheduler.
    node_weights:
        Per-node step weights for the ``"weighted"`` scheduler.
    n_upper:
        Explicit upper bound on the network size (the distance bound of
        spanning-tree-style protocols).  Defaults per adapter; runs that
        expect node *joins* must pass headroom here.
    adversary:
        Optional :class:`~repro.sim.adversary.Adversary` applied to the
        run (unreliable channels, crash/recover node faults, Byzantine
        gossip).  Gated per adapter by the ``supports_unreliable_channels``
        / ``supports_crash`` / ``supports_byzantine`` capability flags.
    backend:
        Simulation kernel backend: ``"object"`` (the historical
        object-per-node kernel) or ``"array"`` (flat numpy state columns
        with vectorized synchronous rounds, see
        :mod:`repro.sim.array_kernel`).  Gated per adapter by the
        ``supports_array_backend`` capability flag; the array backend
        rejects live topology churn and adversary models.
    options:
        Adapter-specific extras (see each adapter's docstring).
    """

    protocol: str = "mdst"
    scheduler: str = "synchronous"
    seed: Optional[int] = None
    initial: str = "isolated"
    corrupt_channel_fraction: float = 0.5
    stability_window: int = 5
    max_rounds: int = 5000
    extra_rounds_after_convergence: int = 0
    keep_trace_events: bool = False
    slow_links: Sequence[Tuple[NodeId, NodeId]] = field(default_factory=tuple)
    max_delay: int = 4
    node_weights: Optional[Dict[NodeId, int]] = None
    n_upper: Optional[int] = None
    adversary: Optional[Adversary] = None
    backend: str = "object"
    options: Dict[str, object] = field(default_factory=dict)

    def validate(self) -> None:
        """Check the protocol-agnostic fields (adapters check the rest)."""
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.stability_window < 1:
            raise ConfigurationError("stability_window must be >= 1")
        if self.n_upper is not None and self.n_upper < 2:
            raise ConfigurationError("n_upper must be >= 2")
        if self.backend not in ("object", "array"):
            raise ConfigurationError(
                f"backend must be 'object' or 'array', got {self.backend!r}")

    def option(self, key: str, default: object = None) -> object:
        """Read an adapter-specific option."""
        return self.options.get(key, default)


def corrupt_configuration(network: Network, config: ProtocolRunConfig,
                          rng: np.random.Generator) -> None:
    """The shared ``"corrupted"`` initial policy: arbitrary state everywhere.

    Every node's variables are randomised through its
    :meth:`~repro.sim.node.Process.corrupt` hook and a fraction of the
    channels is pre-loaded with garbage -- the paper's arbitrary initial
    configuration, identical across protocols so self-stabilization runs
    are comparable.
    """
    corrupt_states(network, rng, fraction=1.0)
    if config.corrupt_channel_fraction > 0:
        corrupt_channels(network, rng, fraction=config.corrupt_channel_fraction)


class ProtocolAdapter(abc.ABC):
    """One registered protocol: factories, policies, predicates, metrics.

    Subclasses set the class attributes and implement the three abstract
    hooks; :meth:`install_tree` and :meth:`extract_metrics` have sensible
    defaults.  Adapters must be stateless -- the registry holds one shared
    instance per protocol.
    """

    #: Registry key (``repro run --protocol <name>``).
    name: str = ""
    #: One-line human description (shown by ``repro protocols``).
    description: str = ""
    #: Recognised values of :attr:`ProtocolRunConfig.initial`.
    initial_policies: Tuple[str, ...] = ("isolated",)
    #: Whether the protocol's processes survive live topology churn
    #: (requires the ``neighbor_added``/``neighbor_removed`` delta hooks and
    #: a legitimacy predicate that reads the *live* graph).
    supports_churn: bool = False
    #: Whether the protocol implements state corruption (transient faults).
    supports_faults: bool = True
    #: Whether :func:`~repro.protocols.runner.run_protocol` accepts an
    #: explicit ``initial_tree`` for this protocol.
    supports_initial_tree: bool = False
    #: Whether the protocol tolerates an unreliable channel model (message
    #: loss, duplication, reordering).  Defaults ``True``: the periodic
    #: gossip of self-stabilizing protocols re-sends state, so channel
    #: noise degrades but does not wedge them.  Adapters whose correctness
    #: depends on exact FIFO delivery should opt out.
    supports_unreliable_channels: bool = True
    #: Whether the protocol tolerates crash/recover node faults.  Recovery
    #: re-randomises the node through its ``corrupt`` hook, so the default
    #: is conservative (``False``) -- an adapter whose processes do not
    #: implement ``corrupt`` cannot claim crash tolerance untested.
    supports_crash: bool = False
    #: Whether the protocol tolerates Byzantine gossip (selected processes
    #: emitting corrupted state each round).  Conservative default for the
    #: same reason as ``supports_crash``.
    supports_byzantine: bool = False
    #: Whether the adapter can build the array-backed kernel network
    #: (``backend="array"``, see :mod:`repro.sim.array_kernel`).  Adapters
    #: opting in must implement :meth:`build_array_network` and guarantee
    #: byte-identical results against their object backend.
    supports_array_backend: bool = False
    #: Whether :meth:`build_array_network` additionally accepts an
    #: :class:`~repro.graphs.edge_array.EdgeArrayGraph` and builds its
    #: kernel straight from the container's CSR (the large-n construction
    #: fast path).  Adapters without it receive a materialized ``nx.Graph``
    #: from the runner instead.
    supports_csr_direct: bool = False

    # -- abstract hooks --------------------------------------------------------

    @abc.abstractmethod
    def build_network(self, graph: nx.Graph, config: ProtocolRunConfig) -> Network:
        """Build the network of protocol processes over ``graph``."""

    @abc.abstractmethod
    def prepare_initial(self, network: Network, config: ProtocolRunConfig,
                        rng: np.random.Generator) -> None:
        """Install the initial configuration named by ``config.initial``."""

    @abc.abstractmethod
    def make_legitimacy(self, network: Network,
                        config: ProtocolRunConfig) -> Predicate:
        """The legitimacy predicate judging this run's configurations.

        The product must be a pure function of the per-node snapshots and
        the live communication graph (the :class:`~repro.sim.monitors.
        PredicateCache` contract).
        """

    # -- optional hooks --------------------------------------------------------

    def install_tree(self, network: Network, tree_edges: Iterable[Edge]) -> None:
        """Install an explicit initial spanning tree (adapters opting in)."""
        raise ConfigurationError(
            f"protocol {self.name!r} does not accept an explicit initial tree")

    def build_array_network(self, graph: nx.Graph,
                            config: ProtocolRunConfig) -> Network:
        """Build the array-backed network (adapters with
        ``supports_array_backend`` opt in)."""
        raise ConfigurationError(
            f"protocol {self.name!r} does not support the array backend")

    def extract_metrics(self, network: Network, report: SimulationReport,
                        config: ProtocolRunConfig) -> Dict[str, object]:
        """Protocol-specific additions to the run's ``extra`` metrics dict."""
        return {}

    def validate_config(self, config: ProtocolRunConfig) -> None:
        """Reject configurations this protocol cannot execute."""
        config.validate()
        if config.initial not in self.initial_policies:
            raise ConfigurationError(
                f"protocol {self.name!r} supports initial policies "
                f"{self.initial_policies}, got {config.initial!r}")

    def default_n_upper(self, graph: nx.Graph,
                        config: ProtocolRunConfig) -> int:
        """The distance bound used when the config leaves ``n_upper`` unset."""
        return (config.n_upper if config.n_upper is not None
                else graph.number_of_nodes() + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<ProtocolAdapter {self.name!r}>"
