"""Registry adapter for the paper's full MDST protocol.

The heavy lifting lives in :mod:`repro.core`; this adapter translates the
generic :class:`~repro.protocols.base.ProtocolRunConfig` into the
MDST-specific :class:`~repro.core.protocol.MDSTConfig` and delegates to the
existing machinery, so :func:`repro.core.protocol.run_mdst` and
``run_protocol(graph, config)`` with ``protocol="mdst"`` execute the exact
same code path.

Recognised :attr:`~repro.protocols.base.ProtocolRunConfig.options`:

``search_period`` (int, default 3)
    Rounds between improvement searches of a maximum-degree node.
``deblock_cooldown`` (int, default 30)
    Rounds a node stays silent after a failed deblock.
``enable_reduction`` (bool, default True)
    Disable to run only the substrate layers (ablation); also relaxes the
    legitimacy predicate accordingly.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.legitimacy import make_mdst_legitimacy
from ..core.protocol import (
    MDSTConfig,
    _prepare_initial,
    build_mdst_network,
    initialize_from_tree,
)
from ..sim.network import Network
from .base import Predicate, ProtocolAdapter, ProtocolRunConfig
from .registry import register_protocol

__all__ = ["MDSTProtocol"]


class MDSTProtocol(ProtocolAdapter):
    """The self-stabilizing minimum-degree spanning tree (the full paper)."""

    name = "mdst"
    description = ("self-stabilizing minimum-degree spanning tree "
                   "(spanning tree + PIF + degree reduction, deg <= OPT+1)")
    initial_policies = ("bfs_tree", "random_tree", "isolated", "corrupted")
    supports_churn = True
    supports_faults = True
    supports_initial_tree = True
    # The MDST node implements ``corrupt`` and its gossip re-sends full
    # state, so every adversary model is a tested axis.
    supports_crash = True
    supports_byzantine = True
    # The array kernel reproduces the MDST node byte-for-byte (guarded by
    # the E2 md5 anchors and the object≡array hypothesis property).
    supports_array_backend = True
    # build_array_network accepts EdgeArrayGraph containers and builds the
    # kernel straight from their CSR (construction never touches nx).
    supports_csr_direct = True

    @staticmethod
    def _mdst_config(config: ProtocolRunConfig) -> MDSTConfig:
        """The :class:`MDSTConfig` equivalent of a generic run config."""
        return MDSTConfig(
            scheduler=config.scheduler,
            seed=config.seed,
            initial=config.initial,
            corrupt_channel_fraction=config.corrupt_channel_fraction,
            search_period=int(config.option("search_period", 3)),
            deblock_cooldown=int(config.option("deblock_cooldown", 30)),
            enable_reduction=bool(config.option("enable_reduction", True)),
            stability_window=config.stability_window,
            max_rounds=config.max_rounds,
            n_upper=config.n_upper,
        )

    def build_network(self, graph: nx.Graph, config: ProtocolRunConfig) -> Network:
        return build_mdst_network(graph, self._mdst_config(config))

    def build_array_network(self, graph: nx.Graph,
                            config: ProtocolRunConfig) -> Network:
        from ..sim.array_kernel import build_array_mdst_network
        cfg = self._mdst_config(config)
        return build_array_mdst_network(
            graph,
            n_upper=cfg.n_upper or graph.number_of_nodes() + 1,
            search_period=cfg.search_period,
            deblock_cooldown=cfg.deblock_cooldown,
            enable_reduction=cfg.enable_reduction,
        )

    def prepare_initial(self, network: Network, config: ProtocolRunConfig,
                        rng: np.random.Generator) -> None:
        _prepare_initial(network, self._mdst_config(config), rng)

    def install_tree(self, network: Network, tree_edges) -> None:
        initialize_from_tree(network, tree_edges)

    def make_legitimacy(self, network: Network,
                        config: ProtocolRunConfig) -> Predicate:
        return make_mdst_legitimacy(
            require_reduction=bool(config.option("enable_reduction", True)))


register_protocol(MDSTProtocol())
