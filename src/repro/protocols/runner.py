"""The generic protocol runner: one engine for every registered protocol.

:func:`run_protocol` is the protocol-agnostic twin of the historical
:func:`repro.core.protocol.run_mdst` (which is now a thin wrapper over it):
build the network through the adapter, install the requested initial
configuration, run the simulator under the chosen scheduler until the
adapter's legitimacy predicate stabilizes, and package the outcome.  Every
step that used to be hard-wired to the MDST node -- process construction,
initial policies, the legitimacy predicate, metrics extraction -- routes
through the :class:`~repro.protocols.base.ProtocolAdapter` contract, so
fault plans, churn plans, schedulers, tracing and the incremental
predicate cache work identically for all protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.edge_array import EdgeArrayGraph
from ..sim.adversary import Adversary
from ..sim.faults import ChurnPlan, FaultPlan
from ..sim.scheduler import make_scheduler
from ..sim.simulator import SimulationReport, Simulator
from ..sim.trace import TraceRecorder
from ..stabilization.predicates import (
    snapshot_tree_degree,
    tree_edges_from_snapshots,
)
from ..types import Edge, NodeId, RunResult, TreeSnapshot
from .base import ProtocolAdapter, ProtocolRunConfig
from .registry import get_protocol

__all__ = ["ProtocolResult", "run_protocol"]


@dataclass
class ProtocolResult:
    """Outcome of :func:`run_protocol`, protocol-agnostic.

    The shape mirrors :class:`repro.core.protocol.MDSTResult` (which is the
    MDST-flavoured view of this object): ``tree_edges`` is the edge set
    induced by the per-node ``parent`` snapshots (every registered protocol
    maintains a parent pointer), ``node_stats`` the per-node protocol
    counters for processes that keep them, and ``final_graph`` the mutated
    communication graph of churned runs.
    """

    protocol: str
    run: RunResult
    report: SimulationReport
    trace: Optional[TraceRecorder]
    tree_edges: "set[Edge]"
    node_stats: Dict[NodeId, Dict[str, int]]
    final_graph: Optional[nx.Graph] = None

    @property
    def converged(self) -> bool:
        return self.run.converged

    @property
    def tree_degree(self) -> int:
        return self.run.tree_degree

    @property
    def rounds(self) -> int:
        return self.run.rounds


def run_protocol(graph: nx.Graph,
                 config: Optional[ProtocolRunConfig] = None,
                 *,
                 adapter: Optional[ProtocolAdapter] = None,
                 initial_tree: Optional[Iterable[Edge]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 churn_plan: Optional[ChurnPlan] = None,
                 adversary: Optional[Adversary] = None) -> ProtocolResult:
    """Run a registered self-stabilizing protocol on ``graph`` to convergence.

    Parameters
    ----------
    graph:
        Undirected connected network.
    config:
        Run configuration; ``config.protocol`` names the registry entry
        (defaults to :class:`ProtocolRunConfig` defaults, i.e. ``"mdst"``).
    adapter:
        Explicit adapter, bypassing the registry lookup (used by wrappers
        that already hold one; normal callers never pass it).
    initial_tree:
        Explicit initial spanning tree (overrides ``config.initial``); only
        protocols with ``supports_initial_tree`` accept it.
    fault_plan:
        Optional schedule of mid-run transient faults; requires
        ``supports_faults``.
    churn_plan:
        Optional schedule of live topology changes; requires
        ``supports_churn``.  Convergence is then judged against the
        *mutated* graph (the legitimacy predicate reads the live network),
        and runs expecting node joins should pass ``config.n_upper``
        headroom.
    adversary:
        Optional :class:`~repro.sim.adversary.Adversary` (falls back to
        ``config.adversary``).  Each present model is gated by the
        matching capability flag: an unreliable channel model requires
        ``supports_unreliable_channels``, node faults ``supports_crash``,
        Byzantine gossip ``supports_byzantine``.

    Returns
    -------
    ProtocolResult
        Convergence flag, round/step/message counts, induced tree and
        per-node protocol statistics.
    """
    config = config or ProtocolRunConfig()
    if adapter is None:
        adapter = get_protocol(config.protocol)
    adapter.validate_config(config)
    if churn_plan is not None and not adapter.supports_churn:
        raise ConfigurationError(
            f"protocol {adapter.name!r} does not support topology churn")
    if fault_plan is not None and not adapter.supports_faults:
        raise ConfigurationError(
            f"protocol {adapter.name!r} does not support fault injection")
    if initial_tree is not None and not adapter.supports_initial_tree:
        raise ConfigurationError(
            f"protocol {adapter.name!r} does not accept an explicit initial tree")
    if adversary is None:
        adversary = config.adversary
    if adversary is not None:
        cm = adversary.channel_model
        if (cm is not None and not cm.is_reliable
                and not adapter.supports_unreliable_channels):
            raise ConfigurationError(
                f"protocol {adapter.name!r} does not support unreliable channels")
        if adversary.node_faults is not None and not adapter.supports_crash:
            raise ConfigurationError(
                f"protocol {adapter.name!r} does not support crash/recover faults")
        if adversary.byzantine is not None and not adapter.supports_byzantine:
            raise ConfigurationError(
                f"protocol {adapter.name!r} does not support Byzantine gossip")
    if config.backend == "array":
        # The array kernel freezes the topology at build time and owns the
        # channel objects; live churn and adversary channel rewiring are
        # object-backend features.
        if not adapter.supports_array_backend:
            raise ConfigurationError(
                f"protocol {adapter.name!r} does not support the array backend")
        if churn_plan is not None:
            raise ConfigurationError(
                "backend='array' does not support topology churn")
        if adversary is not None:
            raise ConfigurationError(
                "backend='array' does not support adversary models")
    if isinstance(graph, EdgeArrayGraph) and not (
            config.backend == "array"
            and getattr(adapter, "supports_csr_direct", False)):
        # Callers may hand any adapter an edge-array container; only
        # CSR-direct adapters consume it natively, everyone else gets the
        # equivalent nx graph (identical canonical insertion order).
        graph = graph.to_networkx()
    rng = np.random.default_rng(config.seed)
    if config.backend == "array":
        network = adapter.build_array_network(graph, config)
    else:
        network = adapter.build_network(graph, config)
    if initial_tree is not None:
        adapter.install_tree(network, initial_tree)
    else:
        adapter.prepare_initial(network, config, rng)
    legitimacy = adapter.make_legitimacy(network, config)
    scheduler = make_scheduler(config.scheduler, seed=config.seed,
                               slow_links=config.slow_links,
                               max_delay=config.max_delay,
                               weights=config.node_weights)
    if config.backend == "array":
        from ..sim.array_engine import wrap_scheduler_for_array
        scheduler = wrap_scheduler_for_array(scheduler)
    trace = TraceRecorder(keep_events=config.keep_trace_events,
                          network_size=graph.number_of_nodes())
    simulator = Simulator(network, scheduler=scheduler, legitimacy=legitimacy,
                          stability_window=config.stability_window,
                          fault_plan=fault_plan, churn_plan=churn_plan,
                          adversary=adversary, trace=trace, rng=rng)
    report = simulator.run(
        max_rounds=config.max_rounds,
        extra_rounds_after_convergence=config.extra_rounds_after_convergence)
    tree_edges = tree_edges_from_snapshots(network)
    tree_degree_now = snapshot_tree_degree(network)
    tree_snapshot: Optional[TreeSnapshot] = None
    if report.converged:
        snaps = network.snapshots()
        # Default missing parent pointers to self (an adapter's snapshot is
        # not required to expose one): from_parent_map then rejects the
        # forest and the result simply carries no tree snapshot.
        parent = {v: int(snaps[v].get("parent", v)) for v in network.node_ids}
        try:
            tree_snapshot = TreeSnapshot.from_parent_map(parent)
        except ValueError:
            tree_snapshot = None
    extra: Dict[str, object] = {
        "convergence_round": report.convergence_round,
        "max_message_bits": report.max_message_bits,
        "max_state_bits": report.max_state_bits,
        "deliveries_by_type": trace.deliveries_by_type(),
    }
    extra.update(adapter.extract_metrics(network, report, config))
    final_graph: Optional[nx.Graph] = None
    if churn_plan is not None:
        # Churned runs report against the mutated topology.
        extra["churn_applied"] = report.churn_applied
        extra["churn_skipped"] = report.churn_skipped
        extra["churn_rounds"] = list(report.churn_rounds)
        extra["dropped_messages"] = report.dropped_messages
        extra["final_n"] = network.n
        extra["final_m"] = network.m
        final_graph = network.graph
    if adversary is not None:
        extra["adversary"] = adversary.describe()
        extra["adversary_events"] = report.adversary_events
        extra["adversary_rounds"] = list(report.adversary_rounds)
        extra["adversary_dropped"] = report.adversary_dropped
        extra["adversary_duplicated"] = report.adversary_duplicated
        extra["adversary_reordered"] = report.adversary_reordered
        extra["node_crashes"] = report.node_crashes
        extra["node_recoveries"] = report.node_recoveries
        extra["byzantine_corruptions"] = report.byzantine_corruptions
    run = RunResult(
        converged=report.converged,
        rounds=report.rounds,
        steps=report.steps,
        messages=report.messages_sent,
        tree=tree_snapshot,
        tree_degree=tree_degree_now,
        extra=extra,
    )
    node_stats = {v: dict(getattr(network.processes[v], "stats", {}))
                  for v in network.node_ids}
    return ProtocolResult(protocol=adapter.name, run=run, report=report,
                          trace=trace, tree_edges=tree_edges,
                          node_stats=node_stats, final_graph=final_graph)
