"""Unified protocol registry: one engine for every self-stabilizing protocol.

The runtime stack (specs, sweeps, caching, churn/fault plans, CLI,
benchmarks) drives protocols through a single generic runner,
:func:`run_protocol`, dispatching on the :data:`PROTOCOLS` registry:

=================  =========================================================
``mdst``           the paper's full minimum-degree spanning tree algorithm
``spanning_tree``  the standalone self-stabilizing spanning-tree substrate
``pif_max_degree`` PIF max-degree aggregation over a fixed BFS tree
=================  =========================================================

Adding a protocol is a ~100-line adapter: subclass
:class:`ProtocolAdapter`, implement the three factory hooks (network,
initial configuration, legitimacy predicate) and call
:func:`register_protocol`.  Every scenario axis of the runtime --
graph family x scheduler x initial policy x fault plan x churn plan --
then multiplies across the new protocol for free; see
``docs/architecture.md`` ("Protocol registry").
"""

from .base import ProtocolAdapter, ProtocolRunConfig, corrupt_configuration
from .registry import (
    PROTOCOLS,
    capable_names,
    churn_capable_names,
    get_protocol,
    protocol_names,
    register_protocol,
)
from .runner import ProtocolResult, run_protocol

__all__ = [
    "PROTOCOLS",
    "ProtocolAdapter",
    "ProtocolResult",
    "ProtocolRunConfig",
    "capable_names",
    "churn_capable_names",
    "corrupt_configuration",
    "get_protocol",
    "protocol_names",
    "register_protocol",
    "run_protocol",
]
