"""Registry adapter for the PIF max-degree aggregation protocol (§3.2.3).

Drives :class:`repro.stabilization.pif.MaxDegreeProcess` -- propagation of
information with feedback over a *fixed* spanning tree -- through the
generic runner.  The fixed tree is the deterministic BFS spanning tree of
the workload graph, so a run's legitimate configuration (every node's
``dmax`` equal to the true tree degree) is fully determined by
``(family, n, seed)``.

The tree being fixed is also why ``supports_churn`` is ``False``: the
protocol aggregates over a tree chosen at build time, and after arbitrary
node/edge churn no legitimate configuration may exist (the fixed tree need
not span the mutated graph).  The process still implements the
``neighbor_added``/``neighbor_removed`` delta hooks so it survives network
mutation events structurally; it just cannot promise re-convergence.
"""

from __future__ import annotations

import weakref
from typing import Dict, Tuple

import networkx as nx
import numpy as np

from ..graphs.spanning import (
    bfs_spanning_tree,
    parent_map_from_edges,
    tree_degree,
)
from ..graphs.validation import check_network
from ..sim.network import Network
from ..sim.simulator import SimulationReport
from ..stabilization.pif import max_degree_process_factory, pif_legitimacy
from .base import (
    Predicate,
    ProtocolAdapter,
    ProtocolRunConfig,
    corrupt_configuration,
)
from .registry import register_protocol

__all__ = ["PIFMaxDegreeProtocol"]


class PIFMaxDegreeProtocol(ProtocolAdapter):
    """PIF max-degree aggregation over the graph's BFS spanning tree."""

    name = "pif_max_degree"
    description = ("PIF max-degree aggregation over a fixed BFS spanning "
                   "tree (feedback up, propagation down)")
    initial_policies = ("isolated", "corrupted")
    supports_churn = False
    supports_faults = True
    supports_crash = True
    supports_byzantine = True
    supports_array_backend = True

    #: Per-graph memo of ``(parent_map, expected_dmax)``: the fixed tree is
    #: a deterministic function of the (static -- no churn) graph, and one
    #: run consults it from three hooks (network build, legitimacy,
    #: metrics), so computing the BFS once per graph serves them all.  Held
    #: weakly so workload graphs are not kept alive.
    _tree_memo: "weakref.WeakKeyDictionary[nx.Graph, Tuple[Dict, int]]" = \
        weakref.WeakKeyDictionary()

    def _fixed_tree(self, graph: nx.Graph) -> Tuple[Dict, int]:
        """``(parent_map, expected_dmax)`` of the deterministic BFS tree."""
        cached = self._tree_memo.get(graph)
        if cached is None:
            tree = bfs_spanning_tree(graph)
            cached = (parent_map_from_edges(sorted(graph.nodes), set(tree)),
                      tree_degree(graph.nodes, tree))
            self._tree_memo[graph] = cached
        return cached

    def build_network(self, graph: nx.Graph, config: ProtocolRunConfig) -> Network:
        check_network(graph)
        parent_map, _ = self._fixed_tree(graph)
        return Network(graph, max_degree_process_factory(parent_map))

    def build_array_network(self, graph: nx.Graph,
                            config: ProtocolRunConfig) -> Network:
        from ..sim.array_substrates import build_array_pif_network

        check_network(graph)
        parent_map, _ = self._fixed_tree(graph)
        return build_array_pif_network(graph, parent_map)

    def prepare_initial(self, network: Network, config: ProtocolRunConfig,
                        rng: np.random.Generator) -> None:
        # "isolated" is the constructor state: every node knows only its own
        # tree degree and has heard nothing from its neighbours.
        if config.initial == "corrupted":
            corrupt_configuration(network, config, rng)

    def make_legitimacy(self, network: Network,
                        config: ProtocolRunConfig) -> Predicate:
        return pif_legitimacy(self._fixed_tree(network.graph)[1])

    def extract_metrics(self, network: Network, report: SimulationReport,
                        config: ProtocolRunConfig):
        return {"expected_dmax": self._fixed_tree(network.graph)[1]}


register_protocol(PIFMaxDegreeProtocol())
