"""Registry adapter for the standalone self-stabilizing spanning tree (§3.2.1).

Drives :class:`repro.stabilization.spanning_tree.SpanningTreeProcess` -- the
paper's substrate layer on its own -- through the generic runner, so the
tree-construction layer can be measured (and churned, and fault-injected)
in isolation from the degree-reduction machinery.

Legitimacy is :func:`repro.stabilization.spanning_tree.st_legitimacy`: a
min-id-rooted spanning tree of the *live* communication graph with coherent
distances.  It reads the live graph, so churned runs are judged against the
mutated topology exactly like MDST runs.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..graphs.validation import check_network
from ..sim.network import Network
from ..stabilization.spanning_tree import (
    spanning_tree_process_factory,
    st_legitimacy,
)
from .base import (
    Predicate,
    ProtocolAdapter,
    ProtocolRunConfig,
    corrupt_configuration,
)
from .registry import register_protocol

__all__ = ["SpanningTreeProtocol"]


class SpanningTreeProtocol(ProtocolAdapter):
    """The self-stabilizing spanning-tree substrate (rules R1/R2/R3)."""

    name = "spanning_tree"
    description = ("standalone self-stabilizing spanning tree "
                   "(min-id root, BFS-like, rules R1-R3)")
    initial_policies = ("isolated", "corrupted")
    supports_churn = True
    supports_faults = True
    supports_crash = True
    supports_byzantine = True
    supports_array_backend = True

    def build_network(self, graph: nx.Graph, config: ProtocolRunConfig) -> Network:
        check_network(graph)
        factory = spanning_tree_process_factory(
            n_upper=self.default_n_upper(graph, config))
        return Network(graph, factory)

    def build_array_network(self, graph: nx.Graph,
                            config: ProtocolRunConfig) -> Network:
        from ..sim.array_substrates import build_array_st_network

        check_network(graph)
        return build_array_st_network(
            graph, n_upper=self.default_n_upper(graph, config))

    def prepare_initial(self, network: Network, config: ProtocolRunConfig,
                        rng: np.random.Generator) -> None:
        # "isolated" is the constructor state already: every node its own
        # root at distance 0 with unheard neighbour views.
        if config.initial == "corrupted":
            corrupt_configuration(network, config, rng)

    def make_legitimacy(self, network: Network,
                        config: ProtocolRunConfig) -> Predicate:
        return st_legitimacy


register_protocol(SpanningTreeProtocol())
