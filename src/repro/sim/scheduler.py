"""Schedulers (daemons) driving the asynchronous execution.

A *scheduler* decides, within each round, in which order nodes take their
atomic steps and when in-flight messages get delivered.  Self-stabilization
results must hold under any (weakly fair) scheduler, so the library provides
several of them and the test-suite runs the protocol under all:

``SynchronousScheduler``
    Every round, every node first consumes the messages that were in its
    incoming channels at the start of the round (in a fixed node order), then
    performs its timeout action.  Deterministic; the fastest executions.

``RandomAsyncScheduler``
    Every round the set of enabled events (one timeout per node plus one
    delivery per in-flight message) is executed in a random order drawn from
    a seeded generator.  Models arbitrary asynchronous interleavings while
    remaining weakly fair (every node acts at least once per round).

``AdversarialScheduler``
    Like the synchronous scheduler, but a chosen set of "slow" links only
    delivers a message every ``max_delay`` rounds.  Models worst-case-ish
    link latencies while preserving reliability/FIFO.

Round accounting follows the standard self-stabilization definition: one
round is an execution fragment in which every node performs at least one
atomic step (here: its timeout action) and has had the opportunity to receive
the messages addressed to it at the beginning of the round.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import SchedulerError
from ..types import NodeId
from .network import Network
from .trace import TraceRecorder

__all__ = [
    "RoundStats",
    "Scheduler",
    "SynchronousScheduler",
    "RandomAsyncScheduler",
    "AdversarialScheduler",
    "make_scheduler",
]


@dataclass
class RoundStats:
    """Counters for a single simulated round."""

    steps: int = 0
    deliveries: int = 0
    timeouts: int = 0
    messages_sent: int = 0


class Scheduler(abc.ABC):
    """Abstract scheduler interface."""

    name: str = "abstract"

    @abc.abstractmethod
    def run_round(self, network: Network, trace: Optional[TraceRecorder] = None) -> RoundStats:
        """Execute one round on ``network`` and return its statistics."""

    # -- shared helpers --------------------------------------------------------

    @staticmethod
    def _deliver_one(network: Network, src: NodeId, dst: NodeId,
                     trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        """Deliver the head message of channel ``src -> dst`` as one atomic step."""
        channel = network.channel(src, dst)
        message = channel.deliver()
        process = network.processes[dst]
        process.on_message(src, message)
        process.steps_taken += 1
        sent = network.flush_outbox(dst)
        stats.steps += 1
        stats.deliveries += 1
        stats.messages_sent += sent
        if trace is not None:
            trace.record_delivery(src, dst, message, sent)

    @staticmethod
    def _timeout_one(network: Network, v: NodeId,
                     trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        """Run the timeout action of ``v`` as one atomic step."""
        process = network.processes[v]
        process.on_timeout()
        process.steps_taken += 1
        sent = network.flush_outbox(v)
        stats.steps += 1
        stats.timeouts += 1
        stats.messages_sent += sent
        if trace is not None:
            trace.record_timeout(v, sent)


class SynchronousScheduler(Scheduler):
    """Deterministic round-based scheduler.

    Within a round, nodes are processed in increasing id order.  Each node
    first receives every message that was queued on its incoming channels at
    the beginning of the round, then executes its timeout action (gossip).
    Messages emitted during the round are delivered in a later round.
    """

    name = "synchronous"

    def run_round(self, network: Network, trace: Optional[TraceRecorder] = None) -> RoundStats:
        stats = RoundStats()
        # Snapshot how many messages each channel holds at round start so that
        # messages produced during this round wait until the next one.
        snapshot: Dict[Tuple[NodeId, NodeId], int] = {
            key: len(chan) for key, chan in network.channels.items() if chan
        }
        for dst in network.node_ids:
            for src in network.neighbors(dst):
                count = snapshot.get((src, dst), 0)
                for _ in range(count):
                    if not network.channel(src, dst):
                        break
                    self._deliver_one(network, src, dst, trace, stats)
        for v in network.node_ids:
            self._timeout_one(network, v, trace, stats)
        return stats


class RandomAsyncScheduler(Scheduler):
    """Weakly fair random scheduler.

    The enabled events of a round (timeouts + deliveries of the messages in
    flight at round start) are executed in a uniformly random order.  The
    result models arbitrary asynchrony: a node may receive a neighbour's
    message before or after that neighbour's gossip for the round, different
    branches of the tree progress at different speeds, etc.
    """

    name = "random_async"

    def __init__(self, seed: int | None = None):
        self.rng = np.random.default_rng(seed)

    def run_round(self, network: Network, trace: Optional[TraceRecorder] = None) -> RoundStats:
        stats = RoundStats()
        events: List[Tuple[str, Tuple[NodeId, ...]]] = []
        for v in network.node_ids:
            events.append(("timeout", (v,)))
        for (src, dst), chan in network.channels.items():
            for _ in range(len(chan)):
                events.append(("deliver", (src, dst)))
        order = self.rng.permutation(len(events))
        for idx in order:
            kind, args = events[int(idx)]
            if kind == "timeout":
                self._timeout_one(network, args[0], trace, stats)
            else:
                src, dst = args
                if network.channel(src, dst):
                    self._deliver_one(network, src, dst, trace, stats)
        return stats


class AdversarialScheduler(Scheduler):
    """Scheduler with adversarially slow links.

    ``slow_links`` is a collection of directed ``(src, dst)`` pairs whose
    deliveries are withheld for up to ``max_delay`` rounds and then released
    as a burst (the whole backlog at once).  This models a bounded-delay
    adversary: messages are arbitrarily reordered *across* links and delayed,
    but every message is delivered within ``max_delay`` rounds of being sent,
    so the fairness assumption of the paper's model is preserved.  All other
    links behave synchronously.
    """

    name = "adversarial"

    def __init__(self, slow_links: Sequence[Tuple[NodeId, NodeId]] = (),
                 max_delay: int = 4, seed: int | None = None):
        if max_delay < 1:
            raise SchedulerError("max_delay must be >= 1")
        self.slow_links = {tuple(link) for link in slow_links}
        self.max_delay = max_delay
        self.rng = np.random.default_rng(seed)
        self._age: Dict[Tuple[NodeId, NodeId], int] = {}

    def _is_slow(self, link: Tuple[NodeId, NodeId]) -> bool:
        return link in self.slow_links

    def run_round(self, network: Network, trace: Optional[TraceRecorder] = None) -> RoundStats:
        stats = RoundStats()
        snapshot: Dict[Tuple[NodeId, NodeId], int] = {
            key: len(chan) for key, chan in network.channels.items() if chan
        }
        for dst in network.node_ids:
            for src in network.neighbors(dst):
                link = (src, dst)
                count = snapshot.get(link, 0)
                if count == 0:
                    continue
                if self._is_slow(link):
                    age = self._age.get(link, 0) + 1
                    if age < self.max_delay:
                        self._age[link] = age
                        continue
                    # release the whole backlog after max_delay rounds of delay
                    self._age[link] = 0
                    count = len(network.channel(src, dst))
                for _ in range(count):
                    if not network.channel(src, dst):
                        break
                    self._deliver_one(network, src, dst, trace, stats)
        for v in network.node_ids:
            self._timeout_one(network, v, trace, stats)
        return stats


def make_scheduler(kind: str, seed: int | None = None,
                   slow_links: Sequence[Tuple[NodeId, NodeId]] = (),
                   max_delay: int = 4) -> Scheduler:
    """Factory for schedulers by name (``synchronous``/``random``/``adversarial``)."""
    if kind in ("synchronous", "sync"):
        return SynchronousScheduler()
    if kind in ("random", "random_async", "async"):
        return RandomAsyncScheduler(seed=seed)
    if kind in ("adversarial", "slow"):
        return AdversarialScheduler(slow_links=slow_links, max_delay=max_delay, seed=seed)
    raise SchedulerError(f"unknown scheduler kind {kind!r}")
