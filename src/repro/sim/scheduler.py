"""Schedulers (daemons): policies over the kernel's enabled-event set.

A *scheduler* decides, within each round, in which order the enabled events
of the network execute.  Since the activity-aware kernel refactor the kernel
itself (:class:`~repro.sim.network.Network`) owns the question of *which*
events are enabled -- the timeout of every enabled node plus one delivery
per message queued toward an enabled node, exposed as an
:class:`~repro.sim.network.EnabledEvents` value -- and a scheduler is a thin
*policy* deciding only the execution order.  Self-stabilization results must
hold under any (weakly fair) scheduler, so the library provides several and
the test-suite runs the protocol under all:

``SynchronousScheduler``
    Every round, every node first consumes the messages that were in its
    incoming channels at the start of the round (in a fixed node order), then
    performs its timeout action.  Deterministic; the fastest executions.

``RandomAsyncScheduler``
    Every round the enabled events are executed in a random order drawn from
    a seeded generator.  Models arbitrary asynchronous interleavings while
    remaining weakly fair (every node acts at least once per round).

``AdversarialScheduler``
    Like the synchronous scheduler, but a chosen set of "slow" links only
    delivers a message every ``max_delay`` rounds.  Models worst-case-ish
    link latencies while preserving reliability/FIFO.

``WeightedFairScheduler``
    Synchronous deliveries, but node ``v`` performs ``weight(v)`` timeout
    actions per round instead of one.  Models hot hubs that act faster than
    the rest of the network while staying weakly fair (every enabled node
    still steps at least once per round).

Round accounting follows the standard self-stabilization definition: one
round is an execution fragment in which every node performs at least one
atomic step (here: its timeout action) and has had the opportunity to receive
the messages addressed to it at the beginning of the round.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import SchedulerError
from ..types import NodeId
from .channel import Channel
from .network import EnabledEvents, Network
from .trace import TraceRecorder

__all__ = [
    "RoundStats",
    "Scheduler",
    "SynchronousScheduler",
    "RandomAsyncScheduler",
    "AdversarialScheduler",
    "WeightedFairScheduler",
    "make_scheduler",
]


@dataclass
class RoundStats:
    """Counters for a single simulated round."""

    steps: int = 0
    deliveries: int = 0
    timeouts: int = 0
    messages_sent: int = 0


class Scheduler(abc.ABC):
    """Abstract scheduler: a policy ordering the kernel's enabled events.

    :meth:`run_round` is a template method: it asks the kernel for the
    enabled-event set at round start and hands it to
    :meth:`schedule_round`, which concrete schedulers implement purely as
    an ordering policy using the :meth:`_deliver_one` / :meth:`_timeout_one`
    step helpers.
    """

    name: str = "abstract"

    def run_round(self, network: Network, trace: Optional[TraceRecorder] = None) -> RoundStats:
        """Execute one round on ``network`` and return its statistics."""
        stats = RoundStats()
        self.schedule_round(network, network.enabled_events(), trace, stats)
        return stats

    @abc.abstractmethod
    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        """Order and execute the round's enabled events (the policy)."""

    # -- shared helpers --------------------------------------------------------

    @staticmethod
    def _deliver_one(network: Network, src: NodeId, dst: NodeId,
                     trace: Optional[TraceRecorder], stats: RoundStats,
                     channel: Optional[Channel] = None) -> None:
        """Deliver the head message of channel ``src -> dst`` as one atomic step."""
        if channel is None:
            channel = network.channel(src, dst)
        message = channel.deliver()
        process = network.processes[dst]
        process.on_message(src, message)
        process.steps_taken += 1
        network.note_step(dst)
        sent = network.flush_outbox(dst)
        stats.steps += 1
        stats.deliveries += 1
        stats.messages_sent += sent
        if trace is not None:
            trace.record_delivery(src, dst, message, sent)

    @staticmethod
    def _timeout_one(network: Network, v: NodeId,
                     trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        """Run the timeout action of ``v`` as one atomic step."""
        process = network.processes[v]
        process.on_timeout()
        process.steps_taken += 1
        network.note_step(v)
        sent = network.flush_outbox(v)
        stats.steps += 1
        stats.timeouts += 1
        stats.messages_sent += sent
        if trace is not None:
            trace.record_timeout(v, sent)

    @staticmethod
    def _deliveries_by_dst(events: EnabledEvents
                           ) -> List[Tuple[NodeId, List[Tuple[NodeId, int]]]]:
        """Group the enabled deliveries by destination, both levels sorted.

        Returns ``(dst, [(src, pending), ...])`` pairs with destinations in
        increasing id order and sources sorted within each destination --
        the fixed order the synchronous-style schedulers deliver in.
        """
        grouped: Dict[NodeId, List[Tuple[NodeId, int]]] = {}
        for src, dst, count in events.deliveries:
            grouped.setdefault(dst, []).append((src, count))
        return [(dst, sorted(grouped[dst])) for dst in sorted(grouped)]

    def _deliver_round_start_backlog(self, network: Network, events: EnabledEvents,
                                     trace: Optional[TraceRecorder],
                                     stats: RoundStats) -> None:
        """Deliver every message queued at round start, in fixed node order.

        The delivery discipline shared by the synchronous-style schedulers:
        destinations in increasing id order, sources sorted within each
        destination, messages emitted during the round left for a later one.
        """
        deliver_one = self._deliver_one
        for dst, sources in self._deliveries_by_dst(events):
            for src, count in sources:
                channel = network.channel(src, dst)
                for _ in range(count):
                    if not channel:
                        break
                    deliver_one(network, src, dst, trace, stats, channel)


class SynchronousScheduler(Scheduler):
    """Deterministic round-based scheduler.

    Within a round, nodes are processed in increasing id order.  Each node
    first receives every message that was queued on its incoming channels at
    the beginning of the round, then executes its timeout action (gossip).
    Messages emitted during the round are delivered in a later round.
    """

    name = "synchronous"

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        self._deliver_round_start_backlog(network, events, trace, stats)
        for v in events.timeouts:
            self._timeout_one(network, v, trace, stats)


class RandomAsyncScheduler(Scheduler):
    """Weakly fair random scheduler.

    The enabled events of a round (timeouts + deliveries of the messages in
    flight at round start) are executed in a uniformly random order.  The
    result models arbitrary asynchrony: a node may receive a neighbour's
    message before or after that neighbour's gossip for the round, different
    branches of the tree progress at different speeds, etc.
    """

    name = "random_async"

    def __init__(self, seed: int | None = None):
        self.rng = np.random.default_rng(seed)

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        pool: List[Tuple[str, Tuple[NodeId, ...]]] = []
        for v in events.timeouts:
            pool.append(("timeout", (v,)))
        for src, dst, count in events.deliveries:
            for _ in range(count):
                pool.append(("deliver", (src, dst)))
        order = self.rng.permutation(len(pool))
        for idx in order:
            kind, args = pool[int(idx)]
            if kind == "timeout":
                self._timeout_one(network, args[0], trace, stats)
            else:
                src, dst = args
                if network.channel(src, dst):
                    self._deliver_one(network, src, dst, trace, stats)


class AdversarialScheduler(Scheduler):
    """Scheduler with adversarially slow links.

    ``slow_links`` is a collection of directed ``(src, dst)`` pairs whose
    deliveries are withheld for up to ``max_delay`` rounds and then released
    as a burst (the whole backlog at once).  This models a bounded-delay
    adversary: messages are arbitrarily reordered *across* links and delayed,
    but every message is delivered within ``max_delay`` rounds of being sent,
    so the fairness assumption of the paper's model is preserved.  All other
    links behave synchronously.
    """

    name = "adversarial"

    def __init__(self, slow_links: Sequence[Tuple[NodeId, NodeId]] = (),
                 max_delay: int = 4, seed: int | None = None):
        if max_delay < 1:
            raise SchedulerError("max_delay must be >= 1")
        self.slow_links = {tuple(link) for link in slow_links}
        self.max_delay = max_delay
        self.rng = np.random.default_rng(seed)
        self._age: Dict[Tuple[NodeId, NodeId], int] = {}

    def _is_slow(self, link: Tuple[NodeId, NodeId]) -> bool:
        return link in self.slow_links

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        for dst, sources in self._deliveries_by_dst(events):
            for src, count in sources:
                link = (src, dst)
                if self._is_slow(link):
                    age = self._age.get(link, 0) + 1
                    if age < self.max_delay:
                        self._age[link] = age
                        continue
                    # release the whole backlog after max_delay rounds of delay
                    self._age[link] = 0
                    count = len(network.channel(src, dst))
                for _ in range(count):
                    if not network.channel(src, dst):
                        break
                    self._deliver_one(network, src, dst, trace, stats)
        for v in events.timeouts:
            self._timeout_one(network, v, trace, stats)


WeightMap = Union[Mapping[NodeId, int], Callable[[NodeId], int]]


class WeightedFairScheduler(Scheduler):
    """Synchronous scheduler with per-node step weights.

    Deliveries behave exactly like :class:`SynchronousScheduler`; the
    timeout phase runs in *passes*: pass 0 gives every enabled node one
    timeout action (in id order), pass ``k`` gives another action to every
    node whose weight exceeds ``k``.  A node with weight ``w`` therefore
    takes ``w`` timeout steps per round -- useful to stress hot hubs that
    gossip faster than the rest of the network -- while weak fairness is
    preserved (every enabled node steps at least once per round, and every
    queued message is still delivered at the round's start).

    Parameters
    ----------
    weights:
        Mapping or callable giving each node's step weight; nodes absent
        from a mapping default to ``default_weight``.  Weights must be
        ``>= 1``.
    default_weight:
        Weight of nodes not covered by ``weights``.
    """

    name = "weighted_fair"

    def __init__(self, weights: Optional[WeightMap] = None, default_weight: int = 1):
        if default_weight < 1:
            raise SchedulerError("default_weight must be >= 1 (weak fairness)")
        self.default_weight = int(default_weight)
        self._weight_fn: Callable[[NodeId], int]
        if weights is None:
            self._weight_fn = lambda v: self.default_weight
        elif callable(weights):
            self._weight_fn = weights
        else:
            frozen = {int(k): int(w) for k, w in weights.items()}
            self._weight_fn = lambda v: frozen.get(v, self.default_weight)

    def weight(self, v: NodeId) -> int:
        """Step weight of node ``v`` (validated ``>= 1``)."""
        w = int(self._weight_fn(v))
        if w < 1:
            raise SchedulerError(f"node {v} has weight {w}; weights must be >= 1")
        return w

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder], stats: RoundStats) -> None:
        self._deliver_round_start_backlog(network, events, trace, stats)
        remaining = {v: self.weight(v) for v in events.timeouts}
        while remaining:
            for v in events.timeouts:
                if v in remaining:
                    self._timeout_one(network, v, trace, stats)
                    remaining[v] -= 1
                    if remaining[v] <= 0:
                        del remaining[v]


def make_scheduler(kind: str, seed: int | None = None,
                   slow_links: Sequence[Tuple[NodeId, NodeId]] = (),
                   max_delay: int = 4,
                   weights: Optional[WeightMap] = None) -> Scheduler:
    """Factory for schedulers by name.

    ``synchronous``/``random``/``adversarial``/``weighted`` (the latter
    accepting per-node step ``weights``).
    """
    if kind in ("synchronous", "sync"):
        return SynchronousScheduler()
    if kind in ("random", "random_async", "async"):
        return RandomAsyncScheduler(seed=seed)
    if kind in ("adversarial", "slow"):
        return AdversarialScheduler(slow_links=slow_links, max_delay=max_delay, seed=seed)
    if kind in ("weighted", "weighted_fair"):
        return WeightedFairScheduler(weights=weights)
    raise SchedulerError(f"unknown scheduler kind {kind!r}")
