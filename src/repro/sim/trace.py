"""Execution traces and cumulative statistics.

The :class:`TraceRecorder` is optional (the simulator runs without one) and
comes in two flavours controlled by ``keep_events``:

* *counters only* (default) -- cheap enough to stay enabled in benchmarks;
  records per-message-type counts, per-round counters and message-size
  extrema;
* *full event log* -- additionally stores one :class:`TraceEvent` per
  delivery/timeout, used by the examples to print a readable play-by-play of
  a degree improvement (Figure 4 / Figure 5 behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..types import NodeId
from .messages import Message

__all__ = ["TraceEvent", "RoundRecord", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """A single recorded simulator event."""

    round_index: int
    kind: str              # "deliver" or "timeout"
    node: NodeId           # the node that took the step
    sender: Optional[NodeId]
    message_type: Optional[str]
    messages_emitted: int


@dataclass
class RoundRecord:
    """Aggregated counters for one round."""

    round_index: int
    steps: int = 0
    deliveries: int = 0
    timeouts: int = 0
    messages_sent: int = 0


class TraceRecorder:
    """Collects statistics (and optionally events) across a simulation run."""

    def __init__(self, keep_events: bool = False, network_size: int = 2):
        self.keep_events = keep_events
        self.network_size = max(2, network_size)
        self.events: List[TraceEvent] = []
        self.rounds: List[RoundRecord] = []
        self.message_type_counts: Dict[str, int] = {}
        self.max_message_bits: int = 0
        self.total_deliveries: int = 0
        self.total_timeouts: int = 0
        self.total_messages_sent: int = 0
        self._current_round: int = 0

    # -- hooks called by the scheduler/simulator -------------------------------

    def start_round(self, round_index: int) -> None:
        self._current_round = round_index
        self.rounds.append(RoundRecord(round_index=round_index))

    def record_delivery(self, src: NodeId, dst: NodeId, message: Message,
                        messages_emitted: int) -> None:
        name = message.type_name()
        self.message_type_counts[name] = self.message_type_counts.get(name, 0) + 1
        self.max_message_bits = max(self.max_message_bits,
                                    message.size_bits(self.network_size))
        self.total_deliveries += 1
        self.total_messages_sent += messages_emitted
        if self.rounds:
            rec = self.rounds[-1]
            rec.steps += 1
            rec.deliveries += 1
            rec.messages_sent += messages_emitted
        if self.keep_events:
            self.events.append(TraceEvent(
                round_index=self._current_round, kind="deliver", node=dst,
                sender=src, message_type=name, messages_emitted=messages_emitted))

    def record_timeout(self, v: NodeId, messages_emitted: int) -> None:
        self.total_timeouts += 1
        self.total_messages_sent += messages_emitted
        if self.rounds:
            rec = self.rounds[-1]
            rec.steps += 1
            rec.timeouts += 1
            rec.messages_sent += messages_emitted
        if self.keep_events:
            self.events.append(TraceEvent(
                round_index=self._current_round, kind="timeout", node=v,
                sender=None, message_type=None, messages_emitted=messages_emitted))

    # -- reporting --------------------------------------------------------------

    def deliveries_by_type(self) -> Dict[str, int]:
        """Delivered message counts keyed by message type name."""
        return dict(sorted(self.message_type_counts.items()))

    def non_gossip_deliveries(self, gossip_type: str = "InfoMsg") -> int:
        """Number of delivered messages that are not periodic gossip.

        The InfoMsg gossip runs forever by design; the interesting message
        count for complexity experiments is everything else (Search, Remove,
        Back, Deblock, Reverse, UpdateDist).
        """
        return sum(count for name, count in self.message_type_counts.items()
                   if name != gossip_type)

    def events_for_node(self, v: NodeId) -> List[TraceEvent]:
        """All recorded events where node ``v`` took the step (needs keep_events)."""
        return [e for e in self.events if e.node == v]

    def summary(self) -> Dict[str, object]:
        """Compact dictionary summary of the run, used in reports."""
        return {
            "rounds": len(self.rounds),
            "deliveries": self.total_deliveries,
            "timeouts": self.total_timeouts,
            "messages_sent": self.total_messages_sent,
            "max_message_bits": self.max_message_bits,
            "by_type": self.deliveries_by_type(),
        }
