"""Deterministic random-number management.

Every stochastic component of the library (graph generators, schedulers,
fault injectors, baselines) receives its own :class:`numpy.random.Generator`
derived from a single experiment seed through :func:`spawn_generators`.
Independent streams guarantee that, e.g., changing the number of fault
injections does not silently change which random graph is generated.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

__all__ = ["spawn_generators", "derive_seed", "seed_sequence"]


def seed_sequence(master_seed: int | None) -> np.random.SeedSequence:
    """A :class:`numpy.random.SeedSequence` for ``master_seed`` (None = entropy)."""
    return np.random.SeedSequence(master_seed)


def spawn_generators(master_seed: int | None, names: Iterable[str]) -> Dict[str, np.random.Generator]:
    """Spawn one independent generator per name, deterministically.

    >>> gens = spawn_generators(42, ["graph", "scheduler", "faults"])
    >>> sorted(gens)
    ['faults', 'graph', 'scheduler']
    """
    names = list(names)
    children = seed_sequence(master_seed).spawn(len(names))
    return {name: np.random.default_rng(child) for name, child in zip(names, children)}


def derive_seed(master_seed: int | None, index: int) -> int:
    """Derive a reproducible 31-bit integer sub-seed (for APIs that take ints)."""
    child = seed_sequence(master_seed).spawn(index + 1)[index]
    return int(np.random.default_rng(child).integers(0, 2**31 - 1))
