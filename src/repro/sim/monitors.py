"""Convergence and invariant monitors evaluated between rounds.

* :class:`ConvergenceMonitor` wraps a *legitimacy predicate* (a callable on
  the network returning ``True``/``False``) and declares convergence once the
  predicate has held for ``stability_window`` consecutive rounds.  The window
  matters because a self-stabilizing protocol keeps gossiping forever: a
  configuration may look legitimate for one round and then be destroyed by an
  in-flight message, so single-round legitimacy is not convergence.

* :class:`ClosureMonitor` additionally verifies the *closure* property of
  Definition 1: once convergence has been declared, the predicate must keep
  holding; any later violation is recorded (and optionally raised).

* :class:`InvariantMonitor` checks safety invariants every round (e.g. "the
  set of tree edges never disconnects the already-agreed tree") and raises on
  the first violation, giving tests an early, localised failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..exceptions import SimulationError
from .network import Network

__all__ = ["ConvergenceMonitor", "ClosureMonitor", "InvariantMonitor"]

Predicate = Callable[[Network], bool]


class ConvergenceMonitor:
    """Declares convergence after a predicate holds for a window of rounds."""

    def __init__(self, predicate: Predicate, stability_window: int = 3):
        if stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        self.predicate = predicate
        self.stability_window = stability_window
        self.consecutive_holds = 0
        self.first_hold_round: Optional[int] = None
        self.converged_round: Optional[int] = None

    @property
    def converged(self) -> bool:
        """Whether convergence has been declared."""
        return self.converged_round is not None

    def observe(self, network: Network, round_index: int) -> bool:
        """Evaluate the predicate after ``round_index``; return convergence state."""
        if self.predicate(network):
            self.consecutive_holds += 1
            if self.first_hold_round is None:
                self.first_hold_round = round_index
            if (self.consecutive_holds >= self.stability_window
                    and self.converged_round is None):
                self.converged_round = round_index
        else:
            self.consecutive_holds = 0
            self.first_hold_round = None
        return self.converged


class ClosureMonitor:
    """Tracks violations of the closure property after convergence."""

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.active = False
        self.violations: List[int] = []

    def arm(self) -> None:
        """Start checking closure (call once convergence has been declared)."""
        self.active = True

    def observe(self, network: Network, round_index: int) -> None:
        if self.active and not self.predicate(network):
            self.violations.append(round_index)

    @property
    def violated(self) -> bool:
        return bool(self.violations)


@dataclass
class InvariantViolation:
    round_index: int
    name: str
    detail: str


class InvariantMonitor:
    """Checks named safety invariants every round.

    Parameters
    ----------
    invariants:
        Mapping-like list of ``(name, callable)`` pairs; each callable takes
        the network and returns ``True`` (ok) or ``False``/a string detail.
    raise_on_violation:
        If ``True`` (default) raise :class:`SimulationError` at the first
        violation; otherwise record it and continue.
    """

    def __init__(self, invariants: List[tuple[str, Callable[[Network], bool | str]]],
                 raise_on_violation: bool = True):
        self.invariants = list(invariants)
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []

    def observe(self, network: Network, round_index: int) -> None:
        for name, check in self.invariants:
            result = check(network)
            ok = result is True
            if not ok:
                detail = result if isinstance(result, str) else "invariant returned False"
                violation = InvariantViolation(round_index, name, detail)
                self.violations.append(violation)
                if self.raise_on_violation:
                    raise SimulationError(
                        f"invariant {name!r} violated at round {round_index}: {detail}")

    @property
    def violated(self) -> bool:
        return bool(self.violations)
