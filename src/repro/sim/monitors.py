"""Convergence and invariant monitors evaluated between rounds.

* :class:`ConvergenceMonitor` wraps a *legitimacy predicate* (a callable on
  the network returning ``True``/``False``) and declares convergence once the
  predicate has held for ``stability_window`` consecutive rounds.  The window
  matters because a self-stabilizing protocol keeps gossiping forever: a
  configuration may look legitimate for one round and then be destroyed by an
  in-flight message, so single-round legitimacy is not convergence.

* :class:`ClosureMonitor` additionally verifies the *closure* property of
  Definition 1: once convergence has been declared, the predicate must keep
  holding; any later violation is recorded (and optionally raised).

* :class:`InvariantMonitor` checks safety invariants every round (e.g. "the
  set of tree edges never disconnects the already-agreed tree") and raises on
  the first violation, giving tests an early, localised failure.

Incremental evaluation
----------------------
Legitimacy predicates are global computations (spanning-tree checks, the
improvement-rule fixpoint test) that historically re-ran from scratch every
round even when nothing changed.  :class:`PredicateCache` makes the monitors
incremental: it memoizes the last verdict keyed on the kernel's
:meth:`~repro.sim.network.Network.snapshot_key` -- the canonical fingerprint
of the observable configuration -- and re-evaluates only when the
fingerprint changed.  Because the fingerprint determines the snapshots
exactly, any predicate that is a pure function of the per-node snapshots
(all predicates in this library are) evaluates byte-identically; only the
redundant re-evaluations are skipped.  The simulator shares one cache
between the convergence and closure monitors, so the post-convergence
closure check of an unchanged configuration is free.

The kernel maintains the fingerprint itself incrementally (dirty-node set,
per-node cached key tuples -- see ``docs/performance.md``): when the
observable configuration is unchanged the kernel hands back the *same key
object*, so the cache's equality test short-circuits on identity, and when
only a few nodes changed the comparison fails fast on their entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..exceptions import SimulationError
from .network import Network

__all__ = ["ConvergenceMonitor", "ClosureMonitor", "InvariantMonitor",
           "PredicateCache"]

Predicate = Callable[[Network], bool]


class PredicateCache:
    """Verdict cache keyed on the network's configuration fingerprint.

    Wraps a predicate; calling the cache evaluates the predicate only when
    the observable configuration changed since the previous call.  Use only
    with predicates that are pure functions of the per-node snapshots and
    the communication graph -- a predicate reading channel contents or
    external state must stay uncached (pass ``cache_predicate=False`` to
    the simulator).

    The cache keys on ``(snapshot_key, topology_version)``: a live topology
    change (node/edge churn) can flip a graph-reading verdict -- removing a
    tree edge, or adding an edge that enables an improvement -- while
    leaving every per-node snapshot byte-identical, so the snapshot
    fingerprint alone is not a sound key on a mutable network.

    Attributes
    ----------
    evaluations:
        Number of real predicate evaluations performed.
    hits:
        Number of calls answered from the cache.
    """

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.evaluations = 0
        self.hits = 0
        self._key: Optional[tuple] = None
        self._topology: Optional[int] = None
        self._verdict: Optional[bool] = None

    def __call__(self, network: Network) -> bool:
        key = network.snapshot_key()
        topology = network.topology_version
        if (self._verdict is not None and topology == self._topology
                and key == self._key):
            self.hits += 1
            return self._verdict
        verdict = bool(self.predicate(network))
        self._key = key
        self._topology = topology
        self._verdict = verdict
        self.evaluations += 1
        return verdict


class ConvergenceMonitor:
    """Declares convergence after a predicate holds for a window of rounds."""

    def __init__(self, predicate: Predicate, stability_window: int = 3):
        if stability_window < 1:
            raise ValueError("stability_window must be >= 1")
        self.predicate = predicate
        self.stability_window = stability_window
        self.consecutive_holds = 0
        self.first_hold_round: Optional[int] = None
        self.converged_round: Optional[int] = None

    @property
    def converged(self) -> bool:
        """Whether convergence has been declared."""
        return self.converged_round is not None

    def observe(self, network: Network, round_index: int) -> bool:
        """Evaluate the predicate after ``round_index``; return convergence state."""
        if self.predicate(network):
            self.consecutive_holds += 1
            if self.first_hold_round is None:
                self.first_hold_round = round_index
            if (self.consecutive_holds >= self.stability_window
                    and self.converged_round is None):
                self.converged_round = round_index
        else:
            self.consecutive_holds = 0
            self.first_hold_round = None
        return self.converged

    def reset_stability(self) -> None:
        """Forget the current stability streak (e.g. after a fault injection).

        Clears the declared convergence round, the consecutive-hold counter
        *and* the first-hold round, so a convergence reported after a
        mid-run fault can never predate the fault.
        """
        self.converged_round = None
        self.consecutive_holds = 0
        self.first_hold_round = None


class ClosureMonitor:
    """Tracks violations of the closure property after convergence."""

    def __init__(self, predicate: Predicate):
        self.predicate = predicate
        self.active = False
        self.violations: List[int] = []

    def arm(self) -> None:
        """Start checking closure (call once convergence has been declared)."""
        self.active = True

    def observe(self, network: Network, round_index: int) -> None:
        if self.active and not self.predicate(network):
            self.violations.append(round_index)

    @property
    def violated(self) -> bool:
        return bool(self.violations)


@dataclass
class InvariantViolation:
    round_index: int
    name: str
    detail: str


class InvariantMonitor:
    """Checks named safety invariants every round.

    Parameters
    ----------
    invariants:
        Mapping-like list of ``(name, callable)`` pairs; each callable takes
        the network and returns ``True`` (ok) or ``False``/a string detail.
    raise_on_violation:
        If ``True`` (default) raise :class:`SimulationError` at the first
        violation; otherwise record it and continue.

    Invariants may inspect anything (channels included), so they are never
    cached; every round evaluates every invariant.
    """

    def __init__(self, invariants: List[tuple[str, Callable[[Network], bool | str]]],
                 raise_on_violation: bool = True):
        self.invariants = list(invariants)
        self.raise_on_violation = raise_on_violation
        self.violations: List[InvariantViolation] = []

    def observe(self, network: Network, round_index: int) -> None:
        for name, check in self.invariants:
            result = check(network)
            ok = result is True
            if not ok:
                detail = result if isinstance(result, str) else "invariant returned False"
                violation = InvariantViolation(round_index, name, detail)
                self.violations.append(violation)
                if self.raise_on_violation:
                    raise SimulationError(
                        f"invariant {name!r} violated at round {round_index}: {detail}")

    @property
    def violated(self) -> bool:
        return bool(self.violations)
