"""Message base classes for the asynchronous message-passing simulator.

The simulator is protocol-agnostic: any object deriving from
:class:`Message` can travel over a FIFO channel.  Messages know how to
estimate their own size in *bits* so that the experiments can measure the
``O(n log n)`` message-length claim of the paper without serialising
anything for real.

Size accounting convention
--------------------------
* a node identifier or integer counter costs ``ceil(log2(n)) + 1`` bits,
  where ``n`` is the network size (provided by the accounting context);
* a boolean costs 1 bit;
* a list costs the sum of its elements plus a length field;
* the message type tag costs a constant 4 bits (there are < 16 types).

This mirrors the paper's accounting, where all variables are "of size
O(log n) bits".

Hot-path layout
---------------
Message objects are the single most allocated kind of object in a
simulation, so the hierarchy is kept as flat as the interpreter allows:
on Python >= 3.10 every message class declared through
:func:`message_dataclass` is a *slotted* frozen dataclass (no per-instance
``__dict__``), and the per-instance size cache is an ordinary slot.  On 3.9
the classes fall back to plain frozen dataclasses with identical semantics.
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass, field, fields, is_dataclass
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

__all__ = ["Message", "estimate_bits", "id_bits", "message_dataclass"]

#: Constant cost (bits) of the message type tag.
TYPE_TAG_BITS = 4


if sys.version_info >= (3, 10):
    def message_dataclass(cls):
        """Declare a message type: frozen dataclass, slotted where supported.

        Use instead of ``@dataclass(frozen=True)`` for every class in the
        message hierarchy; third-party subclasses declared with a plain
        ``@dataclass(frozen=True)`` remain fully compatible (they simply
        keep a ``__dict__``).
        """
        return dataclass(frozen=True, slots=True)(cls)
else:  # pragma: no cover - exercised by the 3.9 CI lane
    def message_dataclass(cls):
        """Declare a message type (3.9 fallback: no ``__slots__``)."""
        return dataclass(frozen=True)(cls)


@lru_cache(maxsize=1024)
def id_bits(n: int) -> int:
    """Number of bits needed to encode one identifier in an ``n``-node network.

    Cached per network size (a handful of small ints per process); called
    once per integer field of every message the accounting layer sizes.
    """
    return max(1, math.ceil(math.log2(max(n, 2)))) + 1


def estimate_bits(value: Any, n: int) -> int:
    """Recursively estimate the encoded size of ``value`` in bits.

    ``n`` is the network size used to cost identifiers/integers.

    The estimate is *deterministic* for every supported container: sets and
    frozensets are costed as a commutative sum of their elements' costs (plus
    a length field), so the result never depends on the hash-seed-dependent
    iteration order of the set.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return id_bits(n)
    if isinstance(value, float):
        return 32
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        # Length field + summed element costs.  A set's iteration order is
        # hash-seed dependent, but addition commutes, so the estimate is
        # identical across processes/PYTHONHASHSEED values.
        total = id_bits(n)
        for item in value:
            total += estimate_bits(item, n)
        return total
    if isinstance(value, dict):
        total = id_bits(n)
        for k, v in value.items():
            total += estimate_bits(k, n) + estimate_bits(v, n)
        return total
    if is_dataclass(value) and not isinstance(value, type):
        # Private fields (the size cache of nested messages) are transport
        # metadata, not payload; they are never costed.
        return sum(estimate_bits(getattr(value, f.name), n)
                   for f in fields(value) if not f.name.startswith("_"))
    # Fallback: unknown objects cost one identifier.
    return id_bits(n)


#: Per-class cache of payload field names (private fields excluded), so the
#: sizing hot path never re-enumerates ``dataclasses.fields``.
_PAYLOAD_FIELDS: Dict[type, Tuple[str, ...]] = {}


@message_dataclass
class Message:
    """Base class of all protocol messages.

    Subclasses are frozen dataclasses; immutability guarantees that a message
    cannot be mutated after being placed on a channel (which would violate
    the message-passing abstraction).  Declare subclasses with
    :func:`message_dataclass` to keep them slotted on interpreters that
    support it; a plain ``@dataclass(frozen=True)`` works too.
    """

    #: Per-instance ``(n, bits)`` size cache -- transport metadata, excluded
    #: from equality, hashing, repr and the size accounting itself.
    _size_bits_cache: Optional[Tuple[int, int]] = field(
        default=None, init=False, repr=False, compare=False)

    def type_name(self) -> str:
        """Short human-readable type name used by traces and statistics."""
        return type(self).__name__

    def size_bits(self, n: int) -> int:
        """Estimated size of this message in bits for an ``n``-node network.

        Messages are immutable, so the estimate is cached on the instance
        the first time it is computed (a message typically has its size
        taken several times: once per channel it is broadcast onto plus
        once per delivery), which keeps the per-send/per-delivery
        accounting of the simulation kernel off the hot path.  The cache
        lives and dies with the message object -- nothing is retained
        globally across simulations.
        """
        cached = getattr(self, "_size_bits_cache", None)
        if cached is not None and cached[0] == n:
            return cached[1]
        cls = type(self)
        names = _PAYLOAD_FIELDS.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(self)
                          if not f.name.startswith("_"))
            _PAYLOAD_FIELDS[cls] = names
        bits = TYPE_TAG_BITS
        for name in names:
            bits += estimate_bits(getattr(self, name), n)
        object.__setattr__(self, "_size_bits_cache", (n, bits))
        return bits


@message_dataclass
class GarbageMessage(Message):
    """An arbitrary junk message used by fault injection.

    Self-stabilizing protocols must tolerate arbitrary channel contents in
    the initial configuration; protocols in this library ignore (and thereby
    flush) messages they do not recognise.
    """

    payload: tuple = field(default_factory=tuple)
