"""Message base classes for the asynchronous message-passing simulator.

The simulator is protocol-agnostic: any object deriving from
:class:`Message` can travel over a FIFO channel.  Messages know how to
estimate their own size in *bits* so that the experiments can measure the
``O(n log n)`` message-length claim of the paper without serialising
anything for real.

Size accounting convention
--------------------------
* a node identifier or integer counter costs ``ceil(log2(n)) + 1`` bits,
  where ``n`` is the network size (provided by the accounting context);
* a boolean costs 1 bit;
* a list costs the sum of its elements plus a length field;
* the message type tag costs a constant 4 bits (there are < 16 types).

This mirrors the paper's accounting, where all variables are "of size
O(log n) bits".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields, is_dataclass
from functools import lru_cache
from typing import Any, Iterable

__all__ = ["Message", "estimate_bits", "id_bits"]

#: Constant cost (bits) of the message type tag.
TYPE_TAG_BITS = 4


@lru_cache(maxsize=1024)
def id_bits(n: int) -> int:
    """Number of bits needed to encode one identifier in an ``n``-node network.

    Cached per network size (a handful of small ints per process); called
    once per integer field of every message the accounting layer sizes.
    """
    return max(1, math.ceil(math.log2(max(n, 2)))) + 1


def estimate_bits(value: Any, n: int) -> int:
    """Recursively estimate the encoded size of ``value`` in bits.

    ``n`` is the network size used to cost identifiers/integers.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return id_bits(n)
    if isinstance(value, float):
        return 32
    if isinstance(value, str):
        return 8 * len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return id_bits(n) + sum(estimate_bits(item, n) for item in value)
    if isinstance(value, dict):
        return id_bits(n) + sum(
            estimate_bits(k, n) + estimate_bits(v, n) for k, v in value.items())
    if is_dataclass(value) and not isinstance(value, type):
        return sum(estimate_bits(getattr(value, f.name), n) for f in fields(value))
    # Fallback: unknown objects cost one identifier.
    return id_bits(n)


@dataclass(frozen=True)
class Message:
    """Base class of all protocol messages.

    Subclasses are frozen dataclasses; immutability guarantees that a message
    cannot be mutated after being placed on a channel (which would violate
    the message-passing abstraction).
    """

    def type_name(self) -> str:
        """Short human-readable type name used by traces and statistics."""
        return type(self).__name__

    def size_bits(self, n: int) -> int:
        """Estimated size of this message in bits for an ``n``-node network.

        Messages are immutable, so the estimate is cached on the instance
        the first time it is computed (a message typically has its size
        taken several times: once per channel it is broadcast onto plus
        once per delivery), which keeps the per-send/per-delivery
        accounting of the simulation kernel off the hot path.  The cache
        lives and dies with the message object -- nothing is retained
        globally across simulations.
        """
        cached = self.__dict__.get("_size_bits_cache")
        if cached is not None and cached[0] == n:
            return cached[1]
        payload = 0
        for f in fields(self):
            payload += estimate_bits(getattr(self, f.name), n)
        bits = TYPE_TAG_BITS + payload
        object.__setattr__(self, "_size_bits_cache", (n, bits))
        return bits


@dataclass(frozen=True)
class GarbageMessage(Message):
    """An arbitrary junk message used by fault injection.

    Self-stabilizing protocols must tolerate arbitrary channel contents in
    the initial configuration; protocols in this library ignore (and thereby
    flush) messages they do not recognise.
    """

    payload: tuple = field(default_factory=tuple)
