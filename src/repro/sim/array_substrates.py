"""Array-backend column drivers for the substrate protocols.

The MDST array backend (:mod:`.array_kernel` / :mod:`.array_engine`) splits
into two halves: a protocol-agnostic slot engine (plan builders +
``execute_plan``) and a protocol-specific column driver (the ``ops``
object).  This module supplies column drivers for the two substrate
protocols -- the standalone self-stabilizing spanning tree and the
PIF-style max-degree aggregation -- so ``backend="array"`` covers every
registry protocol.

Design
------
Each driver pairs a small column kernel (own-state and per-edge view
columns over the same CSR geometry as :class:`~.array_kernel.ArrayKernel`)
with *proxy-backed* processes: the real
:class:`~repro.stabilization.spanning_tree.SpanningTreeProcess` /
:class:`~repro.stabilization.pif.MaxDegreeProcess` classes run with their
variables and neighbour views redirected into the columns.  Every scalar
path -- fault corruption (exact rng draw order), snapshots, state-bits
accounting, the fallback object scheduler -- therefore executes the
untouched upstream code, while the batched engine replaces the per-event
handler bodies with one vectorized rules pass per slot.

Unlike the MDST driver these substrates do **not** use virtual gossip
tokens (``virtual_gossip = False``): their channels are plain object
:class:`~.channel.Channel` instances and timeout gossip goes through the
ordinary ``broadcast`` + ``flush_outbox`` machinery, which makes channel
statistics, trace counters and rng evolution byte-identical to the object
backend by construction.  The batching win comes from the vectorized rule
application on the delivery and timeout slots; per-event ordering
equivalence follows from the same commutation argument as the MDST engine
(events at distinct actors touch disjoint own-state, and a gossip send
only appends behind already-queued traffic).

As for the MDST driver, per-channel ``max_queue_length`` peaks are *not*
part of the byte-identity contract (no run-result field reads them): the
slot-major execution reaches the same final state through a reordered
event sequence, and an instantaneous queue-depth peak is sensitive to
that order.  ``sent``/``delivered``/``max_message_bits`` stay exact.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import SimulationError
from ..stabilization.pif import DegreeInfo, MaxDegreeProcess
from ..stabilization.spanning_tree import STInfo, SpanningTreeProcess
from ..types import NodeId
from .array_kernel import _build_csr
from .messages import GarbageMessage
from .network import Network

__all__ = [
    "STKernel",
    "PIFKernel",
    "ArraySpanningTreeProcess",
    "ArrayMaxDegreeProcess",
    "SpanningTreeArrayNetwork",
    "PIFArrayNetwork",
    "build_array_st_network",
    "build_array_pif_network",
]

_I64 = np.int64
_INT_MAX = np.iinfo(np.int64).max
_INT_MIN = np.iinfo(np.int64).min


class SubstrateKernel:
    """CSR topology plus the flat-row geometry helpers the drivers share."""

    def __init__(self, graph: nx.Graph):
        self.node_ids: List[NodeId] = sorted(graph.nodes)
        self.n = len(self.node_ids)
        self.index, self.indptr, self.nbr_idx, self.nbr_ids = _build_csr(
            graph, self.node_ids)
        self.ids = np.asarray(self.node_ids, dtype=_I64)
        self.total = int(self.indptr[-1])
        #: scalar-path lookup ``(owner id, neighbour id) -> flat row``.
        self.pos: Dict[Tuple[NodeId, NodeId], int] = {}
        for i, v in enumerate(self.node_ids):
            for f in range(int(self.indptr[i]), int(self.indptr[i + 1])):
                self.pos[(v, int(self.nbr_ids[f]))] = f
        self._full_flat = np.arange(self.total, dtype=_I64)
        self._full_starts = self.indptr[:-1].astype(np.intp)
        self._all_idx = np.arange(self.n, dtype=_I64)
        self._row_counts = np.diff(self.indptr).astype(_I64)

    def rows_of(self, S: np.ndarray):
        """Flat view rows of the node-index subset ``S`` plus segment starts.

        Same shape contract as :meth:`~.array_kernel.ArrayKernel.rows_of`;
        callers normalise a full-size ``S`` to the sorted index vector
        before using the fast path.
        """
        if len(S) == self.n:
            return self._full_flat, self._full_starts, self._row_counts
        counts = (self.indptr[S + 1] - self.indptr[S]).astype(_I64)
        total = int(counts.sum())
        starts = np.zeros(len(S), dtype=_I64)
        np.cumsum(counts[:-1], out=starts[1:])
        flat = (np.repeat(self.indptr[S] - starts, counts)
                + np.arange(total, dtype=_I64))
        return flat, starts.astype(np.intp), counts


class STKernel(SubstrateKernel):
    """Column store + vectorized rules of the spanning-tree substrate."""

    def __init__(self, graph: nx.Graph, n_upper: int):
        super().__init__(graph)
        self.n_upper = int(n_upper)
        # -- own state (TreeVars) -----------------------------------------------
        self.root = self.ids.copy()
        self.parent = self.ids.copy()
        self.distance = np.zeros(self.n, dtype=_I64)
        # -- neighbour views (NeighborView), one row per directed edge ----------
        self.v_root = self.nbr_ids.copy()
        self.v_parent = self.nbr_ids.copy()
        self.v_distance = np.zeros(self.total, dtype=_I64)
        self.v_heard = np.zeros(self.total, dtype=bool)
        # -- parent-pointer lookup (same construction as ArrayKernel) -----------
        lo = int(min(self.ids.min(initial=0), -5)) - 1
        hi = int(max(self.ids.max(initial=0), self.n_upper + 5, 100)) + 1
        self._key_off = -lo
        self._key_mod = hi - lo + 1
        owner_idx = np.repeat(np.arange(self.n, dtype=_I64),
                              np.diff(self.indptr).astype(_I64))
        self.flat_keys = owner_idx * self._key_mod + (self.nbr_ids + self._key_off)

    def parent_rows(self, S: np.ndarray, parents: np.ndarray):
        """Flat view row of each node's parent pointer (or -1 when absent)."""
        shifted = parents + self._key_off
        in_range = (shifted >= 0) & (shifted < self._key_mod)
        qkeys = S * self._key_mod + np.where(in_range, shifted, 0)
        pos = np.searchsorted(self.flat_keys, qkeys)
        pos_c = np.minimum(pos, self.total - 1)
        valid = in_range & (pos < self.total) & (self.flat_keys[pos_c] == qkeys)
        return np.where(valid, pos_c, -1), valid

    def refresh(self, S: np.ndarray) -> None:
        """Vectorized ``SpanningTreeProcess.apply_rules`` over the subset ``S``.

        Replicates the scalar R2 -> R1 -> R3 pass exactly, with the
        between-rule predicate recomputation that pass implies:

        * After the R2 phase ``new_root_candidate`` is ``False`` for every
          node (a reset state is trivially coherent; a node that did not
          reset was already coherent), so the R1 gate reduces to a
          non-empty candidate set and the R3 gate to ``not
          coherent_distance``.
        * After R1 the adopted state is again coherent (the candidate
          filter enforces the distance bound and the adopted root matches
          the new parent's advertised root), so R3 sees ``nrc == False``
          too; and since coherent-parent forces ``distance == 0`` whenever
          ``parent == self``, R3 can only fire on a heard non-self parent
          whose advertised distance disagrees.
        """
        if len(S) == self.n:
            S = self._all_idx
        ids = self.ids
        n_up = self.n_upper
        root, parent, dist = self.root, self.parent, self.distance
        vh, vr, vd = self.v_heard, self.v_root, self.v_distance
        flat, starts, counts = self.rows_of(S)
        sid = ids[S]
        r = root[S]
        p = parent[S]
        d = dist[S]
        # -- R2: new_root_candidate == (not coherent_parent) or d >= n_upper ----
        selfp = p == sid
        cp = r <= sid
        cp &= np.where(selfp, (r == sid) & (d == 0), True)
        prow, valid = self.parent_rows(S, p)
        other = ~selfp
        ok = np.where(other, valid, True)
        m = other & valid
        if m.any():
            pr = prow[m]
            ok[m] = (~vh[pr]) | (vr[pr] == r[m])
        cp &= ok
        nrc = (~cp) | (d >= n_up)
        if nrc.any():
            t = S[nrc]
            root[t] = ids[t]
            parent[t] = ids[t]
            dist[t] = 0
            r = root[S]
        # -- R1: adopt the smallest advertised root (min root, then min id) ------
        fh = vh[flat]
        fr = vr[flat]
        fd = vd[flat]
        cand = fh & (fr < np.repeat(r, counts)) & (fd + 1 < n_up)
        seg_min = np.minimum.reduceat(np.where(cand, fr, _INT_MAX), starts)
        fired = seg_min != _INT_MAX
        if fired.any():
            # Rows are sorted by neighbour id, so the first row achieving
            # the segment-minimum root is the scalar tie-break winner.
            tie = np.where(cand & (fr == np.repeat(seg_min, counts)),
                           np.arange(len(flat), dtype=_I64), len(flat))
            seg_pos = np.minimum.reduceat(tie, starts)
            frows = flat[seg_pos[fired]]
            t = S[fired]
            root[t] = vr[frows]
            parent[t] = self.nbr_ids[frows]
            dist[t] = vd[frows] + 1
        # -- R3: distance repair --------------------------------------------------
        p = parent[S]
        d = dist[S]
        selfp = p == sid
        prow, valid = self.parent_rows(S, p)
        m = (~selfp) & valid
        heard_p = np.zeros(len(S), dtype=bool)
        pd = np.zeros(len(S), dtype=_I64)
        if m.any():
            pr = prow[m]
            heard_p[m] = vh[pr]
            pd[m] = vd[pr]
        fire = m & heard_p & (d != pd + 1)
        if fire.any():
            nd = pd[fire] + 1
            t = S[fire]
            dist[t] = nd
            over = nd >= n_up
            if over.any():
                t2 = t[over]
                root[t2] = ids[t2]
                parent[t2] = ids[t2]
                dist[t2] = 0


class PIFKernel(SubstrateKernel):
    """Column store + vectorized aggregation of the max-degree substrate."""

    def __init__(self, graph: nx.Graph):
        super().__init__(graph)
        # -- own state (fixed tree + mutable aggregation) ------------------------
        self.parent = np.zeros(self.n, dtype=_I64)
        self.degree = np.zeros(self.n, dtype=_I64)
        self.sub_max = np.zeros(self.n, dtype=_I64)
        self.dmax = np.zeros(self.n, dtype=_I64)
        # -- neighbour views, one row per directed edge --------------------------
        self.vp_parent = np.zeros(self.total, dtype=_I64)
        self.vp_sub_max = np.zeros(self.total, dtype=_I64)
        self.vp_dmax = np.zeros(self.total, dtype=_I64)
        #: Flat view row of each node's (fixed) tree parent, -1 for the root.
        self.parent_row = np.full(self.n, -1, dtype=_I64)

    def finalize(self) -> None:
        """Precompute parent rows once the processes copied the tree in."""
        for i in range(self.n):
            p = int(self.parent[i])
            if p != int(self.ids[i]):
                row = self.pos.get((self.node_ids[i], p))
                if row is not None:
                    self.parent_row[i] = row

    def refresh(self, S: np.ndarray) -> None:
        """Vectorized ``MaxDegreeProcess._recompute`` over the subset ``S``."""
        if len(S) == self.n:
            S = self._all_idx
        flat, starts, counts = self.rows_of(S)
        sid = self.ids[S]
        child = self.vp_parent[flat] == np.repeat(sid, counts)
        masked = np.where(child, self.vp_sub_max[flat], _INT_MIN)
        seg = np.maximum.reduceat(masked, starts)
        sm = np.maximum(self.degree[S], seg)
        self.sub_max[S] = sm
        prow = self.parent_row[S]
        copy_parent = (self.parent[S] != sid) & (prow >= 0)
        dm = np.where(copy_parent, self.vp_dmax[np.maximum(prow, 0)], sm)
        self.dmax[S] = dm


# -- column-backed proxies -----------------------------------------------------


class _STVars:
    """Column-backed stand-in for :class:`~..stabilization.spanning_tree.TreeVars`."""

    __slots__ = ("_k", "_i")

    def __init__(self, kernel: STKernel, i: int):
        object.__setattr__(self, "_k", kernel)
        object.__setattr__(self, "_i", i)

    @property
    def root(self) -> int:
        return int(self._k.root[self._i])

    @root.setter
    def root(self, value: int) -> None:
        self._k.root[self._i] = value

    @property
    def parent(self) -> int:
        return int(self._k.parent[self._i])

    @parent.setter
    def parent(self, value: int) -> None:
        self._k.parent[self._i] = value

    @property
    def distance(self) -> int:
        return int(self._k.distance[self._i])

    @distance.setter
    def distance(self, value: int) -> None:
        self._k.distance[self._i] = value


class _STView:
    """Column-backed stand-in for one :class:`NeighborView` (one flat row)."""

    __slots__ = ("_k", "_f")

    def __init__(self, kernel: STKernel, f: int):
        object.__setattr__(self, "_k", kernel)
        object.__setattr__(self, "_f", f)

    @property
    def root(self) -> int:
        return int(self._k.v_root[self._f])

    @root.setter
    def root(self, value: int) -> None:
        self._k.v_root[self._f] = value

    @property
    def parent(self) -> int:
        return int(self._k.v_parent[self._f])

    @parent.setter
    def parent(self, value: int) -> None:
        self._k.v_parent[self._f] = value

    @property
    def distance(self) -> int:
        return int(self._k.v_distance[self._f])

    @distance.setter
    def distance(self, value: int) -> None:
        self._k.v_distance[self._f] = value

    @property
    def heard(self) -> bool:
        return bool(self._k.v_heard[self._f])

    @heard.setter
    def heard(self, value: bool) -> None:
        self._k.v_heard[self._f] = value


class _STViewMap:
    """Dict-like neighbour-view map over one node's CSR row segment.

    Iteration order is the row order (neighbour ids ascending), which is
    exactly the insertion order of the object backend's view dict.
    """

    __slots__ = ("_views", "_by_id")

    def __init__(self, kernel: STKernel, lo: int, hi: int):
        self._views = [_STView(kernel, f) for f in range(lo, hi)]
        self._by_id = {int(kernel.nbr_ids[f]): view
                       for f, view in zip(range(lo, hi), self._views)}

    def __getitem__(self, u: NodeId) -> _STView:
        return self._by_id[u]

    def get(self, u: NodeId, default=None):
        return self._by_id.get(u, default)

    def __contains__(self, u: NodeId) -> bool:
        return u in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id)

    def keys(self):
        return self._by_id.keys()

    def values(self):
        return list(self._views)

    def items(self):
        return list(self._by_id.items())


class _ColumnMap:
    """Dict-like view over one per-edge column segment (keys: neighbour ids)."""

    __slots__ = ("_col", "_off")

    def __init__(self, col: np.ndarray, lo: int, nbr_ids: np.ndarray):
        self._col = col
        self._off = {int(u): lo + j for j, u in enumerate(nbr_ids)}

    def __getitem__(self, u: NodeId) -> int:
        return int(self._col[self._off[u]])

    def __setitem__(self, u: NodeId, value: int) -> None:
        self._col[self._off[u]] = value

    def get(self, u: NodeId, default=None):
        f = self._off.get(u)
        return default if f is None else int(self._col[f])

    def __contains__(self, u: NodeId) -> bool:
        return u in self._off

    def __len__(self) -> int:
        return len(self._off)

    def __iter__(self):
        return iter(self._off)

    def keys(self):
        return self._off.keys()

    def values(self):
        return [int(self._col[f]) for f in self._off.values()]

    def items(self):
        return [(u, int(self._col[f])) for u, f in self._off.items()]

    def update(self, mapping: Mapping[NodeId, int]) -> None:
        for u, value in mapping.items():
            self[u] = value


class ArraySpanningTreeProcess(SpanningTreeProcess):
    """A :class:`SpanningTreeProcess` whose state lives in :class:`STKernel`.

    The parent constructor builds the plain ``vars``/``view`` objects with
    the protocol's initial values; they are then swapped for column proxies
    (the columns are initialised to the same values), after which every
    inherited scalar path -- rules, corruption, snapshots -- reads and
    writes the shared columns.
    """

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 kernel: STKernel):
        super().__init__(node_id, neighbors, n_upper=kernel.n_upper)
        i = int(kernel.index[node_id])
        self.vars = _STVars(kernel, i)
        self.view = _STViewMap(kernel, int(kernel.indptr[i]),
                               int(kernel.indptr[i + 1]))

    def add_neighbor(self, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_neighbor(self, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")


class ArrayMaxDegreeProcess(MaxDegreeProcess):
    """A :class:`MaxDegreeProcess` whose state lives in :class:`PIFKernel`.

    ``sub_max``/``dmax`` and the three view maps are class-level properties
    backed by the columns, so the parent constructor's own assignments
    already populate the kernel; the fixed per-node fields (``parent``,
    ``degree``) are mirrored into their columns afterwards.
    """

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 parent_map: Mapping[NodeId, NodeId], kernel: PIFKernel):
        i = int(kernel.index[node_id])
        lo = int(kernel.indptr[i])
        seg = kernel.nbr_ids[lo:int(kernel.indptr[i + 1])]
        self._k = kernel
        self._i = i
        self._vp = _ColumnMap(kernel.vp_parent, lo, seg)
        self._vs = _ColumnMap(kernel.vp_sub_max, lo, seg)
        self._vd = _ColumnMap(kernel.vp_dmax, lo, seg)
        super().__init__(node_id, neighbors, parent_map)
        kernel.parent[i] = self.parent
        kernel.degree[i] = self.degree

    @property
    def sub_max(self) -> int:
        return int(self._k.sub_max[self._i])

    @sub_max.setter
    def sub_max(self, value: int) -> None:
        self._k.sub_max[self._i] = value

    @property
    def dmax(self) -> int:
        return int(self._k.dmax[self._i])

    @dmax.setter
    def dmax(self, value: int) -> None:
        self._k.dmax[self._i] = value

    @property
    def view_parent(self) -> _ColumnMap:
        return self._vp

    @view_parent.setter
    def view_parent(self, mapping: Mapping[NodeId, NodeId]) -> None:
        self._vp.update(mapping)

    @property
    def view_sub_max(self) -> _ColumnMap:
        return self._vs

    @view_sub_max.setter
    def view_sub_max(self, mapping: Mapping[NodeId, int]) -> None:
        self._vs.update(mapping)

    @property
    def view_dmax(self) -> _ColumnMap:
        return self._vd

    @view_dmax.setter
    def view_dmax(self, mapping: Mapping[NodeId, int]) -> None:
        self._vd.update(mapping)

    def add_neighbor(self, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_neighbor(self, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")


# -- engine drivers ------------------------------------------------------------


class _SubstrateOps:
    """Shared column-driver plumbing for the substrate protocols.

    Satisfies the ops contract of :func:`~.array_engine.execute_plan`.
    Timeout gossip goes through the ordinary object machinery
    (``broadcast`` + ``flush_outbox``), so the only protocol-specific parts
    are the vectorized rules pass, the gossip scatter and the message
    (de)construction.
    """

    virtual_gossip = False

    def __init__(self, network: "Network"):
        self.network = network
        self.kernel = network.kernel
        self.gossip_bits = self._proto_msg().size_bits(network.n)

    def view_row(self, src: NodeId, dst: NodeId) -> int:
        return self.kernel.pos[(dst, src)]

    def refresh_deliver(self, S: np.ndarray) -> None:
        self.kernel.refresh(S)

    def refresh_timeout(self, S: np.ndarray) -> None:
        self.kernel.refresh(S)

    def send_gossip(self, T: np.ndarray, t_nodes: List[NodeId]) -> int:
        """Broadcast this slot's timeout gossip through the object path.

        The scalar timeout handler interleaves rule application and
        broadcast per node; batching all rule passes before all broadcasts
        commutes because a broadcast reads only its own sender's (already
        refreshed) state and sends only append behind queued traffic.
        """
        network = self.network
        processes = network.processes
        flush = network.flush_outbox
        total = 0
        for v in t_nodes:
            process = processes[v]
            process.broadcast(self._gossip_of(process))
            total += flush(v)
        return total

    def timeout_pre(self, process) -> None:
        pass

    def timeout_hook(self, process, v: NodeId, i: int) -> int:
        return 0

    def gate(self, scalars: List[Tuple[NodeId, NodeId, object]]) -> List[bool]:
        # The substrate handlers ignore anything that is not their gossip
        # type; garbage is the only such traffic, and dropping it batched
        # matches the scalar no-op handler byte for byte.
        return [type(msg) is GarbageMessage for _dst, _src, msg in scalars]


class STArrayOps(_SubstrateOps):
    """Column driver wiring the engine to a :class:`SpanningTreeArrayNetwork`."""

    gossip_type = STInfo
    gossip_name = "STInfo"

    @staticmethod
    def _proto_msg() -> STInfo:
        return STInfo(root=0, parent=0, distance=0)

    @staticmethod
    def _gossip_of(process: ArraySpanningTreeProcess) -> STInfo:
        v = process.vars
        return STInfo(root=v.root, parent=v.parent, distance=v.distance)

    def fields_of(self, msg: STInfo) -> tuple:
        return (msg.root, msg.parent, msg.distance)

    def scatter(self, P: np.ndarray, pos: List[int], fields: List[tuple],
                vsel: Optional[np.ndarray] = None) -> None:
        k = self.kernel
        cols = list(zip(*fields))
        k.v_root[P] = cols[0]
        k.v_parent[P] = cols[1]
        k.v_distance[P] = cols[2]
        k.v_heard[P] = True


class PIFArrayOps(_SubstrateOps):
    """Column driver wiring the engine to a :class:`PIFArrayNetwork`."""

    gossip_type = DegreeInfo
    gossip_name = "DegreeInfo"

    @staticmethod
    def _proto_msg() -> DegreeInfo:
        return DegreeInfo(parent=0, degree=0, sub_max=0, dmax=0)

    @staticmethod
    def _gossip_of(process: ArrayMaxDegreeProcess) -> DegreeInfo:
        return DegreeInfo(parent=process.parent, degree=process.degree,
                          sub_max=process.sub_max, dmax=process.dmax)

    def fields_of(self, msg: DegreeInfo) -> tuple:
        # The scalar handler ignores ``msg.degree``.
        return (msg.parent, msg.sub_max, msg.dmax)

    def scatter(self, P: np.ndarray, pos: List[int], fields: List[tuple],
                vsel: Optional[np.ndarray] = None) -> None:
        k = self.kernel
        cols = list(zip(*fields))
        k.vp_parent[P] = cols[0]
        k.vp_sub_max[P] = cols[1]
        k.vp_dmax[P] = cols[2]


# -- networks ------------------------------------------------------------------


class _SubstrateNetwork(Network):
    """Plain-channel network carrying a column driver for the slot engine.

    The flat column layout is frozen at construction, so live topology
    churn is rejected exactly like :class:`~.array_kernel.ArrayNetwork`.
    """

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def add_node(self, v: NodeId, neighbors=()):
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_node(self, v: NodeId):
        raise SimulationError(
            "the array backend does not support live topology churn")


class SpanningTreeArrayNetwork(_SubstrateNetwork):
    """Array-backed network of the standalone spanning-tree protocol."""

    def __init__(self, graph: nx.Graph, *, n_upper: int):
        kernel = STKernel(graph, n_upper)
        self.kernel = kernel

        def factory(node_id: NodeId,
                    neighbors: Sequence[NodeId]) -> ArraySpanningTreeProcess:
            return ArraySpanningTreeProcess(node_id, neighbors, kernel)

        super().__init__(graph, factory)
        self._array_ops = STArrayOps(self)


class PIFArrayNetwork(_SubstrateNetwork):
    """Array-backed network of the standalone max-degree protocol."""

    def __init__(self, graph: nx.Graph,
                 parent_map: Mapping[NodeId, NodeId]):
        kernel = PIFKernel(graph)
        self.kernel = kernel

        def factory(node_id: NodeId,
                    neighbors: Sequence[NodeId]) -> ArrayMaxDegreeProcess:
            return ArrayMaxDegreeProcess(node_id, neighbors, parent_map,
                                         kernel)

        super().__init__(graph, factory)
        kernel.finalize()
        self._array_ops = PIFArrayOps(self)


def build_array_st_network(graph: nx.Graph, *,
                           n_upper: int) -> SpanningTreeArrayNetwork:
    """Array twin of ``Network(graph, spanning_tree_process_factory(...))``."""
    return SpanningTreeArrayNetwork(graph, n_upper=n_upper)


def build_array_pif_network(graph: nx.Graph,
                            parent_map: Mapping[NodeId, NodeId]
                            ) -> PIFArrayNetwork:
    """Array twin of ``Network(graph, max_degree_process_factory(...))``."""
    return PIFArrayNetwork(graph, parent_map)
