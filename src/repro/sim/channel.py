"""Reliable FIFO communication channels.

The paper assumes "asynchronous message passing network with reliable FIFO
channels": on each (directed) link messages are delivered in the order they
were sent, no message is lost and no message is duplicated.  A
:class:`Channel` models one directed link ``src -> dst``; the
:class:`repro.sim.network.Network` creates two channels per undirected edge.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Tuple

from ..exceptions import ChannelError
from ..types import NodeId
from .messages import Message

__all__ = ["Channel", "ChannelStats"]


class ChannelStats:
    """Cumulative statistics for one directed channel.

    A slotted plain class rather than a dataclass: every send updates three
    of these counters, so the fixed attribute layout is worth the few lines
    of boilerplate.
    """

    __slots__ = ("sent", "delivered", "max_queue_length", "max_message_bits")

    def __init__(self, sent: int = 0, delivered: int = 0,
                 max_queue_length: int = 0, max_message_bits: int = 0):
        self.sent = sent
        self.delivered = delivered
        self.max_queue_length = max_queue_length
        self.max_message_bits = max_message_bits

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"ChannelStats(sent={self.sent}, delivered={self.delivered}, "
                f"max_queue_length={self.max_queue_length}, "
                f"max_message_bits={self.max_message_bits})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChannelStats):
            return NotImplemented
        return (self.sent == other.sent and self.delivered == other.delivered
                and self.max_queue_length == other.max_queue_length
                and self.max_message_bits == other.max_message_bits)


class Channel:
    """A reliable FIFO channel from ``src`` to ``dst``.

    The channel never drops or reorders messages.  Fault injection may
    *pre-load* arbitrary messages (modelling an arbitrary initial
    configuration, which in the message-passing model includes link
    contents), but once the simulation runs the FIFO discipline holds.
    """

    __slots__ = ("src", "dst", "_queue", "stats", "_network_size", "_on_change",
                 "_model")

    def __init__(self, src: NodeId, dst: NodeId, network_size: int = 2):
        if src == dst:
            raise ChannelError(f"channel endpoints must differ, got {src}->{dst}")
        self.src = src
        self.dst = dst
        self._queue: Deque[Message] = deque()
        self.stats = ChannelStats()
        self._network_size = network_size
        #: Activity hook installed by the owning network: called after every
        #: queue mutation with the delta in queue length.  Keeps the kernel's
        #: active-channel set and configuration version current without the
        #: channel knowing anything about the network.
        self._on_change = None
        #: Optional :class:`~repro.sim.adversary.ChannelModel` deciding how
        #: each sent message lands on the queue.  ``None`` (the default) is
        #: the historical reliable-FIFO fast path.
        self._model = None

    def watch(self, on_change) -> None:
        """Install the activity callback ``(channel, delta) -> None``."""
        self._on_change = on_change

    def set_model(self, model) -> None:
        """Install (or with ``None`` remove) the channel's delivery model."""
        self._model = model

    # -- sending / delivering ------------------------------------------------

    def _enqueue(self, message: Message, index: int | None = None) -> None:
        """Place one message copy on the queue and account for it.

        ``index=None`` appends at the tail (reliable FIFO); an integer
        inserts at that queue position (adversarial reordering).  Updates
        the statistics and fires the activity hook exactly like a
        historical ``send`` did, so the ``index=None`` path stays
        byte-identical to the model-free channel.
        """
        queue = self._queue
        if index is None or index >= len(queue):
            queue.append(message)
        else:
            queue.insert(index, message)
        stats = self.stats
        stats.sent += 1
        length = len(queue)
        if length > stats.max_queue_length:
            stats.max_queue_length = length
        bits = message.size_bits(self._network_size)
        if bits > stats.max_message_bits:
            stats.max_message_bits = bits
        if self._on_change is not None:
            self._on_change(self, 1)

    def send(self, message: Message) -> None:
        """Hand ``message`` to the channel (called by ``src``).

        Without a delivery model the message is appended at the tail
        (reliable FIFO).  With one, the model decides the placements: none
        (lost), several (duplicated) or out-of-order (reordered).  A lost
        message never enters the queue -- and is *not* counted in
        ``stats.sent`` or the network's churn-loss counter; the model keeps
        its own accounting.
        """
        if not isinstance(message, Message):
            raise ChannelError(
                f"only Message instances may be sent, got {type(message).__name__}")
        model = self._model
        if model is None:
            self._enqueue(message)
            return
        for copy, index in model.on_send(self, message):
            self._enqueue(copy, index)

    def deliver(self) -> Message:
        """Pop and return the message at the head of the channel."""
        if not self._queue:
            raise ChannelError(f"channel {self.src}->{self.dst} is empty")
        self.stats.delivered += 1
        message = self._queue.popleft()
        if self._on_change is not None:
            self._on_change(self, -1)
        return message

    def peek(self) -> Message | None:
        """Return the head message without removing it (``None`` if empty)."""
        return self._queue[0] if self._queue else None

    # -- fault injection -----------------------------------------------------

    def preload(self, messages: List[Message]) -> None:
        """Place arbitrary messages on the channel (arbitrary initial config)."""
        if any(not isinstance(m, Message) for m in messages):
            raise ChannelError("preloaded items must be Message instances")
        self._queue.extend(messages)
        self.stats.max_queue_length = max(self.stats.max_queue_length, len(self._queue))
        if messages and self._on_change is not None:
            self._on_change(self, len(messages))

    def clear(self) -> int:
        """Drop all queued messages; return how many were dropped.

        Used by test harnesses and by the network when the underlying edge
        is removed at runtime (in-flight messages on a dead link are lost --
        the caller accounts for the returned count).
        """
        dropped = len(self._queue)
        self._queue.clear()
        if dropped and self._on_change is not None:
            self._on_change(self, -dropped)
        return dropped

    def unwatch(self) -> None:
        """Remove the activity callback (the owning network is letting go)."""
        self._on_change = None

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:  # non-empty check used by schedulers
        return bool(self._queue)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._queue)

    @property
    def endpoints(self) -> Tuple[NodeId, NodeId]:
        """The ``(src, dst)`` pair of this directed channel."""
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Channel({self.src}->{self.dst}, queued={len(self._queue)})"
