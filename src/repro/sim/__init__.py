"""Asynchronous message-passing simulator (send/receive atomicity, FIFO links).

The subpackage is deliberately protocol-agnostic: any protocol expressed as a
subclass of :class:`~repro.sim.node.Process` can be simulated under any of
the provided schedulers, with fault injection and tracing.
"""

from .adversary import (Adversary, ByzantineModel, ChannelModel,
                        NodeFaultModel, ReliableFifoChannelModel,
                        UnreliableChannelModel, make_channel_model)
from .channel import Channel, ChannelStats
from .faults import (ChurnEvent, ChurnPlan, FaultEvent, FaultPlan,
                     corrupt_channels, corrupt_everything, corrupt_states,
                     random_churn_plan)
from .messages import (GarbageMessage, Message, estimate_bits, id_bits,
                       message_dataclass)
from .monitors import ClosureMonitor, ConvergenceMonitor, InvariantMonitor, PredicateCache
from .network import EnabledEvents, Network, ProcessFactory
from .node import Outbox, Process
from .rng import derive_seed, seed_sequence, spawn_generators
from .scheduler import (
    AdversarialScheduler,
    RandomAsyncScheduler,
    RoundStats,
    Scheduler,
    SynchronousScheduler,
    WeightedFairScheduler,
    make_scheduler,
)
from .simulator import SimulationReport, Simulator
from .trace import RoundRecord, TraceEvent, TraceRecorder

__all__ = [name for name in dir() if not name.startswith("_")]
