"""Adversary and environment models beyond the paper's assumptions.

The paper's model (PAPER.md, "Model") assumes *reliable FIFO channels* and a
single arbitrary initial configuration; Definition 1 (convergence + closure)
is stated only under that model.  This module generalises the one-shot
:class:`~repro.sim.faults.FaultPlan` / :class:`~repro.sim.faults.ChurnPlan`
machinery into a pluggable adversary layer, so experiments can measure which
self-stabilization guarantees survive each relaxation:

* :class:`ChannelModel` -- a per-send message-placement contract plugged into
  every :class:`~repro.sim.channel.Channel`.  The default (no model, or the
  explicit :class:`ReliableFifoChannelModel`) is byte-identical to the
  historical reliable-FIFO behaviour; :class:`UnreliableChannelModel` adds
  seeded message loss, duplication and reordering with per-run delivery
  accounting.
* :class:`NodeFaultModel` -- crash-stop and crash-recover-with-state-loss
  node faults scheduled by round.  A crashed node is disabled through the
  kernel (:meth:`~repro.sim.network.Network.set_node_enabled`); a recovering
  node loses its state (its variables are re-randomised through the
  :meth:`~repro.sim.node.Process.corrupt` hook -- state loss *is* an
  arbitrary state in the self-stabilization model) and is re-enabled.
* :class:`ByzantineModel` -- selected processes emit corrupted gossip each
  round of an activity window: their state is re-randomised before their
  next step, so every message they send carries arbitrary protocol
  variables while staying well-formed (type-correct), which is exactly what
  the receivers' sanity checks cannot filter.

An :class:`Adversary` composes the three models and is scheduled by the
:class:`~repro.sim.simulator.Simulator` exactly like churn: scheduled events
(crash, recovery, Byzantine corruption) reset the convergence stability
streak, so a reported convergence round can never predate the disruption it
recovered from.  Continuous channel-level loss/dup/reorder does *not* reset
the streak -- under a lossy channel nothing would ever converge otherwise;
instead the channel model keeps delivery counters that the report exposes.

Accounting separation: messages dropped by a lossy :class:`ChannelModel`
never touch :attr:`~repro.sim.network.Network.dropped_messages` -- that
counter is reserved for messages lost to *topology churn* (a removed link
drops its queue).  A lossy message simply never enters the queue, so the two
causes cannot be double-counted.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..types import NodeId
from .channel import Channel
from .faults import corrupt_states
from .messages import Message
from .network import Network

__all__ = [
    "ChannelModel", "ReliableFifoChannelModel", "UnreliableChannelModel",
    "NodeFaultModel", "ByzantineModel", "Adversary", "make_channel_model",
]

#: Placement of one message copy: ``(message, index)`` where ``index`` is a
#: queue insertion position (``None`` appends at the tail, reliable FIFO).
Placement = Tuple[Message, Optional[int]]


class ChannelModel(abc.ABC):
    """Contract deciding how each sent message lands on a channel.

    :meth:`on_send` is consulted by :meth:`Channel.send
    <repro.sim.channel.Channel.send>` once per emitted message and returns
    the *placements* to enqueue: an empty sequence loses the message, two
    entries duplicate it, a non-``None`` index inserts it out of FIFO order.
    Models never mutate the channel directly -- the channel performs the
    placements itself so statistics and kernel activity hooks stay exact.
    """

    @abc.abstractmethod
    def on_send(self, channel: Channel, message: Message) -> Sequence[Placement]:
        """Return the placements for ``message`` sent on ``channel``."""

    def counters(self) -> Dict[str, int]:
        """Cumulative delivery accounting (empty for reliable models)."""
        return {}

    @property
    def is_reliable(self) -> bool:
        """Whether this model can never lose, duplicate or reorder."""
        return False


class ReliableFifoChannelModel(ChannelModel):
    """The paper's model, made explicit: append every message at the tail.

    Installing this model is byte-identical to installing no model at all --
    same queue contents, same statistics, same kernel version bumps -- which
    the property-based harness (tests/test_adversary_properties.py) checks
    on random interleavings.
    """

    def on_send(self, channel: Channel, message: Message) -> Sequence[Placement]:
        return ((message, None),)

    @property
    def is_reliable(self) -> bool:
        return True


class UnreliableChannelModel(ChannelModel):
    """Seeded message loss, duplication and reordering.

    Parameters
    ----------
    loss:
        Probability that a sent message is dropped (never enqueued).
    dup:
        Probability that a surviving message is enqueued twice.
    reorder:
        Probability that each enqueued copy is inserted at a uniformly
        random queue position instead of the tail (only meaningful when the
        queue is non-empty; an insertion into an empty queue is FIFO).
    seed:
        Seed of the model's private generator.  Outcomes are a deterministic
        function of the seed and the send sequence, independent of
        ``PYTHONHASHSEED``.

    Attributes
    ----------
    attempted, dropped, duplicated, reordered:
        Cumulative per-send accounting.  They accumulate across runs when a
        model instance is reused; the simulator records per-run deltas.
    """

    def __init__(self, loss: float = 0.0, dup: float = 0.0,
                 reorder: float = 0.0, seed: int = 0):
        for name, rate in (("loss", loss), ("dup", dup), ("reorder", reorder)):
            if not (0.0 <= rate <= 1.0):
                raise ConfigurationError(f"{name} rate must be in [0, 1], got {rate}")
        self.loss = float(loss)
        self.dup = float(dup)
        self.reorder = float(reorder)
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self.attempted = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def on_send(self, channel: Channel, message: Message) -> Sequence[Placement]:
        rng = self._rng
        self.attempted += 1
        if self.loss and rng.random() < self.loss:
            self.dropped += 1
            return ()
        copies = 1
        if self.dup and rng.random() < self.dup:
            self.duplicated += 1
            copies = 2
        placements: List[Placement] = []
        for extra in range(copies):
            index: Optional[int] = None
            # Each copy lands one after the other, so the queue the second
            # copy sees includes the first; ``len(channel) + extra`` keeps
            # the insertion range honest without re-reading the queue.
            depth = len(channel) + extra
            if self.reorder and depth and rng.random() < self.reorder:
                self.reordered += 1
                index = int(rng.integers(0, depth + 1))
            placements.append((message, index))
        return placements

    def counters(self) -> Dict[str, int]:
        return {"attempted": self.attempted, "dropped": self.dropped,
                "duplicated": self.duplicated, "reordered": self.reordered}

    @property
    def is_reliable(self) -> bool:
        return self.loss == 0.0 and self.dup == 0.0 and self.reorder == 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"UnreliableChannelModel(loss={self.loss}, dup={self.dup}, "
                f"reorder={self.reorder}, seed={self.seed})")


def make_channel_model(loss: float = 0.0, dup: float = 0.0,
                       reorder: float = 0.0, seed: int = 0
                       ) -> Optional[UnreliableChannelModel]:
    """An :class:`UnreliableChannelModel`, or ``None`` when every rate is 0.

    Returning ``None`` for the all-zero case keeps the default code path --
    and therefore the byte-identity guarantee -- literally model-free.
    """
    if loss == 0.0 and dup == 0.0 and reorder == 0.0:
        return None
    return UnreliableChannelModel(loss=loss, dup=dup, reorder=reorder, seed=seed)


class NodeFaultModel:
    """Crash-stop and crash-recover-with-state-loss node faults.

    At ``crash_round`` the selected nodes are disabled through the kernel:
    they take no steps and their incoming messages stay queued.  With
    ``recover_after=None`` the crash is permanent (*crash-stop*); otherwise
    each crashed node recovers ``recover_after`` rounds later with total
    state loss -- its variables are re-randomised through the protocol's
    :meth:`~repro.sim.node.Process.corrupt` hook (an arbitrary state is the
    self-stabilization model of a reboot) and it is re-enabled.

    The victim set is either explicit (``nodes=``) or drawn at
    :meth:`install` time from the model's seeded generator, capped at
    ``n - 1`` so at least one node stays enabled (an all-disabled network is
    quiescent by definition and no verdict could be measured).

    Composes with :class:`~repro.sim.faults.FaultPlan` corruption: both are
    scheduled after rounds, and a fault due the round of a crash corrupts
    whatever nodes are still enabled.
    """

    def __init__(self, crash_round: int, count: int = 1,
                 recover_after: Optional[int] = None,
                 nodes: Optional[Sequence[NodeId]] = None, seed: int = 0):
        if crash_round < 1:
            raise ConfigurationError("crash_round must be >= 1")
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        if recover_after is not None and recover_after < 1:
            raise ConfigurationError("recover_after must be >= 1 (or None)")
        self.crash_round = int(crash_round)
        self.count = int(count)
        self.recover_after = None if recover_after is None else int(recover_after)
        self.requested_nodes = tuple(int(v) for v in nodes) if nodes is not None else None
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._victims: Tuple[NodeId, ...] = ()
        self._installed = False
        self.crashes = 0
        self.recoveries = 0

    @property
    def victims(self) -> Tuple[NodeId, ...]:
        """The resolved victim set (empty before :meth:`install`)."""
        return self._victims

    @property
    def recover_round(self) -> Optional[int]:
        """Round after which crashed nodes recover (``None`` for crash-stop)."""
        if self.recover_after is None:
            return None
        return self.crash_round + self.recover_after

    @property
    def last_round(self) -> int:
        """Round index of the last scheduled event."""
        return self.recover_round if self.recover_round is not None else self.crash_round

    def install(self, network: Network) -> None:
        """Resolve the victim set against ``network`` (idempotent)."""
        if self._installed:
            return
        if self.requested_nodes is not None:
            unknown = set(self.requested_nodes) - set(network.node_ids)
            if unknown:
                raise ConfigurationError(
                    f"cannot crash unknown nodes {sorted(unknown)}")
            victims = list(self.requested_nodes)
        else:
            cap = min(self.count, max(network.n - 1, 0))
            victims = ([int(v) for v in
                        self._rng.choice(network.node_ids, size=cap, replace=False)]
                       if cap else [])
        self._victims = tuple(sorted(victims))
        self._installed = True

    def apply_due(self, network: Network, round_index: int) -> bool:
        """Fire crash/recovery events due after ``round_index``.

        Returns ``True`` when at least one event fired (the simulator resets
        the stability streak).  Nodes removed by churn in the meantime are
        silently skipped -- a departed node can neither crash nor recover.
        """
        fired = False
        if round_index == self.crash_round:
            for v in self._victims:
                if v in network.adjacency:
                    network.set_node_enabled(v, False)
                    self.crashes += 1
                    fired = True
        if self.recover_round is not None and round_index == self.recover_round:
            for v in self._victims:
                if v in network.adjacency:
                    corrupt_states(network, self._rng, nodes=[v])
                    network.set_node_enabled(v, True)
                    self.recoveries += 1
                    fired = True
        return fired

    def counters(self) -> Dict[str, int]:
        return {"crashes": self.crashes, "recoveries": self.recoveries}


class ByzantineModel:
    """Selected processes emit corrupted gossip during an activity window.

    Every round of ``[start_round, start_round + rounds)`` the Byzantine
    nodes' protocol variables are re-randomised through the
    :meth:`~repro.sim.node.Process.corrupt` hook, so the messages they emit
    in the following round are well-formed (type-correct, unfiltered by the
    receivers' sanity checks) but carry arbitrary values -- the
    protocol-agnostic reading of "corrupted gossip".  After the window the
    nodes behave correctly again and self-stabilization is expected to
    erase their influence.

    The Byzantine set is explicit (``nodes=``) or drawn at :meth:`install`
    time from the seeded generator, capped at ``n - 1`` so at least one
    correct node remains.
    """

    def __init__(self, count: int = 1, start_round: int = 1, rounds: int = 10,
                 nodes: Optional[Sequence[NodeId]] = None, seed: int = 0):
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        if start_round < 1:
            raise ConfigurationError("start_round must be >= 1")
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        self.count = int(count)
        self.start_round = int(start_round)
        self.rounds = int(rounds)
        self.requested_nodes = tuple(int(v) for v in nodes) if nodes is not None else None
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._byzantine: Tuple[NodeId, ...] = ()
        self._installed = False
        self.corruptions = 0

    @property
    def byzantine_nodes(self) -> Tuple[NodeId, ...]:
        """The resolved Byzantine set (empty before :meth:`install`)."""
        return self._byzantine

    @property
    def last_round(self) -> int:
        """Round index of the last corruption."""
        return self.start_round + self.rounds - 1

    def active_at(self, round_index: int) -> bool:
        """Whether the adversary corrupts gossip after ``round_index``."""
        return self.start_round <= round_index <= self.last_round

    def install(self, network: Network) -> None:
        """Resolve the Byzantine set against ``network`` (idempotent)."""
        if self._installed:
            return
        if self.requested_nodes is not None:
            unknown = set(self.requested_nodes) - set(network.node_ids)
            if unknown:
                raise ConfigurationError(
                    f"unknown Byzantine nodes {sorted(unknown)}")
            chosen = list(self.requested_nodes)
        else:
            cap = min(self.count, max(network.n - 1, 0))
            chosen = ([int(v) for v in
                       self._rng.choice(network.node_ids, size=cap, replace=False)]
                      if cap else [])
        self._byzantine = tuple(sorted(chosen))
        self._installed = True

    def apply_due(self, network: Network, round_index: int) -> bool:
        """Corrupt the Byzantine nodes if the window is active; return fired."""
        if not self.active_at(round_index):
            return False
        present = [v for v in self._byzantine if v in network.adjacency]
        if not present:
            return False
        corrupt_states(network, self._rng, nodes=present)
        self.corruptions += len(present)
        return True

    def counters(self) -> Dict[str, int]:
        return {"byzantine_corruptions": self.corruptions}


class Adversary:
    """Composition of the three adversary models, scheduled like churn.

    Any subset of the models may be present.  :meth:`install` attaches the
    channel model to the network (covering channels created later by churn)
    and resolves the node-fault and Byzantine victim sets; :meth:`apply_due`
    fires the scheduled (round-indexed) events and reports whether any
    fired, which is the simulator's cue to reset the stability streak.
    """

    def __init__(self, channel_model: Optional[ChannelModel] = None,
                 node_faults: Optional[NodeFaultModel] = None,
                 byzantine: Optional[ByzantineModel] = None):
        if channel_model is None and node_faults is None and byzantine is None:
            raise ConfigurationError("an Adversary needs at least one model")
        self.channel_model = channel_model
        self.node_faults = node_faults
        self.byzantine = byzantine

    @property
    def last_round(self) -> int:
        """Round index of the last *scheduled* event (-1 with none).

        Continuous channel noise has no schedule and does not extend this:
        the simulator uses it only to refuse convergence verdicts that
        would predate a still-pending scheduled disruption.
        """
        rounds = [-1]
        if self.node_faults is not None:
            rounds.append(self.node_faults.last_round)
        if self.byzantine is not None:
            rounds.append(self.byzantine.last_round)
        return max(rounds)

    def install(self, network: Network) -> None:
        """Attach the models to ``network`` (idempotent)."""
        if self.channel_model is not None:
            network.install_channel_model(self.channel_model)
        if self.node_faults is not None:
            self.node_faults.install(network)
        if self.byzantine is not None:
            self.byzantine.install(network)

    def apply_due(self, network: Network, round_index: int) -> bool:
        """Fire scheduled events due after ``round_index``; return fired."""
        fired = False
        if self.node_faults is not None:
            fired |= self.node_faults.apply_due(network, round_index)
        if self.byzantine is not None:
            fired |= self.byzantine.apply_due(network, round_index)
        return fired

    def counters(self) -> Dict[str, int]:
        """Merged cumulative accounting over all present models."""
        merged: Dict[str, int] = {}
        if self.channel_model is not None:
            merged.update(self.channel_model.counters())
        if self.node_faults is not None:
            merged.update(self.node_faults.counters())
        if self.byzantine is not None:
            merged.update(self.byzantine.counters())
        return merged

    def describe(self) -> str:
        """Short human-readable label (used by reports and benchmarks)."""
        parts = []
        cm = self.channel_model
        if isinstance(cm, UnreliableChannelModel):
            knobs = [f"{k}={v}" for k, v in (("loss", cm.loss), ("dup", cm.dup),
                                             ("reorder", cm.reorder)) if v]
            parts.append("channel(" + ",".join(knobs or ["reliable"]) + ")")
        elif cm is not None:
            parts.append("channel(reliable)")
        nf = self.node_faults
        if nf is not None:
            kind = "crash-stop" if nf.recover_after is None else (
                f"crash-recover({nf.recover_after})")
            parts.append(f"{kind}x{nf.count}@r{nf.crash_round}")
        bz = self.byzantine
        if bz is not None:
            parts.append(f"byzantine x{bz.count}@r{bz.start_round}+{bz.rounds}")
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Adversary({self.describe()})"
