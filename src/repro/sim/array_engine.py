"""Vectorized asynchronous scheduling for the array backend.

PR 7's array kernel batched only the synchronous round; every other
scheduler still walked the per-object path, so ``backend="array"`` lost its
edge the moment a run asked for asynchrony.  This module closes that gap
with a *slot-major* batched engine that the asynchronous schedulers drive
through the exact per-event ordering semantics of the object kernel:

* **Plans.**  Each scheduler first *plans* its round exactly as the object
  implementation would execute it -- same pool construction, same rng
  draws, same slow-link bookkeeping -- but instead of executing events one
  by one it extracts, per node, that node's subsequence of events (its
  timeout actions and the deliveries addressed to it, in plan order).
* **Commutation.**  Two enabled events at *distinct* nodes always commute:
  a delivery writes only the destination's own state and view row and pops
  a message whose content was frozen at send time, and a timeout writes
  only the acting node's state and appends to its own out-channels.  Every
  event that touches node ``v``'s state has actor ``v``, per-channel pops
  happen only in the destination's events (FIFO order preserved) and
  appends only in the source's (send order preserved), and a round's plan
  never pops beyond the round-start backlog -- so any interleaving that
  preserves each node's own subsequence produces byte-identical results.
* **Slots.**  The engine therefore executes *slot* ``j`` of every node
  together: the gossip deliveries of the slot become one batched scatter
  plus one vectorized rules pass, the slot's timeouts become one batched
  refresh followed by a batched gossip send, and the rare control messages
  run the real scalar handlers -- after the batched no-op gate
  (:func:`~repro.sim.array_kernel.mdst_scalar_gate`) drops the
  Search-storm traffic that a non-stabilized destination would ignore.
* **Virtual gossip.**  On an :class:`~repro.sim.array_kernel.ArrayNetwork`
  the round's gossip never becomes message objects at all: timeout slots
  mint the same per-source virtual tokens the synchronous fast path uses
  (:meth:`~repro.sim.array_kernel.ArrayNetwork._mint`), and delivery
  slots consume them straight from the gossip snapshot columns.  An
  asynchronous plan consumes a source's tokens one channel at a time, so
  consumption is a per-directed-edge counter and a channel can hold up to
  *two* generations at once -- the source's current snapshot (``g_*``)
  and, when the source minted again before this channel delivered, the
  previous one (``go_*``); the scatter splits its batch by generation.
  By the FIFO invariant (physical traffic always logically precedes the
  in-flight tokens) a planned delivery pops the physical queue first and
  goes virtual only once it is empty, and all channel statistics fold
  lazily from the counters -- the slot loop never touches a channel
  object for pure gossip.

The engine is protocol-agnostic: it talks to the columns through a small
*ops* driver (:class:`MDSTArrayOps` here; the spanning-tree and PIF
substrate drivers live in :mod:`repro.sim.array_substrates` and run the
same engine with plain physical channels, ``virtual_gossip = False``).
Any configuration outside the batched contract -- full event logs,
disabled nodes, a slow-link backlog carrying stateful control payloads --
falls back to the scalar scheduler, which stays byte-identical because
virtual tokens materialize on demand under scalar delivery and are
counted by ``ArrayNetwork.enabled_deliveries``.

What stays scalar, honestly: ``Search``/``Back``/``Remove`` forwarding
carries variable-length path/visited tuples that have no fixed column
shape, so messages that reach a real handler body run the object code.
The wins come from batching the dense gossip and dropping the storm's
no-op deliveries in bulk, which is where the volume is.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.messages import MInfo
from ..types import NodeId
from .array_kernel import (
    ArrayNetwork,
    ArraySyncScheduler,
    account_dropped_deliveries,
    mdst_scalar_gate,
)
from .messages import GarbageMessage
from .network import EnabledEvents, Network
from .scheduler import (
    AdversarialScheduler,
    RandomAsyncScheduler,
    RoundStats,
    Scheduler,
    SynchronousScheduler,
    WeightedFairScheduler,
)
from .trace import TraceRecorder

__all__ = [
    "ArrayAdversarialScheduler",
    "ArrayRandomAsyncScheduler",
    "ArrayWeightedFairScheduler",
    "MDSTArrayOps",
    "execute_plan",
    "get_ops",
    "sync_plan",
    "wrap_scheduler_for_array",
]

_I64 = np.int64

#: A per-node event plan: each node maps to its own event subsequence,
#: entries ``("t",)`` (one timeout action) or ``("d", channel, src)``
#: (deliver the head message of ``channel``).
Plan = Dict[NodeId, List[tuple]]


class MDSTArrayOps:
    """Column driver wiring the engine to an MDST :class:`ArrayNetwork`."""

    gossip_type = MInfo
    gossip_name = "MInfo"
    #: Timeout gossip is minted as per-source virtual tokens, not objects.
    virtual_gossip = True

    def __init__(self, network: ArrayNetwork):
        self.network = network
        self.kernel = network.kernel
        self.enable_reduction = network._enable_reduction
        self.gossip_bits = network._minfo_bits

    def view_row(self, src: NodeId, dst: NodeId) -> int:
        return self.kernel.pos[(dst, src)]

    def fields_of(self, msg: MInfo) -> tuple:
        """The scatter-column values carried by one physical gossip object."""
        return (msg.root, msg.parent, msg.distance, msg.degree, msg.sub_max,
                msg.dmax, msg.color)

    def scatter(self, P: np.ndarray, pos: List[int], fields: List[tuple],
                vsel: Optional[np.ndarray] = None) -> None:
        """Write the slot's gossip batch into the view rows ``P``.

        Rows default to their senders' *current*-generation token content
        (the ``g_*`` snapshot columns).  ``vsel`` indexes the rows that
        are virtual token pops: any of them whose channel still holds two
        generations consumes the *older* one (``go_*``) instead, and all
        of them advance the consumed counters -- the whole per-channel
        bookkeeping of a gossip pop is these few array ops, the channel
        statistics fold lazily from the counters later.  The rows at
        ``P[pos]`` were real ``MInfo`` objects (start-up traffic,
        materialized tokens) and carry their own frozen ``fields``, which
        override the column scatter.
        """
        k = self.kernel
        src_idx = k.nbr_node_idx[P]
        k.v_root[P] = k.g_root[src_idx]
        k.v_parent[P] = k.g_parent[src_idx]
        k.v_distance[P] = k.g_distance[src_idx]
        k.v_degree[P] = k.g_degree[src_idx]
        k.v_sub_max[P] = k.g_sub_max[src_idx]
        k.v_dmax[P] = k.g_dmax[src_idx]
        k.v_color[P] = k.g_color[src_idx]
        if vsel is not None:
            net = self.network
            dr = net._vg_del_row
            rows_v = P[vsel]
            old = dr[rows_v] + 1 < net._vg_sent_src[src_idx[vsel]]
            if old.any():
                at = rows_v[old]
                osrc = src_idx[vsel[old]]
                k.v_root[at] = k.go_root[osrc]
                k.v_parent[at] = k.go_parent[osrc]
                k.v_distance[at] = k.go_distance[osrc]
                k.v_degree[at] = k.go_degree[osrc]
                k.v_sub_max[at] = k.go_sub_max[osrc]
                k.v_dmax[at] = k.go_dmax[osrc]
                k.v_color[at] = k.go_color[osrc]
            # Rows are unique within a slot (one event per actor), so the
            # batched bump is exact.
            dr[rows_v] += 1
            nv = len(rows_v)
            net._vg_virtual_total -= nv
            net._pending_total -= nv
            net._version += nv
        if fields:
            at = P[np.asarray(pos, dtype=np.intp)]
            cols = list(zip(*fields))
            k.v_root[at] = cols[0]
            k.v_parent[at] = cols[1]
            k.v_distance[at] = cols[2]
            k.v_degree[at] = cols[3]
            k.v_sub_max[at] = cols[4]
            k.v_dmax[at] = cols[5]
            k.v_color[at] = np.asarray(cols[6], dtype=bool)
        k.v_heard[P] = True

    def refresh_deliver(self, S: np.ndarray) -> None:
        # Unconditional (unlike the sync fast path's changed-mask): a
        # control handler earlier in the round can change a destination's
        # own state so that a rule fires on an unchanged view row.
        self.kernel.refresh(S)

    def refresh_timeout(self, S: np.ndarray) -> None:
        self.kernel.refresh(S, predicates=self.enable_reduction)

    def send_gossip(self, T: np.ndarray, t_nodes: List[NodeId]) -> int:
        """Mint the slot's timeout gossip as virtual tokens.

        The asynchronous twin of the synchronous phase 3 send:
        :meth:`~repro.sim.array_kernel.ArrayNetwork._mint` materializes
        any still-unconsumed previous-generation token of these sources
        (its snapshot buffer is about to be reused), shifts the snapshot
        generations and advances the sent counters.  Channels already
        carrying physical traffic need no special step: the new token is
        logically *behind* that traffic by the FIFO invariant, exactly
        matching the send order.  Returns the number of (virtual) sends.
        """
        return self.network._mint(T)

    def timeout_pre(self, process) -> None:
        process._timeout_count += 1

    def timeout_hook(self, process, v: NodeId, i: int) -> int:
        """The search-initiation hook of ``MDSTNode.on_timeout`` (post-gossip)."""
        if not self.enable_reduction:
            return 0
        if process._jitter.random() < 1.0 / process.search_period:
            k = self.kernel
            if k.locally_stab[i] and k.dmax[i] >= 3:
                process._initiate_searches(idblock=None, limit=1)
                if process.outbox._items:
                    return self.network.flush_outbox(v)
        return 0

    def gate(self, scalars: List[Tuple[NodeId, NodeId, object]]) -> List[bool]:
        return mdst_scalar_gate(self.network, scalars)


def get_ops(network: Network):
    """The network's engine driver, or ``None`` for plain object networks."""
    ops = getattr(network, "_array_ops", None)
    if ops is None and isinstance(network, ArrayNetwork):
        ops = MDSTArrayOps(network)
        network._array_ops = ops
    return ops


def execute_plan(network: Network, ops, seqs: Plan,
                 trace: Optional[TraceRecorder], stats: RoundStats) -> None:
    """Execute a per-node event plan slot by slot, batching each slot.

    Slot ``j`` runs the ``j``-th planned event of every node: gossip
    deliveries (virtual tokens and physical messages alike) as one scatter
    + one vectorized rules pass, control deliveries through the no-op gate
    and then the scalar handlers, and timeouts (ascending node id) as one
    batched refresh followed by the driver's gossip send.  Per-node event
    order is the plan's order, which the commutation argument in the
    module docstring makes equivalent to the object scheduler's total
    order -- byte for byte, including channel statistics, trace counters
    and rng evolution.
    """
    kernel = ops.kernel
    index = kernel.index
    processes = network.processes
    dirty = network._dirty
    gossip_type = ops.gossip_type
    use_virtual = ops.virtual_gossip
    actors = list(seqs.items())
    slot = 0
    while actors:
        g_rows: List[int] = []
        g_dsts: List[NodeId] = []
        g_pos: List[int] = []
        g_fields: List[tuple] = []
        n_virtual = 0
        scalars: List[Tuple[NodeId, NodeId, object]] = []
        t_nodes: List[NodeId] = []
        nxt: List[Tuple[NodeId, List[tuple]]] = []
        nslot = slot + 1
        for item in actors:
            v, seq = item
            ev = seq[slot]
            if len(seq) > nslot:
                nxt.append(item)
            if ev[0] == "t":
                t_nodes.append(v)
                continue
            ch = ev[1]
            if use_virtual and not ch._queue:
                # Virtual token pop: content comes straight from the
                # sender's gossip snapshot columns, no message object.
                # (The plan never pops beyond the round-start backlog, so
                # an empty physical queue here implies a pending token.)
                g_rows.append(ch._row)
                g_dsts.append(v)
                n_virtual += 1
                continue
            if not ch:  # the object path's emptiness guard
                continue
            src = ev[2]
            msg = ch.deliver()
            if type(msg) is gossip_type:
                g_rows.append(ops.view_row(src, v))
                g_dsts.append(v)
                g_pos.append(len(g_rows) - 1)
                g_fields.append(ops.fields_of(msg))
            else:
                scalars.append((v, src, msg))
        actors = nxt
        if g_rows:
            vsel = None
            if n_virtual:
                if n_virtual == len(g_rows):
                    vsel = np.arange(n_virtual, dtype=np.intp)
                else:
                    mark = np.ones(len(g_rows), dtype=bool)
                    mark[np.asarray(g_pos, dtype=np.intp)] = False
                    vsel = np.nonzero(mark)[0]
            ops.scatter(np.asarray(g_rows, dtype=np.intp), g_pos, g_fields,
                        vsel)
            ops.refresh_deliver(np.fromiter((index[d] for d in g_dsts),
                                            dtype=_I64, count=len(g_dsts)))
            cnt = len(g_rows)
            for dst in g_dsts:
                processes[dst].steps_taken += 1
            dirty.update(g_dsts)
            network._version += cnt
            stats.steps += cnt
            stats.deliveries += cnt
            if trace is not None:
                mtc = trace.message_type_counts
                mtc[ops.gossip_name] = mtc.get(ops.gossip_name, 0) + cnt
                if ops.gossip_bits > trace.max_message_bits:
                    trace.max_message_bits = ops.gossip_bits
                trace.total_deliveries += cnt
                if trace.rounds:
                    rec = trace.rounds[-1]
                    rec.steps += cnt
                    rec.deliveries += cnt
        if scalars:
            drop = ops.gate(scalars)
            if True in drop:
                dropped = [s for s, dr in zip(scalars, drop) if dr]
                scalars = [s for s, dr in zip(scalars, drop) if not dr]
                account_dropped_deliveries(network, trace, stats, dropped)
            for dst, src, msg in scalars:
                process = processes[dst]
                process.on_message(src, msg)
                process.steps_taken += 1
                network.note_step(dst)
                sent = network.flush_outbox(dst)
                stats.steps += 1
                stats.deliveries += 1
                stats.messages_sent += sent
                if trace is not None:
                    trace.record_delivery(src, dst, msg, sent)
        if t_nodes:
            t_nodes.sort()
            T = np.fromiter((index[v] for v in t_nodes), dtype=_I64,
                            count=len(t_nodes))
            ops.refresh_timeout(T)
            gossip_sends = ops.send_gossip(T, t_nodes)
            total_sent = gossip_sends
            for v, i in zip(t_nodes, T.tolist()):
                process = processes[v]
                ops.timeout_pre(process)
                total_sent += ops.timeout_hook(process, v, i)
                process.steps_taken += 1
            nt = len(t_nodes)
            dirty.update(t_nodes)
            # Physical gossip sends tick the version through the channel
            # watcher; virtual mints must be counted here.
            network._version += nt + (gossip_sends if use_virtual else 0)
            stats.steps += nt
            stats.timeouts += nt
            stats.messages_sent += total_sent
            if trace is not None:
                trace.total_timeouts += nt
                trace.total_messages_sent += total_sent
                if trace.rounds:
                    rec = trace.rounds[-1]
                    rec.steps += nt
                    rec.timeouts += nt
                    rec.messages_sent += total_sent
        slot += 1


# -- plan builders: each replicates its scheduler's execution order exactly ----


#: The shared timeout plan entry (entries are read-only, so one tuple
#: object serves every slot of every plan).
_T = ("t",)


def sync_plan(network: Network, events: EnabledEvents) -> Plan:
    """The synchronous order: backlog per destination, then all timeouts."""
    seqs: Plan = {}
    channels = network.channels
    for dst, sources in Scheduler._deliveries_by_dst(events):
        seq = seqs.setdefault(dst, [])
        for src, count in sources:
            entry = ("d", channels[(src, dst)], src)
            if count == 1:
                seq.append(entry)
            else:
                seq.extend([entry] * count)
    for v in events.timeouts:
        seqs.setdefault(v, []).append(_T)
    return seqs


class _ArrayAsyncBase:
    """Shared engine routing for the array async schedulers.

    ``schedule_round`` routes to the engine when the network has a column
    driver and the configuration is inside the batched contract; otherwise
    the scalar parent runs, and any in-flight virtual gossip stays
    transparent to it (tokens materialize on demand under scalar delivery
    and are counted by ``ArrayNetwork.enabled_deliveries``).
    """

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder],
                       stats: RoundStats) -> None:
        ops = get_ops(network)
        if (ops is None or network._disabled
                or (trace is not None and trace.keep_events)):
            super().schedule_round(network, events, trace, stats)
            return
        seqs = self._plan(network, ops, events)
        if seqs is None:  # plan refused (outside the batched contract)
            super().schedule_round(network, events, trace, stats)
            return
        execute_plan(network, ops, seqs, trace, stats)


class ArrayRandomAsyncScheduler(_ArrayAsyncBase, RandomAsyncScheduler):
    """:class:`RandomAsyncScheduler` driving the batched engine.

    The event pool and the seeded permutation are built exactly as the
    parent builds them -- same pool order, same single ``rng.permutation``
    draw -- so the rng evolves identically and the per-node subsequences
    are the parent's execution order restricted to each node.
    """

    def _plan(self, network: Network, ops,
              events: EnabledEvents) -> Optional[Plan]:
        channels = network.channels
        pool: List[Tuple[NodeId, tuple]] = [(v, _T) for v in events.timeouts]
        for src, dst, count in events.deliveries:
            item = (dst, ("d", channels[(src, dst)], src))
            if count == 1:
                pool.append(item)
            else:
                pool.extend([item] * count)
        order = self.rng.permutation(len(pool))
        seqs: Plan = {}
        get = seqs.get
        for idx in order.tolist():
            actor, entry = pool[idx]
            seq = get(actor)
            if seq is None:
                seqs[actor] = [entry]
            else:
                seq.append(entry)
        return seqs


class ArrayAdversarialScheduler(_ArrayAsyncBase, AdversarialScheduler):
    """:class:`AdversarialScheduler` driving the batched engine.

    The slow-link age bookkeeping runs at plan time in the parent's exact
    loop order.  Release bursts deliver ``len(channel)`` messages measured
    mid-phase in the parent; that length is plan-time-computable exactly
    when the delivery phase emits no sends, i.e. when every queued message
    is gossip or garbage -- any stateful control payload on a round-start
    queue refuses the plan and falls back to the scalar parent (ages
    untouched: the parent then performs the identical bookkeeping).
    """

    def _plan(self, network: Network, ops,
              events: EnabledEvents) -> Optional[Plan]:
        slow = self.slow_links
        channels = network.channels
        if slow:
            gossip_type = ops.gossip_type
            for src, dst, _count in events.deliveries:
                # Only the physical queue can hold control payloads; a
                # virtual token is gossip by construction.
                for m in channels[(src, dst)]._queue:
                    if (type(m) is not gossip_type
                            and type(m) is not GarbageMessage):
                        return None
        seqs: Plan = {}
        for dst, sources in self._deliveries_by_dst(events):
            for src, count in sources:
                link = (src, dst)
                if link in slow:
                    age = self._age.get(link, 0) + 1
                    if age < self.max_delay:
                        self._age[link] = age
                        continue
                    self._age[link] = 0
                    count = len(channels[link])
                if count:
                    entry = ("d", channels[link], src)
                    seqs.setdefault(dst, []).extend([entry] * count)
        for v in events.timeouts:
            seqs.setdefault(v, []).append(_T)
        return seqs


class ArrayWeightedFairScheduler(_ArrayAsyncBase, WeightedFairScheduler):
    """:class:`WeightedFairScheduler` driving the batched engine.

    The parent's timeout phase runs in passes; per node that is simply
    ``weight(v)`` consecutive timeout events after its deliveries, which is
    exactly the node's subsequence of the pass order (``weight`` is called
    once per node, in the parent's order, so validation errors surface
    identically).
    """

    def _plan(self, network: Network, ops,
              events: EnabledEvents) -> Optional[Plan]:
        seqs = sync_plan(network, events)
        # sync_plan already appended pass 0's timeout for every node.
        for v in events.timeouts:
            extra = self.weight(v) - 1
            if extra > 0:
                seqs[v].extend([_T] * extra)
        return seqs


def wrap_scheduler_for_array(scheduler: Scheduler) -> Scheduler:
    """The array-backend twin of a freshly built scheduler.

    Carries over all live policy state -- the unused rng object, slow-link
    set and ages, weight function -- so the wrapped scheduler's visible
    behaviour (and rng evolution) is identical to the original's.  Unknown
    scheduler types pass through unchanged and simply run the scalar path.
    """
    kind = type(scheduler)
    if kind is SynchronousScheduler:
        return ArraySyncScheduler()
    if kind is RandomAsyncScheduler:
        wrapped = ArrayRandomAsyncScheduler()
        wrapped.rng = scheduler.rng
        return wrapped
    if kind is AdversarialScheduler:
        wrapped = ArrayAdversarialScheduler(max_delay=scheduler.max_delay)
        wrapped.slow_links = scheduler.slow_links
        wrapped.rng = scheduler.rng
        wrapped._age = scheduler._age
        return wrapped
    if kind is WeightedFairScheduler:
        wrapped = ArrayWeightedFairScheduler(
            default_weight=scheduler.default_weight)
        wrapped._weight_fn = scheduler._weight_fn
        return wrapped
    return scheduler
