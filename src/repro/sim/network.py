"""Network: the collection of processes and the FIFO channels linking them.

A :class:`Network` is built from a :class:`networkx.Graph` and a *process
factory* (a callable ``(node_id, neighbors) -> Process``).  It owns

* one :class:`~repro.sim.node.Process` per graph node,
* two directed :class:`~repro.sim.channel.Channel` objects per graph edge,

and offers the queries the scheduler and the verification layer need
(pending channels, global quiescence, state snapshots, memory statistics).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

import networkx as nx

from ..exceptions import ChannelError, ProtocolError, SimulationError
from ..graphs.validation import check_network
from ..types import Edge, NodeId, canonical_edge
from .channel import Channel
from .messages import Message
from .node import Process

__all__ = ["Network", "ProcessFactory"]

ProcessFactory = Callable[[NodeId, Sequence[NodeId]], Process]


class Network:
    """The simulated distributed system: processes plus FIFO channels.

    Parameters
    ----------
    graph:
        The communication topology (undirected, connected, simple).
    process_factory:
        Callable building the protocol instance for each node.
    """

    def __init__(self, graph: nx.Graph, process_factory: ProcessFactory):
        check_network(graph)
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        self.node_ids: List[NodeId] = sorted(graph.nodes)
        self.adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {
            v: tuple(sorted(graph.neighbors(v))) for v in self.node_ids
        }
        self.processes: Dict[NodeId, Process] = {}
        for v in self.node_ids:
            proc = process_factory(v, self.adjacency[v])
            if proc.node_id != v:
                raise ProtocolError(
                    f"process factory returned node id {proc.node_id} for node {v}")
            self.processes[v] = proc
        # Two directed channels per undirected edge.
        self.channels: Dict[Tuple[NodeId, NodeId], Channel] = {}
        for u, v in graph.edges:
            self.channels[(u, v)] = Channel(u, v, network_size=self.n)
            self.channels[(v, u)] = Channel(v, u, network_size=self.n)

    # -- topology queries ------------------------------------------------------

    def neighbors(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Neighbour ids of ``v`` (sorted)."""
        return self.adjacency[v]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``{u, v}`` is a communication link."""
        return (u, v) in self.channels

    def edges(self) -> Iterator[Edge]:
        """Iterate over the undirected edges (canonical orientation)."""
        for u, v in self.graph.edges:
            yield canonical_edge(u, v)

    def channel(self, src: NodeId, dst: NodeId) -> Channel:
        """The directed channel ``src -> dst``."""
        try:
            return self.channels[(src, dst)]
        except KeyError as exc:
            raise ChannelError(f"no channel {src}->{dst}") from exc

    # -- message plumbing ------------------------------------------------------

    def flush_outbox(self, v: NodeId) -> int:
        """Move every message queued in ``v``'s outbox onto its channels.

        Returns the number of messages pushed.  Called by the simulator after
        every atomic step of ``v`` so that emission order is preserved.
        """
        count = 0
        for dest, message in self.processes[v].outbox.drain():
            self.channel(v, dest).send(message)
            count += 1
        return count

    def pending_channels(self) -> List[Channel]:
        """All channels currently holding at least one message."""
        return [c for c in self.channels.values() if c]

    def pending_messages(self) -> int:
        """Total number of messages currently in transit."""
        return sum(len(c) for c in self.channels.values())

    def is_quiescent(self) -> bool:
        """``True`` when no message is in transit and no outbox is non-empty."""
        if any(len(p.outbox) for p in self.processes.values()):
            return False
        return self.pending_messages() == 0

    # -- global inspection -----------------------------------------------------

    def snapshots(self) -> Dict[NodeId, Dict[str, object]]:
        """Per-node protocol variable snapshots (for checks and traces)."""
        return {v: self.processes[v].snapshot() for v in self.node_ids}

    def max_state_bits(self) -> int:
        """Maximum per-node persistent state size in bits (memory claim E3)."""
        return max(p.state_bits(self.n) for p in self.processes.values())

    def total_state_bits(self) -> int:
        """Total persistent state over all nodes in bits."""
        return sum(p.state_bits(self.n) for p in self.processes.values())

    def max_channel_message_bits(self) -> int:
        """Largest message (in bits) ever placed on any channel."""
        if not self.channels:
            return 0
        return max(c.stats.max_message_bits for c in self.channels.values())

    def total_messages_sent(self) -> int:
        """Total number of messages pushed onto channels since construction."""
        return sum(c.stats.sent for c in self.channels.values())

    def degree(self, v: NodeId) -> int:
        """Graph degree of ``v`` (``|N(v)|``)."""
        return len(self.adjacency[v])

    def max_graph_degree(self) -> int:
        """Maximum graph degree δ (used in the O(δ log n) memory bound)."""
        return max(len(nbrs) for nbrs in self.adjacency.values())

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Network(n={self.n}, m={self.m}, pending={self.pending_messages()})"
