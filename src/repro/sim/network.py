"""Network: the collection of processes and the FIFO channels linking them.

A :class:`Network` is built from a :class:`networkx.Graph` and a *process
factory* (a callable ``(node_id, neighbors) -> Process``).  It owns

* one :class:`~repro.sim.node.Process` per graph node,
* two directed :class:`~repro.sim.channel.Channel` objects per graph edge,

and offers the queries the scheduler and the verification layer need
(pending channels, global quiescence, state snapshots, memory statistics).

Activity-aware kernel
---------------------
The network doubles as the *simulation kernel*: it tracks which events are
currently enabled and how often the global configuration has changed, so
that schedulers and monitors never have to poll disabled parts of the
system:

* :attr:`Network.version` is a monotonically increasing **configuration
  version**, bumped on every message send, every delivery, and every state
  write the kernel is told about (process steps report through
  :meth:`note_step`; out-of-band mutation such as fault injection or
  initial-configuration installers must call :meth:`note_state_write`).
  Snapshots and their fingerprint are cached keyed on this version, so any
  number of global checks within one configuration cost one traversal.
* Every node carries an **enabled flag** (:meth:`set_node_enabled`).  A
  disabled node takes no steps at all -- no timeout actions, and messages
  addressed to it stay queued.  All nodes start enabled, which reproduces
  the historical semantics exactly.
* The **enabled-event set** (:meth:`enabled_events`) is the kernel's
  contract with the schedulers: the timeout of every enabled node plus one
  delivery per message queued on a channel toward an enabled node.  Active
  channels are tracked incrementally (a channel joins the set when it
  becomes non-empty and leaves when drained), so building the event set
  costs O(active), not O(m).
* :meth:`has_enabled_events` is the quiescence test the simulator uses to
  short-circuit the round loop: with no enabled event, no future round can
  change the configuration.

Dirty-set incremental snapshots
-------------------------------
Global checks used to pay O(n * state) per configuration change: every
:meth:`snapshots` rebuild re-snapshotted every node and every
:meth:`snapshot_key` re-sorted every node's variable dict.  The kernel now
tracks a **dirty-node set** -- the nodes whose reported state *may* have
changed since the caches were last refreshed (:meth:`note_step` marks the
stepping node, :meth:`note_state_write` marks everything or a named node) --
and keeps three per-node caches:

* the node's last snapshot dict (refreshed only while the node is dirty,
  and *kept* when the fresh snapshot compares equal, which is the common
  case once a region of the network has stabilized);
* a read-only :class:`~types.MappingProxyType` view of that dict (what
  callers of :meth:`snapshots` actually see, so a misbehaving monitor
  cannot corrupt the cache shared with the legitimacy predicate);
* the node's fingerprint tuple (re-sorted only when the snapshot dict
  actually changed).

The global :meth:`snapshot_key` is assembled from the cached per-node
fingerprints, and when *no* per-node fingerprint changed the previous key
tuple object is returned as-is -- downstream verdict caches then compare
mostly-identical objects, which short-circuits element-by-element.

Dynamic topology
----------------
The communication graph is no longer frozen at construction:
:meth:`add_node`, :meth:`remove_node`, :meth:`add_edge` and
:meth:`remove_edge` mutate the live network while keeping every incremental
structure consistent -- the graph (copied on first mutation, so the caller's
object is never touched), the adjacency map, the channel set (in-flight
messages on a removed link are dropped and counted in
:attr:`dropped_messages`), the active-channel set and pending/outbox
counters, the dirty-node set and per-node snapshot caches, and each
affected process's neighbour set (via
:meth:`~repro.sim.node.Process.add_neighbor` /
:meth:`~repro.sim.node.Process.remove_neighbor`, which protocols override
to evict stale per-neighbour state and re-enter their correction phase).

Every mutation bumps both the configuration :attr:`version` and a separate
:attr:`topology_version`.  The distinction matters because a topology
change can leave every per-node snapshot unchanged (adding a non-tree edge,
say) while still changing the verdict of a predicate that reads the graph
-- so verdict caches key on ``(snapshot_key, topology_version)`` rather
than the snapshot fingerprint alone.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..exceptions import ChannelError, ProtocolError, SimulationError
from ..graphs.validation import check_network
from ..types import Edge, NodeId, canonical_edge
from .channel import Channel
from .messages import Message
from .node import Process

__all__ = ["Network", "ProcessFactory", "EnabledEvents"]

ProcessFactory = Callable[[NodeId, Sequence[NodeId]], Process]

ChannelKey = Tuple[NodeId, NodeId]


@dataclass(frozen=True)
class EnabledEvents:
    """The kernel's enabled-event set at one configuration.

    Attributes
    ----------
    timeouts:
        Enabled nodes in increasing id order; each contributes one enabled
        timeout action.
    deliveries:
        ``(src, dst, pending)`` triples -- one per non-empty channel whose
        destination is enabled -- in channel creation order (the canonical
        order schedulers have always observed).  ``pending`` is the queue
        length at the time the set was built.
    """

    timeouts: Tuple[NodeId, ...]
    deliveries: Tuple[Tuple[NodeId, NodeId, int], ...]

    @property
    def total(self) -> int:
        """Number of enabled atomic events (timeouts + queued deliveries)."""
        return len(self.timeouts) + sum(count for _, _, count in self.deliveries)

    def __bool__(self) -> bool:
        return bool(self.timeouts) or bool(self.deliveries)


class Network:
    """The simulated distributed system: processes plus FIFO channels.

    Parameters
    ----------
    graph:
        The communication topology (undirected, connected, simple).
    process_factory:
        Callable building the protocol instance for each node.
    """

    def __init__(self, graph: nx.Graph, process_factory: ProcessFactory):
        check_network(graph)
        self.graph = graph
        self.n = graph.number_of_nodes()
        self.m = graph.number_of_edges()
        self.node_ids: List[NodeId] = sorted(graph.nodes)
        self.adjacency: Dict[NodeId, Tuple[NodeId, ...]] = {
            v: tuple(sorted(graph.neighbors(v))) for v in self.node_ids
        }
        self.processes: Dict[NodeId, Process] = {}
        self._process_factory = process_factory
        for v in self.node_ids:
            proc = process_factory(v, self.adjacency[v])
            if proc.node_id != v:
                raise ProtocolError(
                    f"process factory returned node id {proc.node_id} for node {v}")
            self.processes[v] = proc
        # -- kernel state ------------------------------------------------------
        self._version = 0
        self._topology_version = 0
        self._graph_owned = False
        #: Messages that were in flight on a link when that link was removed;
        #: a removed channel drops its queue and the count lands here.
        self.dropped_messages = 0
        # Cumulative statistics of channels destroyed by edge/node removal:
        # the per-run accounting (max message bits, total sends) must cover
        # traffic that travelled on links that no longer exist.
        self._retired_messages_sent = 0
        self._retired_max_message_bits = 0
        self._disabled: set[NodeId] = set()
        #: Channel delivery model shared by every channel (``None`` keeps the
        #: historical reliable-FIFO fast path).  Installed before the channel
        #: loop below so construction-time and churn-time channels agree.
        self._channel_model = None
        self._active: set[ChannelKey] = set()
        self._pending_total = 0
        self._channel_order: Dict[ChannelKey, int] = {}
        self._channel_seq = 0
        # Dirty-set snapshot caches: nodes whose reported state may have
        # changed since the per-node caches were refreshed, the cached
        # per-node snapshot dicts / read-only views / fingerprint tuples,
        # and the version-keyed assembled results.
        self._dirty: set[NodeId] = set(self.node_ids)
        self._node_snaps: Dict[NodeId, Dict[str, object]] = {}
        self._node_views: Dict[NodeId, Mapping[str, object]] = {}
        self._node_keys: Dict[NodeId, tuple] = {}
        self._snaps_stale = True
        self._snaps_view: Optional[Mapping[NodeId, Mapping[str, object]]] = None
        self._snaps_version = -1
        self._key_cache: Optional[Tuple[int, tuple]] = None
        # Non-empty-outbox count for the O(1) quiescence test; watchers are
        # installed below, after which the count is maintained incrementally.
        self._nonempty_outboxes = 0
        for proc in self.processes.values():
            proc.outbox.watch(self._outbox_changed)
        self._nonempty_outboxes = sum(
            1 for proc in self.processes.values() if len(proc.outbox))
        # Two directed channels per undirected edge, watched for activity.
        self.channels: Dict[ChannelKey, Channel] = {}
        for u, v in graph.edges:
            for key in ((u, v), (v, u)):
                self._install_channel(key)

    # -- configuration version / activity tracking -----------------------------

    @property
    def version(self) -> int:
        """Monotonically increasing configuration version.

        Bumped on every send, every delivery, and every reported state
        write.  Equal versions guarantee an unchanged configuration; caches
        throughout the verification layer key on it.
        """
        return self._version

    @property
    def topology_version(self) -> int:
        """Monotonically increasing topology version.

        Bumped by every :meth:`add_node` / :meth:`remove_node` /
        :meth:`add_edge` / :meth:`remove_edge`.  Equal topology versions
        guarantee an unchanged communication graph; predicate caches that
        read the graph (not just the snapshots) must key on this alongside
        :meth:`snapshot_key`, because a topology event can change a verdict
        without changing any per-node snapshot.
        """
        return self._topology_version

    def _install_channel(self, key: ChannelKey) -> Channel:
        """Create, watch and order one directed channel.

        A channel created by live edge/node churn inherits the network's
        delivery model: an unreliable adversary stays unreliable on links
        that appear mid-run.
        """
        channel = Channel(*key, network_size=self.n)
        channel.watch(self._channel_changed)
        if self._channel_model is not None:
            channel.set_model(self._channel_model)
        self._channel_order[key] = self._channel_seq
        self._channel_seq += 1
        self.channels[key] = channel
        return channel

    def install_channel_model(self, model) -> None:
        """Install a :class:`~repro.sim.adversary.ChannelModel` network-wide.

        Applies to every existing channel and to every channel created later
        by topology churn.  Passing ``None`` restores the model-free
        reliable-FIFO fast path.
        """
        self._channel_model = model
        for channel in self.channels.values():
            channel.set_model(model)

    def _channel_changed(self, channel: Channel, delta: int) -> None:
        """Activity hook installed on every channel (send/deliver/preload/clear)."""
        self._pending_total += delta
        key = (channel.src, channel.dst)
        if channel:
            self._active.add(key)
        else:
            self._active.discard(key)
        self._version += 1

    def _outbox_changed(self, outbox, delta: int) -> None:
        """Activity hook installed on every process outbox (append/drain)."""
        self._nonempty_outboxes += delta

    def note_step(self, v: NodeId) -> None:
        """Record that node ``v`` executed an atomic step (potential state write).

        Called by the scheduler helpers after every timeout action and every
        message receipt; conservatively bumps the configuration version and
        marks ``v`` dirty for the incremental snapshot caches.
        """
        self._version += 1
        self._dirty.add(v)

    def note_state_write(self, node: Optional[NodeId] = None) -> None:
        """Record an out-of-band state mutation (faults, initial configurations).

        Any code that writes process state without going through a scheduled
        step -- fault injection, initial-configuration installers, test
        harnesses poking at ``network.processes[v]`` directly -- must call
        this so version-keyed caches (snapshots, predicate verdicts) are
        invalidated.  Pass ``node`` when exactly one node was written to keep
        the invalidation proportional; the default conservatively marks every
        node dirty.
        """
        self._version += 1
        if node is None:
            self._dirty.update(self.node_ids)
        else:
            self._dirty.add(node)

    # -- enabled nodes ----------------------------------------------------------

    def node_enabled(self, v: NodeId) -> bool:
        """Whether node ``v`` currently takes steps."""
        return v not in self._disabled

    def set_node_enabled(self, v: NodeId, enabled: bool = True) -> None:
        """Enable or disable node ``v``.

        A disabled node performs no timeout actions and receives no
        messages (its incoming channels keep their queues); it stops
        contributing events to :meth:`enabled_events`.  Disabling every node
        of a quiet network makes it quiescent, which the simulator detects
        to short-circuit the round loop.
        """
        if v not in self.adjacency:
            raise SimulationError(f"unknown node {v}")
        if enabled:
            self._disabled.discard(v)
        else:
            self._disabled.add(v)
        self._version += 1

    def enabled_nodes(self) -> List[NodeId]:
        """Enabled node ids in increasing order."""
        if not self._disabled:
            return list(self.node_ids)
        return [v for v in self.node_ids if v not in self._disabled]

    # -- enabled events ---------------------------------------------------------

    def enabled_deliveries(self) -> List[Tuple[NodeId, NodeId, int]]:
        """``(src, dst, pending)`` for every enabled delivery, in channel order.

        A delivery is enabled when its channel is non-empty and its
        destination node is enabled.  The list is ordered by channel
        creation (the iteration order schedulers historically observed),
        and costs O(active log active) rather than O(m).
        """
        order = self._channel_order
        keys = sorted(self._active, key=order.__getitem__)
        out: List[Tuple[NodeId, NodeId, int]] = []
        for key in keys:
            src, dst = key
            if dst in self._disabled:
                continue
            count = len(self.channels[key])
            if count:
                out.append((src, dst, count))
        return out

    def enabled_events(self) -> EnabledEvents:
        """The enabled-event set schedulers act on (see :class:`EnabledEvents`)."""
        return EnabledEvents(timeouts=tuple(self.enabled_nodes()),
                             deliveries=tuple(self.enabled_deliveries()))

    def has_enabled_events(self) -> bool:
        """Whether any event is enabled (the negation is quiescence).

        An enabled node always has its timeout action available, so a
        network with at least one enabled node is never quiescent.  With
        every node disabled no event can ever execute again -- deliveries
        only count toward enabled nodes, and un-flushed outbox messages can
        never be flushed because flushing happens after a step of their
        (disabled) owner -- so the network is quiescent regardless of
        queued messages.
        """
        return len(self._disabled) < self.n

    # -- topology queries ------------------------------------------------------

    def neighbors(self, v: NodeId) -> Tuple[NodeId, ...]:
        """Neighbour ids of ``v`` (sorted)."""
        return self.adjacency[v]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether ``{u, v}`` is a communication link."""
        return (u, v) in self.channels

    def edges(self) -> Iterator[Edge]:
        """Iterate over the undirected edges (canonical orientation)."""
        for u, v in self.graph.edges:
            yield canonical_edge(u, v)

    def channel(self, src: NodeId, dst: NodeId) -> Channel:
        """The directed channel ``src -> dst``."""
        try:
            return self.channels[(src, dst)]
        except KeyError as exc:
            raise ChannelError(f"no channel {src}->{dst}") from exc

    # -- dynamic topology ------------------------------------------------------

    def _own_graph(self) -> nx.Graph:
        """The mutable graph: copied from the caller's on first mutation."""
        if not self._graph_owned:
            self.graph = self.graph.copy()
            self._graph_owned = True
        return self.graph

    def _note_topology_change(self) -> None:
        """Invalidate every structure keyed on the node set or edge set."""
        self._version += 1
        self._topology_version += 1
        self._snaps_stale = True
        self._snaps_view = None
        self._snaps_version = -1
        self._key_cache = None

    def _drop_channel(self, key: ChannelKey) -> None:
        """Destroy one directed channel, dropping (and counting) its queue.

        The channel's cumulative statistics are folded into the retired
        aggregates so :meth:`max_channel_message_bits` and
        :meth:`total_messages_sent` keep covering its traffic.
        """
        channel = self.channels.pop(key)
        self.dropped_messages += channel.clear()
        self._retired_messages_sent += channel.stats.sent
        if channel.stats.max_message_bits > self._retired_max_message_bits:
            self._retired_max_message_bits = channel.stats.max_message_bits
        channel.unwatch()
        self._channel_order.pop(key, None)
        self._active.discard(key)

    def _sync_channel_network_size(self) -> None:
        """Propagate the current node count to every channel's size model.

        Message bit sizes are a function of the network size (identifier
        width); after node churn every channel must account with the same
        ``n`` or the max-message-bits metric would mix id widths."""
        n = self.n
        for channel in self.channels.values():
            channel._network_size = n

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Create the communication link ``{u, v}`` at runtime.

        Installs the two directed channels, extends both adjacency entries
        and tells both processes about their new neighbour
        (:meth:`~repro.sim.node.Process.add_neighbor`).  Both endpoints must
        already be nodes of the network.
        """
        if u == v:
            raise SimulationError(f"cannot add self-loop edge at node {u}")
        for x in (u, v):
            if x not in self.adjacency:
                raise SimulationError(f"unknown node {x}")
        if (u, v) in self.channels:
            raise SimulationError(f"edge {{{u}, {v}}} already exists")
        self._own_graph().add_edge(u, v)
        self.m += 1
        for a, b in ((u, v), (v, u)):
            self.adjacency[a] = tuple(sorted(self.adjacency[a] + (b,)))
            self._install_channel((a, b))
            self.processes[a].add_neighbor(b)
            self._dirty.add(a)
        self._note_topology_change()

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Destroy the communication link ``{u, v}`` at runtime.

        In-flight messages on either direction are dropped and counted in
        :attr:`dropped_messages`; both processes evict the lost neighbour
        (:meth:`~repro.sim.node.Process.remove_neighbor`).  The network may
        become disconnected -- callers who need connectivity (the churn
        plans do) must guard before removing.
        """
        if (u, v) not in self.channels:
            raise SimulationError(f"no edge {{{u}, {v}}} to remove")
        self._own_graph().remove_edge(u, v)
        self.m -= 1
        for a, b in ((u, v), (v, u)):
            self._drop_channel((a, b))
            self.adjacency[a] = tuple(x for x in self.adjacency[a] if x != b)
            self.processes[a].remove_neighbor(b)
            self._dirty.add(a)
        self._note_topology_change()

    def add_node(self, v: NodeId, neighbors: Iterable[NodeId] = ()) -> Process:
        """A new node joins the network, linked to ``neighbors``.

        The process is built by the same factory the network was constructed
        with; its outbox is watched, its channels installed, and every
        attach-point process learns about its new neighbour.  Returns the
        new process.
        """
        if v in self.adjacency:
            raise SimulationError(f"node {v} already exists")
        attach = tuple(sorted(set(neighbors)))
        if v in attach:
            raise SimulationError(f"node {v} cannot neighbour itself")
        unknown = [u for u in attach if u not in self.adjacency]
        if unknown:
            raise SimulationError(f"cannot attach new node {v} to unknown nodes {unknown}")
        graph = self._own_graph()
        graph.add_node(v)
        for u in attach:
            graph.add_edge(v, u)
        self.n += 1
        self.m += len(attach)
        bisect.insort(self.node_ids, v)
        self.adjacency[v] = attach
        proc = self._process_factory(v, attach)
        if proc.node_id != v:
            raise ProtocolError(
                f"process factory returned node id {proc.node_id} for node {v}")
        self.processes[v] = proc
        proc.outbox.watch(self._outbox_changed)
        if len(proc.outbox):
            self._nonempty_outboxes += 1
        for u in attach:
            self.adjacency[u] = tuple(sorted(self.adjacency[u] + (v,)))
            self.processes[u].add_neighbor(v)
            self._dirty.add(u)
            self._install_channel((v, u))
            self._install_channel((u, v))
        self._dirty.add(v)
        self._sync_channel_network_size()
        self._note_topology_change()
        return proc

    def remove_node(self, v: NodeId) -> Process:
        """Node ``v`` leaves the network, taking its incident links along.

        Every incident channel is destroyed (in-flight messages dropped and
        counted), every ex-neighbour evicts ``v`` from its neighbour set,
        and all per-node kernel state (enabled flag, dirty mark, snapshot
        caches, outbox watch) is released.  Returns the removed process.
        """
        if v not in self.adjacency:
            raise SimulationError(f"unknown node {v}")
        if self.n == 1:
            raise SimulationError("cannot remove the last node of the network")
        ex_neighbors = list(self.adjacency[v])
        for u in ex_neighbors:
            self._drop_channel((v, u))
            self._drop_channel((u, v))
            self.adjacency[u] = tuple(x for x in self.adjacency[u] if x != v)
            self.processes[u].remove_neighbor(v)
            self._dirty.add(u)
        self.m -= len(ex_neighbors)
        proc = self.processes.pop(v)
        if len(proc.outbox):
            self._nonempty_outboxes -= 1
        proc.outbox.unwatch()
        self._own_graph().remove_node(v)
        self.n -= 1
        self.node_ids.remove(v)
        del self.adjacency[v]
        self._disabled.discard(v)
        self._dirty.discard(v)
        self._node_snaps.pop(v, None)
        self._node_views.pop(v, None)
        self._node_keys.pop(v, None)
        self._sync_channel_network_size()
        self._note_topology_change()
        return proc

    # -- message plumbing ------------------------------------------------------

    def flush_outbox(self, v: NodeId) -> int:
        """Move every message queued in ``v``'s outbox onto its channels.

        Returns the number of messages pushed.  Called by the simulator after
        every atomic step of ``v`` so that emission order is preserved.
        """
        outbox = self.processes[v].outbox
        if not len(outbox):
            return 0
        count = 0
        for dest, message in outbox.drain():
            self.channel(v, dest).send(message)
            count += 1
        return count

    def pending_channels(self) -> List[Channel]:
        """All channels currently holding at least one message (channel order)."""
        order = self._channel_order
        return [self.channels[key]
                for key in sorted(self._active, key=order.__getitem__)]

    def pending_messages(self) -> int:
        """Total number of messages currently in transit (O(1))."""
        return self._pending_total

    def is_quiescent(self) -> bool:
        """``True`` when no message is in transit and no outbox is non-empty.

        O(1): the kernel counts messages in transit and non-empty outboxes
        incrementally (channel and outbox activity hooks) instead of
        scanning every channel and every process.
        """
        return self._pending_total == 0 and self._nonempty_outboxes == 0

    # -- global inspection -----------------------------------------------------

    def _refresh_dirty(self) -> None:
        """Re-snapshot every dirty node, keeping caches for unchanged ones.

        A dirty node whose fresh snapshot compares equal to the cached one
        keeps its cached dict, read-only view and fingerprint tuple; only
        genuinely changed nodes invalidate their fingerprint (re-sorted
        lazily by :meth:`snapshot_key`) and mark the assembled global view
        stale.
        """
        dirty = self._dirty
        if not dirty:
            return
        processes = self.processes
        node_snaps = self._node_snaps
        for v in dirty:
            snap = processes[v].snapshot()
            if node_snaps.get(v) == snap:
                continue
            node_snaps[v] = snap
            self._node_views[v] = MappingProxyType(snap)
            self._node_keys.pop(v, None)
            self._snaps_stale = True
        dirty.clear()

    def snapshots(self) -> Mapping[NodeId, Mapping[str, object]]:
        """Per-node protocol variable snapshots (for checks and traces).

        The result is cached keyed on the configuration version and
        refreshed incrementally from the dirty-node set: global checks that
        run several times against an unchanged configuration (the
        legitimacy predicate stages, the convergence and closure monitors)
        share one traversal, and a configuration change only re-snapshots
        the nodes that stepped or were written since the last refresh.

        The returned mapping (and each per-node mapping inside it) is a
        read-only view: callers cannot corrupt the cache shared with the
        legitimacy predicate.  A view reflects the configuration at the
        time of the call; request a fresh one after further mutation.
        """
        if self._snaps_view is not None and self._snaps_version == self._version:
            return self._snaps_view
        self._refresh_dirty()
        if self._snaps_stale or self._snaps_view is None:
            views = self._node_views
            self._snaps_view = MappingProxyType(
                {v: views[v] for v in self.node_ids})
            self._snaps_stale = False
        self._snaps_version = self._version
        return self._snaps_view

    def snapshot_key(self) -> tuple:
        """Canonical fingerprint of the observable configuration.

        Two equal keys guarantee equal per-node snapshots, so any pure
        function of the snapshots (the legitimacy predicate in particular)
        evaluates identically.  Cached keyed on the configuration version
        and assembled from cached per-node fingerprint tuples: only nodes
        whose snapshot actually changed since the previous key are
        re-sorted, and when nothing changed the previous key object itself
        is returned.
        """
        cache = self._key_cache
        if cache is not None and cache[0] == self._version:
            return cache[1]
        self._refresh_dirty()
        keys = self._node_keys
        refreshed = False
        for v in self.node_ids:
            if v not in keys:
                keys[v] = (v, tuple(sorted(self._node_snaps[v].items())))
                refreshed = True
        if refreshed or cache is None:
            key = tuple(keys[v] for v in self.node_ids)
        else:
            # No per-node fingerprint changed since the cached tuple was
            # assembled: the key is identical, reuse the object.
            key = cache[1]
        self._key_cache = (self._version, key)
        return key

    def max_state_bits(self) -> int:
        """Maximum per-node persistent state size in bits (memory claim E3)."""
        return max(p.state_bits(self.n) for p in self.processes.values())

    def total_state_bits(self) -> int:
        """Total persistent state over all nodes in bits."""
        return sum(p.state_bits(self.n) for p in self.processes.values())

    def max_channel_message_bits(self) -> int:
        """Largest message (in bits) ever placed on any channel.

        Covers channels destroyed by topology churn: their statistics are
        retired into an aggregate rather than discarded."""
        live = max((c.stats.max_message_bits for c in self.channels.values()),
                   default=0)
        return max(live, self._retired_max_message_bits)

    def total_messages_sent(self) -> int:
        """Total messages pushed onto channels since construction (live
        channels plus any destroyed by topology churn)."""
        return (sum(c.stats.sent for c in self.channels.values())
                + self._retired_messages_sent)

    def degree(self, v: NodeId) -> int:
        """Graph degree of ``v`` (``|N(v)|``)."""
        return len(self.adjacency[v])

    def max_graph_degree(self) -> int:
        """Maximum graph degree δ (used in the O(δ log n) memory bound)."""
        return max(len(nbrs) for nbrs in self.adjacency.values())

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Network(n={self.n}, m={self.m}, pending={self.pending_messages()})"
