"""Process (node) abstraction for the message-passing simulator.

A :class:`Process` models one processor of the network.  Its interface is the
*send/receive atomicity* model of the paper (borrowed from Burman & Kutten):

* an **atomic step** is either the receipt of a single message together with
  the local computation it triggers, or a spontaneous *timeout* action (used
  to emit the periodic ``InfoMsg`` gossip);
* a node can read and write only its own variables (plus the cached copies of
  its neighbours' variables that the protocol itself maintains via gossip);
* all communication goes through :meth:`Process.send`, which the simulator
  routes over the FIFO channel to the destination neighbour.

Protocol implementations (the self-stabilizing spanning tree, the full MDST
algorithm, the baselines) subclass :class:`Process`.

Both :class:`Process` and :class:`Outbox` are slotted: processes and their
outboxes sit on the innermost simulation loop (every atomic step touches
them), so their fixed attribute layout matters.  Subclasses are free to add
their own ``__slots__`` or to stay ordinary dict-ful classes.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ProtocolError
from ..types import NodeId
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .network import Network

__all__ = ["Process", "Outbox"]


class Outbox:
    """Collects the messages emitted by a node during one atomic step.

    The simulator drains the outbox after every step and pushes its content
    onto the corresponding FIFO channels, preserving emission order.

    The owning network may install an *activity watcher* (:meth:`watch`):
    it is invoked with ``(outbox, +1)`` when the outbox becomes non-empty
    and ``(outbox, -1)`` when it is drained back to empty, which lets the
    kernel keep a count of non-empty outboxes instead of scanning every
    process for its quiescence test.
    """

    __slots__ = ("_items", "_on_change")

    def __init__(self) -> None:
        self._items: List[Tuple[NodeId, Message]] = []
        self._on_change: Optional[Callable[["Outbox", int], None]] = None

    def watch(self, on_change: Callable[["Outbox", int], None]) -> None:
        """Install the non-empty-transition callback ``(outbox, delta) -> None``."""
        self._on_change = on_change

    def unwatch(self) -> None:
        """Remove the activity callback (the owning network is letting go)."""
        self._on_change = None

    def append(self, dest: NodeId, message: Message) -> None:
        items = self._items
        items.append((dest, message))
        if len(items) == 1 and self._on_change is not None:
            self._on_change(self, 1)

    def drain(self) -> List[Tuple[NodeId, Message]]:
        items, self._items = self._items, []
        if items and self._on_change is not None:
            self._on_change(self, -1)
        return items

    def __len__(self) -> int:
        return len(self._items)


class Process(abc.ABC):
    """Base class of all protocol node implementations.

    Parameters
    ----------
    node_id:
        Unique identifier of this node (``ID_v`` in the paper).
    neighbors:
        Identifiers of the one-hop neighbours (``N(v)``); the paper assumes an
        underlying self-stabilizing protocol keeps this set up to date, so the
        simulator provides it as trusted read-only information.
    """

    __slots__ = ("node_id", "neighbors", "_neighbor_set", "outbox", "steps_taken")

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId]):
        self.node_id: NodeId = node_id
        self.neighbors: Tuple[NodeId, ...] = tuple(sorted(neighbors))
        self._neighbor_set = frozenset(self.neighbors)
        self.outbox = Outbox()
        #: number of atomic steps this node has executed (maintained by the simulator)
        self.steps_taken: int = 0

    # -- communication --------------------------------------------------------

    def send(self, dest: NodeId, message: Message) -> None:
        """Queue ``message`` for delivery to neighbour ``dest``.

        Raises :class:`ProtocolError` if ``dest`` is not a neighbour: the
        algorithm is strictly local (one-hop communication only).
        """
        if dest not in self._neighbor_set:
            raise ProtocolError(
                f"node {self.node_id} tried to send {message.type_name()} to "
                f"non-neighbour {dest}")
        self.outbox.append(dest, message)

    def broadcast(self, message: Message, exclude: Sequence[NodeId] = ()) -> None:
        """Send ``message`` to every neighbour not listed in ``exclude``."""
        outbox = self.outbox
        for u in self.neighbors:
            if u not in exclude:
                outbox.append(u, message)

    # -- dynamic topology ------------------------------------------------------

    def add_neighbor(self, u: NodeId) -> None:
        """A new communication link to ``u`` appeared (live topology change).

        The paper assumes an underlying self-stabilizing protocol keeps the
        neighbour set current; the network calls this when that set grows.
        Subclasses override to initialise per-neighbour protocol state and
        must call ``super().add_neighbor(u)`` first.
        """
        if u == self.node_id:
            raise ProtocolError(f"node {self.node_id} cannot neighbour itself")
        if u in self._neighbor_set:
            raise ProtocolError(f"node {self.node_id} already neighbours {u}")
        self.neighbors = tuple(sorted(self.neighbors + (u,)))
        self._neighbor_set = frozenset(self.neighbors)

    def remove_neighbor(self, u: NodeId) -> None:
        """The communication link to ``u`` disappeared (live topology change).

        Subclasses override to evict cached per-neighbour state and re-enter
        their correction phase; they must call ``super().remove_neighbor(u)``
        first.
        """
        if u not in self._neighbor_set:
            raise ProtocolError(f"node {self.node_id} does not neighbour {u}")
        self.neighbors = tuple(v for v in self.neighbors if v != u)
        self._neighbor_set = frozenset(self.neighbors)

    # -- protocol hooks --------------------------------------------------------

    def on_start(self) -> None:
        """Called once before the first step.

        Self-stabilizing protocols must not rely on this hook for correctness
        (the initial state is arbitrary); it exists so that *non*-stabilizing
        baselines can perform their initialisation, and so tests can install
        well-defined starting states.
        """

    @abc.abstractmethod
    def on_timeout(self) -> None:
        """Spontaneous periodic action (the ``Do forever`` loop of Figure 2).

        In the paper this is where a node gossips its ``InfoMsg`` to all its
        neighbours.  Called by the scheduler at least once per round.
        """

    @abc.abstractmethod
    def on_message(self, sender: NodeId, message: Message) -> None:
        """Handle the receipt of ``message`` from neighbour ``sender``.

        Together with the local computation it performs, this constitutes a
        single atomic step in the send/receive atomicity model.
        """

    # -- self-stabilization support -------------------------------------------

    def corrupt(self, rng: np.random.Generator) -> None:
        """Overwrite the local state with arbitrary (random) values.

        Used by fault injection to realise the "start from an arbitrary
        configuration" premise.  Subclasses must override this to perturb all
        of their protocol variables; the default implementation raises so
        that a protocol cannot silently claim fault-tolerance it was never
        tested for.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption")

    def state_bits(self, network_size: int) -> int:
        """Estimated size of the node's persistent state in bits.

        Used by the memory-complexity experiment (E3).  Subclasses should
        override; the default returns 0 (no persistent state).
        """
        return 0

    def snapshot(self) -> Dict[str, object]:
        """Return a copy of the node's protocol variables for tracing/tests.

        The default returns an empty dict; subclasses override to expose
        their variables (``root``, ``parent``, ``distance``, ``dmax`` ...).
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}(id={self.node_id}, deg={len(self.neighbors)})"
