"""Transient faults and live topology churn.

Self-stabilization (Definition 1 in the paper) requires convergence from an
*arbitrary* configuration: arbitrary local states and arbitrary channel
contents.  This module realises that premise explicitly:

* :func:`corrupt_states` overwrites (a fraction of) node states with random
  values via each process's :meth:`~repro.sim.node.Process.corrupt` hook;
* :func:`corrupt_channels` pre-loads garbage messages onto (a fraction of)
  the FIFO channels;
* :class:`FaultPlan` describes a schedule of mid-run transient faults so the
  recovery experiments (E5) can hit an already-converged system and measure
  re-stabilization time.

The paper's motivating networks (P2P overlays, wireless/sensor deployments)
additionally change *topology* at runtime -- peers leave and join, radio
links appear and die.  :class:`ChurnPlan` is the topology-side sibling of
:class:`FaultPlan`: a schedule of :class:`ChurnEvent` node/edge churn
applied to the live network through its mutation APIs
(:meth:`~repro.sim.network.Network.add_node` and friends).  A plan is
schedulable per round by the :class:`~repro.sim.simulator.Simulator` and
composes freely with a fault plan (both may fire after the same round).
:func:`random_churn_plan` generates a deterministic, connectivity-preserving
mixed plan for a given graph -- the workload behind the churn benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError
from ..types import NodeId
from .messages import GarbageMessage
from .network import Network

__all__ = ["corrupt_states", "corrupt_channels", "corrupt_everything",
           "FaultEvent", "FaultPlan",
           "ChurnEvent", "ChurnPlan", "random_churn_plan"]


def corrupt_states(network: Network, rng: np.random.Generator,
                   fraction: float = 1.0,
                   nodes: Optional[Sequence[NodeId]] = None) -> List[NodeId]:
    """Corrupt the local state of a set of nodes.

    Parameters
    ----------
    fraction:
        Fraction of nodes to corrupt when ``nodes`` is not given; 1.0 means
        every node starts from garbage (the paper's worst case).
    nodes:
        Explicit node set to corrupt (overrides ``fraction``).

    Returns the list of corrupted node ids.
    """
    if nodes is None:
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1]")
        count = int(round(fraction * len(network.node_ids)))
        chosen = list(rng.choice(network.node_ids, size=count, replace=False)) if count else []
        chosen = [int(v) for v in chosen]
    else:
        chosen = [int(v) for v in nodes]
        unknown = set(chosen) - set(network.node_ids)
        if unknown:
            raise ConfigurationError(f"cannot corrupt unknown nodes {sorted(unknown)}")
    for v in chosen:
        network.processes[v].corrupt(rng)
        # Per-node notification keeps the kernel's snapshot invalidation
        # proportional to the corrupted set rather than the whole network.
        network.note_state_write(v)
    return chosen


def corrupt_channels(network: Network, rng: np.random.Generator,
                     fraction: float = 0.5, max_garbage: int = 3) -> int:
    """Pre-load garbage messages on a fraction of the directed channels.

    Returns the number of garbage messages injected.  Garbage messages are
    instances of :class:`GarbageMessage`, which well-behaved protocols ignore
    (and thereby remove from the channel) on receipt.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ConfigurationError("fraction must be in [0, 1]")
    injected = 0
    for channel in network.channels.values():
        if rng.random() >= fraction:
            continue
        count = int(rng.integers(1, max_garbage + 1))
        payload = [GarbageMessage(payload=tuple(int(x) for x in rng.integers(0, 1000, size=3)))
                   for _ in range(count)]
        channel.preload(payload)
        injected += count
    return injected


def corrupt_everything(network: Network, rng: np.random.Generator,
                       channel_fraction: float = 0.5) -> dict:
    """Corrupt every node state and a fraction of the channels.

    This is the canonical "arbitrary initial configuration" used by the
    self-stabilization experiments.  Returns a small report dict.
    """
    corrupted = corrupt_states(network, rng, fraction=1.0)
    garbage = corrupt_channels(network, rng, fraction=channel_fraction)
    return {"corrupted_nodes": len(corrupted), "garbage_messages": garbage}


@dataclass(frozen=True)
class FaultEvent:
    """A transient fault scheduled at a given round.

    Attributes
    ----------
    round_index:
        Round after which the fault strikes.
    node_fraction:
        Fraction of nodes whose state is corrupted.
    channel_fraction:
        Fraction of channels that receive garbage messages.
    """

    round_index: int
    node_fraction: float = 1.0
    channel_fraction: float = 0.0


@dataclass
class FaultPlan:
    """A schedule of transient faults applied during a simulation run."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, round_index: int, node_fraction: float = 1.0,
            channel_fraction: float = 0.0) -> "FaultPlan":
        """Append a fault event (fluent interface)."""
        self.events.append(FaultEvent(round_index, node_fraction, channel_fraction))
        return self

    def pending_at(self, round_index: int) -> List[FaultEvent]:
        """Fault events that should fire exactly after ``round_index``."""
        return [e for e in self.events if e.round_index == round_index]

    def apply_due(self, network: Network, rng: np.random.Generator,
                  round_index: int) -> List[FaultEvent]:
        """Apply all events due at ``round_index``; return the fired events."""
        fired = self.pending_at(round_index)
        for event in fired:
            corrupt_states(network, rng, fraction=event.node_fraction)
            if event.channel_fraction > 0:
                corrupt_channels(network, rng, fraction=event.channel_fraction)
        return fired

    @property
    def last_round(self) -> int:
        """Round index of the last scheduled fault (-1 when empty)."""
        return max((e.round_index for e in self.events), default=-1)


# ---------------------------------------------------------------------------
# Topology churn
# ---------------------------------------------------------------------------

#: The four churn event kinds, in the vocabulary of the network mutation API.
CHURN_KINDS = ("add_node", "remove_node", "add_edge", "remove_edge")


@dataclass(frozen=True)
class ChurnEvent:
    """One topology change scheduled at a given round.

    Attributes
    ----------
    round_index:
        Round after which the event fires (same convention as
        :class:`FaultEvent`).
    kind:
        One of ``"add_node"``, ``"remove_node"``, ``"add_edge"``,
        ``"remove_edge"``.
    node:
        The joining/leaving node for node events.
    edge:
        The ``(u, v)`` pair for edge events.
    attach:
        Attach points of a joining node (its initial neighbour set).
    """

    round_index: int
    kind: str
    node: Optional[NodeId] = None
    edge: Optional[Tuple[NodeId, NodeId]] = None
    attach: Tuple[NodeId, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ConfigurationError(
                f"unknown churn kind {self.kind!r}; known: {list(CHURN_KINDS)}")
        if self.kind in ("add_node", "remove_node") and self.node is None:
            raise ConfigurationError(f"{self.kind} event needs a node")
        if self.kind in ("add_edge", "remove_edge") and self.edge is None:
            raise ConfigurationError(f"{self.kind} event needs an edge")


@dataclass
class ChurnPlan:
    """A schedule of live topology changes applied during a simulation run.

    The topology-side sibling of :class:`FaultPlan`: the simulator calls
    :meth:`apply_due` after every round, and due events are executed through
    the network's mutation APIs.  With ``guard_connectivity`` (the default)
    an event that would disconnect the network -- or that no longer applies
    because earlier churn already changed the topology -- is *skipped* and
    recorded in :attr:`skipped` instead of raising; applied events land in
    :attr:`applied`.  Self-stabilization makes no promise on a partitioned
    network, so keeping the guard on is what the recovery scenarios want.
    """

    events: List[ChurnEvent] = field(default_factory=list)
    guard_connectivity: bool = True
    #: Events actually executed, in execution order.  Note: outcomes
    #: accumulate on the plan object across runs -- the simulator counts
    #: per-run deltas, so reusing one plan for several runs is safe.
    applied: List[ChurnEvent] = field(default_factory=list)
    #: ``(event, reason)`` pairs that were skipped by the guard.
    skipped: List[Tuple[ChurnEvent, str]] = field(default_factory=list)

    # -- fluent construction ---------------------------------------------------

    def add_node(self, round_index: int, node: NodeId,
                 attach: Sequence[NodeId]) -> "ChurnPlan":
        """Schedule node ``node`` to join, linked to ``attach``."""
        self.events.append(ChurnEvent(round_index, "add_node", node=node,
                                      attach=tuple(attach)))
        return self

    def remove_node(self, round_index: int, node: NodeId) -> "ChurnPlan":
        """Schedule node ``node`` to leave (with all its links)."""
        self.events.append(ChurnEvent(round_index, "remove_node", node=node))
        return self

    def add_edge(self, round_index: int, u: NodeId, v: NodeId) -> "ChurnPlan":
        """Schedule the link ``{u, v}`` to appear."""
        self.events.append(ChurnEvent(round_index, "add_edge", edge=(u, v)))
        return self

    def remove_edge(self, round_index: int, u: NodeId, v: NodeId) -> "ChurnPlan":
        """Schedule the link ``{u, v}`` to die."""
        self.events.append(ChurnEvent(round_index, "remove_edge", edge=(u, v)))
        return self

    # -- scheduling ------------------------------------------------------------

    def pending_at(self, round_index: int) -> List[ChurnEvent]:
        """Churn events that should fire exactly after ``round_index``."""
        return [e for e in self.events if e.round_index == round_index]

    def _guard(self, network: Network, event: ChurnEvent) -> Optional[str]:
        """Reason to skip ``event`` on the current network, or ``None``."""
        graph = network.graph
        if event.kind == "add_node":
            if event.node in network.adjacency:
                return f"node {event.node} already present"
            missing = [u for u in event.attach if u not in network.adjacency]
            if missing:
                return f"attach points {missing} no longer present"
            if self.guard_connectivity and not event.attach:
                return f"node {event.node} would join disconnected"
        elif event.kind == "remove_node":
            if event.node not in network.adjacency:
                return f"node {event.node} no longer present"
            if network.n == 1:
                return "cannot remove the last node"
            if self.guard_connectivity:
                probe = graph.copy()
                probe.remove_node(event.node)
                if probe.number_of_nodes() and not nx.is_connected(probe):
                    return f"removing node {event.node} would disconnect the network"
        elif event.kind == "add_edge":
            u, v = event.edge
            if u not in network.adjacency or v not in network.adjacency:
                return f"endpoint of edge {event.edge} no longer present"
            if network.has_edge(u, v):
                return f"edge {event.edge} already exists"
        else:  # remove_edge
            u, v = event.edge
            if not network.has_edge(u, v):
                return f"edge {event.edge} no longer present"
            if self.guard_connectivity:
                probe = graph.copy()
                probe.remove_edge(u, v)
                if not nx.is_connected(probe):
                    return f"removing edge {event.edge} would disconnect the network"
        return None

    def apply_event(self, network: Network, event: ChurnEvent) -> bool:
        """Apply one event through the network mutation APIs.

        Returns ``True`` when applied, ``False`` when the guard skipped it.
        """
        reason = self._guard(network, event)
        if reason is not None:
            self.skipped.append((event, reason))
            return False
        if event.kind == "add_node":
            network.add_node(event.node, event.attach)
        elif event.kind == "remove_node":
            network.remove_node(event.node)
        elif event.kind == "add_edge":
            network.add_edge(*event.edge)
        else:
            network.remove_edge(*event.edge)
        self.applied.append(event)
        return True

    def apply_due(self, network: Network, round_index: int) -> List[ChurnEvent]:
        """Apply all events due at ``round_index``; return the applied ones."""
        fired = []
        for event in self.pending_at(round_index):
            if self.apply_event(network, event):
                fired.append(event)
        return fired

    @property
    def last_round(self) -> int:
        """Round index of the last scheduled event (-1 when empty)."""
        return max((e.round_index for e in self.events), default=-1)


def random_churn_plan(graph: nx.Graph, *, events: int, start_round: int,
                      period: int, seed: int = 0,
                      kind_weights: Optional[Dict[str, float]] = None,
                      attach_degree: int = 2) -> ChurnPlan:
    """A deterministic, connectivity-preserving mixed churn plan.

    Schedules ``events`` topology changes, one every ``period`` rounds
    starting after ``start_round``, drawn from a seeded generator.  The plan
    is generated against an evolving working copy of ``graph``: each event
    is chosen to be valid *and connectivity-preserving* on the topology the
    earlier events produce, so on an unchurned network the whole plan
    applies without guard skips.  Joining nodes get fresh identifiers above
    the largest existing one and ``attach_degree`` random attach points.

    Parameters
    ----------
    kind_weights:
        Relative odds of each kind (default: edge churn twice as likely as
        node churn, mirroring wireless deployments where links flap more
        often than peers die).
    """
    if events < 0:
        raise ConfigurationError("events must be >= 0")
    if period < 1:
        raise ConfigurationError("period must be >= 1")
    weights = dict(kind_weights) if kind_weights else {
        "add_edge": 0.3, "remove_edge": 0.3, "add_node": 0.2, "remove_node": 0.2}
    unknown = set(weights) - set(CHURN_KINDS)
    if unknown:
        raise ConfigurationError(f"unknown churn kinds {sorted(unknown)}")
    kinds = sorted(weights)
    probs = np.array([weights[k] for k in kinds], dtype=float)
    probs = probs / probs.sum()
    rng = np.random.default_rng(seed)
    working = graph.copy()
    next_id = max(working.nodes) + 1
    plan = ChurnPlan()
    for i in range(events):
        round_index = start_round + i * period
        for kind in _kind_preference(rng, kinds, probs):
            if _generate_event(plan, working, rng, kind, round_index,
                               next_id, attach_degree):
                if kind == "add_node":
                    next_id += 1
                break
    return plan


def _kind_preference(rng: np.random.Generator, kinds: List[str],
                     probs: np.ndarray) -> List[str]:
    """The drawn kind first, then the rest as fallbacks (fixed order)."""
    first = kinds[int(rng.choice(len(kinds), p=probs))]
    return [first] + [k for k in kinds if k != first]


def _generate_event(plan: ChurnPlan, working: nx.Graph, rng: np.random.Generator,
                    kind: str, round_index: int, next_id: int,
                    attach_degree: int) -> bool:
    """Try to generate one valid ``kind`` event on ``working``; apply it to
    the working copy and append it to ``plan`` on success."""
    nodes = sorted(working.nodes)
    if kind == "add_edge":
        candidates = sorted((u, v) for u in nodes for v in nodes
                            if u < v and not working.has_edge(u, v))
        if not candidates:
            return False
        u, v = candidates[int(rng.integers(len(candidates)))]
        working.add_edge(u, v)
        plan.add_edge(round_index, u, v)
        return True
    if kind == "remove_edge":
        bridges = set(nx.bridges(working))
        candidates = sorted((u, v) for u, v in
                            ((min(a, b), max(a, b)) for a, b in working.edges)
                            if (u, v) not in bridges and (v, u) not in bridges)
        if not candidates:
            return False
        u, v = candidates[int(rng.integers(len(candidates)))]
        working.remove_edge(u, v)
        plan.remove_edge(round_index, u, v)
        return True
    if kind == "add_node":
        k = min(max(1, attach_degree), len(nodes))
        attach = sorted(int(x) for x in rng.choice(nodes, size=k, replace=False))
        working.add_node(next_id)
        for u in attach:
            working.add_edge(next_id, u)
        plan.add_node(round_index, next_id, attach)
        return True
    # remove_node: only nodes whose departure keeps the graph connected
    if len(nodes) <= 3:
        return False
    articulation = set(nx.articulation_points(working))
    candidates = [v for v in nodes if v not in articulation]
    if not candidates:
        return False
    v = candidates[int(rng.integers(len(candidates)))]
    working.remove_node(v)
    plan.remove_node(round_index, v)
    return True
