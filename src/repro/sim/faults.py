"""Transient-fault injection.

Self-stabilization (Definition 1 in the paper) requires convergence from an
*arbitrary* configuration: arbitrary local states and arbitrary channel
contents.  This module realises that premise explicitly:

* :func:`corrupt_states` overwrites (a fraction of) node states with random
  values via each process's :meth:`~repro.sim.node.Process.corrupt` hook;
* :func:`corrupt_channels` pre-loads garbage messages onto (a fraction of)
  the FIFO channels;
* :func:`FaultPlan` describes a schedule of mid-run transient faults so the
  recovery experiments (E5) can hit an already-converged system and measure
  re-stabilization time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..types import NodeId
from .messages import GarbageMessage
from .network import Network

__all__ = ["corrupt_states", "corrupt_channels", "corrupt_everything",
           "FaultEvent", "FaultPlan"]


def corrupt_states(network: Network, rng: np.random.Generator,
                   fraction: float = 1.0,
                   nodes: Optional[Sequence[NodeId]] = None) -> List[NodeId]:
    """Corrupt the local state of a set of nodes.

    Parameters
    ----------
    fraction:
        Fraction of nodes to corrupt when ``nodes`` is not given; 1.0 means
        every node starts from garbage (the paper's worst case).
    nodes:
        Explicit node set to corrupt (overrides ``fraction``).

    Returns the list of corrupted node ids.
    """
    if nodes is None:
        if not (0.0 <= fraction <= 1.0):
            raise ConfigurationError("fraction must be in [0, 1]")
        count = int(round(fraction * len(network.node_ids)))
        chosen = list(rng.choice(network.node_ids, size=count, replace=False)) if count else []
        chosen = [int(v) for v in chosen]
    else:
        chosen = [int(v) for v in nodes]
        unknown = set(chosen) - set(network.node_ids)
        if unknown:
            raise ConfigurationError(f"cannot corrupt unknown nodes {sorted(unknown)}")
    for v in chosen:
        network.processes[v].corrupt(rng)
        # Per-node notification keeps the kernel's snapshot invalidation
        # proportional to the corrupted set rather than the whole network.
        network.note_state_write(v)
    return chosen


def corrupt_channels(network: Network, rng: np.random.Generator,
                     fraction: float = 0.5, max_garbage: int = 3) -> int:
    """Pre-load garbage messages on a fraction of the directed channels.

    Returns the number of garbage messages injected.  Garbage messages are
    instances of :class:`GarbageMessage`, which well-behaved protocols ignore
    (and thereby remove from the channel) on receipt.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ConfigurationError("fraction must be in [0, 1]")
    injected = 0
    for channel in network.channels.values():
        if rng.random() >= fraction:
            continue
        count = int(rng.integers(1, max_garbage + 1))
        payload = [GarbageMessage(payload=tuple(int(x) for x in rng.integers(0, 1000, size=3)))
                   for _ in range(count)]
        channel.preload(payload)
        injected += count
    return injected


def corrupt_everything(network: Network, rng: np.random.Generator,
                       channel_fraction: float = 0.5) -> dict:
    """Corrupt every node state and a fraction of the channels.

    This is the canonical "arbitrary initial configuration" used by the
    self-stabilization experiments.  Returns a small report dict.
    """
    corrupted = corrupt_states(network, rng, fraction=1.0)
    garbage = corrupt_channels(network, rng, fraction=channel_fraction)
    return {"corrupted_nodes": len(corrupted), "garbage_messages": garbage}


@dataclass(frozen=True)
class FaultEvent:
    """A transient fault scheduled at a given round.

    Attributes
    ----------
    round_index:
        Round after which the fault strikes.
    node_fraction:
        Fraction of nodes whose state is corrupted.
    channel_fraction:
        Fraction of channels that receive garbage messages.
    """

    round_index: int
    node_fraction: float = 1.0
    channel_fraction: float = 0.0


@dataclass
class FaultPlan:
    """A schedule of transient faults applied during a simulation run."""

    events: List[FaultEvent] = field(default_factory=list)

    def add(self, round_index: int, node_fraction: float = 1.0,
            channel_fraction: float = 0.0) -> "FaultPlan":
        """Append a fault event (fluent interface)."""
        self.events.append(FaultEvent(round_index, node_fraction, channel_fraction))
        return self

    def pending_at(self, round_index: int) -> List[FaultEvent]:
        """Fault events that should fire exactly after ``round_index``."""
        return [e for e in self.events if e.round_index == round_index]

    def apply_due(self, network: Network, rng: np.random.Generator,
                  round_index: int) -> List[FaultEvent]:
        """Apply all events due at ``round_index``; return the fired events."""
        fired = self.pending_at(round_index)
        for event in fired:
            corrupt_states(network, rng, fraction=event.node_fraction)
            if event.channel_fraction > 0:
                corrupt_channels(network, rng, fraction=event.channel_fraction)
        return fired

    @property
    def last_round(self) -> int:
        """Round index of the last scheduled fault (-1 when empty)."""
        return max((e.round_index for e in self.events), default=-1)
