"""The simulation engine: drives a network under a scheduler until convergence.

The :class:`Simulator` ties together the pieces defined in this subpackage:

* a :class:`~repro.sim.network.Network` (processes + FIFO channels),
* a :class:`~repro.sim.scheduler.Scheduler` (asynchrony model),
* a legitimacy predicate evaluated through a
  :class:`~repro.sim.monitors.ConvergenceMonitor`,
* optional :class:`~repro.sim.monitors.InvariantMonitor` safety checks,
* an optional :class:`~repro.sim.faults.FaultPlan` for mid-run transient
  faults,
* an optional :class:`~repro.sim.faults.ChurnPlan` for live topology
  changes (node/edge churn), composable with the fault plan,
* an optional :class:`~repro.sim.adversary.Adversary` bundling a channel
  delivery model (loss/duplication/reordering), crash/recover node faults
  and Byzantine gossip,
* an optional :class:`~repro.sim.trace.TraceRecorder`.

``Simulator.run`` executes rounds until the convergence monitor fires (plus,
optionally, a number of extra rounds to witness closure) or the round budget
is exhausted, and returns a :class:`SimulationReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..exceptions import ConfigurationError, ConvergenceError
from .adversary import Adversary
from .faults import ChurnPlan, FaultPlan
from .monitors import ClosureMonitor, ConvergenceMonitor, InvariantMonitor, PredicateCache
from .network import Network
from .scheduler import RoundStats, Scheduler, SynchronousScheduler
from .trace import TraceRecorder

__all__ = ["Simulator", "SimulationReport"]

Predicate = Callable[[Network], bool]


@dataclass
class SimulationReport:
    """Outcome of a :meth:`Simulator.run` call.

    ``quiescent`` is set when the run stopped early because the kernel had
    no enabled event left (no enabled node and no deliverable message): no
    future round could have changed the configuration.
    """

    converged: bool
    rounds: int
    convergence_round: Optional[int]
    steps: int
    deliveries: int
    messages_sent: int
    max_message_bits: int
    max_state_bits: int
    closure_violations: List[int] = field(default_factory=list)
    fault_rounds: List[int] = field(default_factory=list)
    round_stats: List[RoundStats] = field(default_factory=list)
    quiescent: bool = False
    predicate_evaluations: int = 0
    predicate_cache_hits: int = 0
    churn_rounds: List[int] = field(default_factory=list)
    churn_applied: int = 0
    churn_skipped: int = 0
    dropped_messages: int = 0
    #: Rounds after which a *scheduled* adversary event fired (crash,
    #: recovery, Byzantine corruption); continuous channel noise is not a
    #: scheduled event and shows up only in the delivery counters below.
    adversary_rounds: List[int] = field(default_factory=list)
    adversary_events: int = 0
    adversary_dropped: int = 0
    adversary_duplicated: int = 0
    adversary_reordered: int = 0
    node_crashes: int = 0
    node_recoveries: int = 0
    byzantine_corruptions: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for tabular reporting."""
        return {
            "converged": self.converged,
            "rounds": self.rounds,
            "convergence_round": self.convergence_round,
            "steps": self.steps,
            "deliveries": self.deliveries,
            "messages_sent": self.messages_sent,
            "max_message_bits": self.max_message_bits,
            "max_state_bits": self.max_state_bits,
            "closure_violations": len(self.closure_violations),
        }


class Simulator:
    """Round-driven simulation of a distributed protocol.

    Parameters
    ----------
    network:
        The network to simulate.
    scheduler:
        Asynchrony model; defaults to the deterministic synchronous scheduler.
    legitimacy:
        Predicate on the network defining the legitimate configurations.
        When omitted the simulator runs for exactly ``max_rounds`` rounds.
    stability_window:
        Number of consecutive legitimate rounds required before convergence
        is declared (legitimate configurations must also be *stable* because
        in-flight messages may still destroy them).
    invariants:
        Optional ``(name, check)`` pairs verified after every round.
    fault_plan:
        Optional schedule of mid-run transient faults.
    churn_plan:
        Optional schedule of live topology changes (node/edge churn),
        applied through the network's mutation APIs after the round they
        are due.  Composable with ``fault_plan``: when both have events due
        after the same round, churn fires first, then the fault corrupts
        (a fraction of) the *mutated* node set.
    adversary:
        Optional :class:`~repro.sim.adversary.Adversary`.  Its channel
        model is installed network-wide before the first round; its
        scheduled events (crashes, recoveries, Byzantine corruptions) fire
        between churn and the fault plan and reset the stability streak
        exactly like churn does.
    trace:
        Optional trace recorder.
    rng:
        Generator used by the fault plan.
    cache_predicate:
        When ``True`` (default), wrap the legitimacy predicate in a shared
        :class:`~repro.sim.monitors.PredicateCache` so the convergence and
        closure monitors skip re-evaluation while the observable
        configuration is unchanged.  Disable for predicates that are not
        pure functions of the per-node snapshots (e.g. ones inspecting
        channel contents or external state).
    """

    def __init__(self,
                 network: Network,
                 scheduler: Optional[Scheduler] = None,
                 legitimacy: Optional[Predicate] = None,
                 stability_window: int = 3,
                 invariants: Optional[List[tuple[str, Callable[[Network], bool | str]]]] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 churn_plan: Optional[ChurnPlan] = None,
                 adversary: Optional[Adversary] = None,
                 trace: Optional[TraceRecorder] = None,
                 rng: Optional[np.random.Generator] = None,
                 cache_predicate: bool = True):
        self.network = network
        self.scheduler = scheduler or SynchronousScheduler()
        self.legitimacy = legitimacy
        self.predicate_cache: Optional[PredicateCache] = None
        monitored: Optional[Predicate] = legitimacy
        if legitimacy is not None and cache_predicate:
            self.predicate_cache = PredicateCache(legitimacy)
            monitored = self.predicate_cache
        self.monitor = (ConvergenceMonitor(monitored, stability_window)
                        if monitored is not None else None)
        self.closure = ClosureMonitor(monitored) if monitored is not None else None
        self.invariant_monitor = (InvariantMonitor(invariants)
                                  if invariants else None)
        self.fault_plan = fault_plan
        self.churn_plan = churn_plan
        self._churn_rounds: List[int] = []
        # Outcome lists accumulate on the plan object; baseline lengths let
        # the report count only this run's events when a plan is reused.
        self._churn_baseline = ((len(churn_plan.applied), len(churn_plan.skipped))
                                if churn_plan is not None else (0, 0))
        self.adversary = adversary
        self._adversary_rounds: List[int] = []
        # Adversary counters accumulate on the model objects; snapshotting
        # them here lets the report count only this run's events when the
        # same adversary instance drives several runs.
        self._adversary_baseline = (dict(adversary.counters())
                                    if adversary is not None else {})
        if adversary is not None:
            adversary.install(network)
        self.trace = trace
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.rounds_executed = 0
        self._started = False

    # -- lifecycle -------------------------------------------------------------

    def _start_processes(self) -> None:
        if self._started:
            return
        for v in self.network.node_ids:
            self.network.processes[v].on_start()
            self.network.flush_outbox(v)
        self.network.note_state_write()
        self._started = True

    def step_round(self) -> RoundStats:
        """Execute exactly one round and run the monitors."""
        self._start_processes()
        if self.trace is not None:
            self.trace.start_round(self.rounds_executed)
        stats = self.scheduler.run_round(self.network, self.trace)
        self.rounds_executed += 1
        round_index = self.rounds_executed
        if self.churn_plan is not None:
            # Churn before faults: a fault due the same round corrupts the
            # already-mutated node set.
            if self.churn_plan.apply_due(self.network, round_index):
                self._churn_rounds.append(round_index)
                if self.monitor is not None:
                    # A topology event may leave legitimacy intact (removing
                    # a non-tree edge, say); reset the stability streak
                    # anyway so the reported convergence round can never
                    # predate the last applied event.
                    self.monitor.reset_stability()
        if self.adversary is not None:
            # After churn (a crash/corruption targets the surviving node
            # set), before the fault plan (a fault due the same round hits
            # the post-adversary configuration).
            if self.adversary.apply_due(self.network, round_index):
                self._adversary_rounds.append(round_index)
                if self.monitor is not None:
                    self.monitor.reset_stability()
        if self.fault_plan is not None:
            self.fault_plan.apply_due(self.network, self.rng, round_index)
        if self.invariant_monitor is not None:
            self.invariant_monitor.observe(self.network, round_index)
        if self.monitor is not None:
            was_converged = self.monitor.converged
            self.monitor.observe(self.network, round_index)
            if self.monitor.converged and not was_converged and self.closure is not None:
                self.closure.arm()
            if self.closure is not None:
                self.closure.observe(self.network, round_index)
        return stats

    def run(self, max_rounds: int = 10_000, extra_rounds_after_convergence: int = 0,
            raise_on_budget: bool = False) -> SimulationReport:
        """Run rounds until convergence (plus optional closure rounds) or budget.

        Parameters
        ----------
        max_rounds:
            Hard budget on the number of rounds.
        extra_rounds_after_convergence:
            Keep simulating this many extra rounds after convergence to
            witness the closure property.
        raise_on_budget:
            When ``True`` raise :class:`ConvergenceError` if the budget is
            exhausted before convergence (only meaningful with a legitimacy
            predicate); otherwise return a report with ``converged=False``.
        """
        if max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        all_stats: List[RoundStats] = []
        extra_left = extra_rounds_after_convergence
        converged_at: Optional[int] = None
        quiescent = False
        while self.rounds_executed < max_rounds:
            self._start_processes()
            if not self.network.has_enabled_events():
                # Quiescence: no enabled timeout and no deliverable message.
                # No future round can change the configuration, so the
                # remaining round budget is dead work.
                quiescent = True
                break
            stats = self.step_round()
            all_stats.append(stats)
            if self.monitor is None:
                continue
            if self.monitor.converged:
                if converged_at is None:
                    converged_at = self.monitor.converged_round
                # Keep simulating while a fault or a topology change is
                # still scheduled in the future: a convergence declared now
                # would predate the disruption it must recover from.
                future_disruptions = (
                    (self.fault_plan is not None
                     and self.fault_plan.last_round >= self.rounds_executed)
                    or (self.churn_plan is not None
                        and self.churn_plan.last_round >= self.rounds_executed)
                    or (self.adversary is not None
                        and self.adversary.last_round >= self.rounds_executed))
                if future_disruptions:
                    converged_at = None
                    self.monitor.reset_stability()
                    continue
                if extra_left > 0:
                    extra_left -= 1
                    continue
                break
        converged = self.monitor.converged if self.monitor is not None else True
        if not converged and raise_on_budget:
            raise ConvergenceError(
                f"protocol did not converge within {max_rounds} rounds",
                rounds=self.rounds_executed)
        first_legit = (self.monitor.first_hold_round
                       if self.monitor is not None and self.monitor.converged else None)
        return SimulationReport(
            converged=converged,
            rounds=self.rounds_executed,
            convergence_round=first_legit,
            steps=sum(s.steps for s in all_stats),
            deliveries=sum(s.deliveries for s in all_stats),
            messages_sent=sum(s.messages_sent for s in all_stats),
            max_message_bits=self.network.max_channel_message_bits(),
            max_state_bits=self.network.max_state_bits(),
            closure_violations=list(self.closure.violations) if self.closure else [],
            fault_rounds=sorted({e.round_index for e in self.fault_plan.events})
            if self.fault_plan else [],
            round_stats=all_stats,
            quiescent=quiescent,
            predicate_evaluations=(self.predicate_cache.evaluations
                                   if self.predicate_cache else 0),
            predicate_cache_hits=(self.predicate_cache.hits
                                  if self.predicate_cache else 0),
            churn_rounds=list(self._churn_rounds),
            churn_applied=(len(self.churn_plan.applied) - self._churn_baseline[0]
                           if self.churn_plan else 0),
            churn_skipped=(len(self.churn_plan.skipped) - self._churn_baseline[1]
                           if self.churn_plan else 0),
            dropped_messages=self.network.dropped_messages,
            **self._adversary_report_fields(),
        )

    def _adversary_report_fields(self) -> dict:
        """Per-run adversary accounting (deltas against the install baseline)."""
        if self.adversary is None:
            return {}
        base = self._adversary_baseline
        counts = self.adversary.counters()
        delta = {k: counts[k] - base.get(k, 0) for k in counts}
        return {
            "adversary_rounds": list(self._adversary_rounds),
            "adversary_events": len(self._adversary_rounds),
            "adversary_dropped": delta.get("dropped", 0),
            "adversary_duplicated": delta.get("duplicated", 0),
            "adversary_reordered": delta.get("reordered", 0),
            "node_crashes": delta.get("crashes", 0),
            "node_recoveries": delta.get("recoveries", 0),
            "byzantine_corruptions": delta.get("byzantine_corruptions", 0),
        }
