"""Array-backed vectorized kernel backend for large-``n`` runs.

The object-per-node simulator pays an interpreter-level constant for every
message delivery and every rule evaluation; at n >= 256 that constant is the
throughput ceiling (BENCH_scaling.json).  This module provides the
``backend="array"`` alternative behind the *same*
:class:`~repro.sim.network.Network` / :class:`~repro.sim.scheduler.Scheduler`
contracts:

* **Topology** lives in a CSR adjacency structure (built through
  :mod:`scipy.sparse` when available): ``indptr``/``nbr_idx``/``nbr_ids``
  arrays over the sorted node ids, plus a flat edge -> view-row index shared
  by every vectorized pass.
* **Node state** is a set of flat numpy columns -- one per slotted
  :class:`~repro.core.state.MDSTState` field (``root``, ``parent``,
  ``distance``, ``sub_max``, ``dmax``, ``color``) -- and the cached
  neighbour views are columns over the flat edge positions (one per
  :class:`~repro.core.state.NeighborState` field).
* **Correctness is by construction, not by re-implementation**: every node
  is a real :class:`~repro.core.node_algorithm.MDSTNode` whose state object
  merely *reads and writes the shared columns*
  (:class:`ArrayBackedState` / :class:`NeighborProxy`).  The control layers
  (Search/Remove/Back/Deblock/Reverse/UpdateDist), fault injection
  (``corrupt``), the initial-configuration installers, the monitors and
  every non-synchronous scheduler therefore run the *identical* algorithm
  code against array storage -- the vectorized fast path below is an
  optimization of the synchronous round only, and any configuration it does
  not cover falls back to the shared scalar code path.
* **The synchronous round is batched** (:meth:`ArrayNetwork.run_sync_round`):
  the round-start ``MInfo`` backlog is applied as vectorized per-slot
  scatter writes followed by one vectorized rule evaluation per slot
  (sequential per-message semantics are preserved: slot ``j`` applies the
  ``j``-th delivery of every destination, exactly the per-destination order
  of :meth:`~repro.sim.scheduler.Scheduler._deliver_round_start_backlog`),
  the spanning-tree rules R1/R2/R3 and the PIF degree layer are evaluated
  with CSR segment reductions (``np.ufunc.reduceat``), and the
  legitimacy-relevant predicate columns (``locally_stabilized``) come out of
  the same pass.  Control messages stay scalar -- they are rare by design
  (the gossip is the O(m)-per-round traffic).

Byte identity with the object backend is part of the contract and is
enforced by tests: identical final snapshots, rounds, per-node step counts,
message/delivery/type counters and report rows for every supported
configuration (see ``tests/test_array_kernel.py``).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..core.messages import Deblock, MInfo, Search, UpdateDist
from ..core.node_algorithm import MDSTNode
from ..exceptions import ProtocolError, SimulationError
from ..graphs.edge_array import EdgeArrayGraph
from ..types import NodeId
from .channel import Channel
from .messages import GarbageMessage
from .network import EnabledEvents, Network
from .scheduler import RoundStats, SynchronousScheduler
from .trace import TraceRecorder

__all__ = [
    "ArrayChannel",
    "ArrayKernel",
    "ArrayBackedState",
    "ArrayMDSTNode",
    "ArrayNetwork",
    "ArraySyncScheduler",
    "build_array_mdst_network",
]

_I64 = np.int64
_INT_MAX = np.iinfo(np.int64).max


def _minfo_bits_for(network_size: int) -> int:
    """Wire size of one gossip ``MInfo`` (constant per run)."""
    return MInfo(root=0, parent=0, distance=0, degree=0, sub_max=0,
                 dmax=0, color=False).size_bits(network_size)


def _build_csr(graph: nx.Graph, node_ids: List[NodeId]):
    """CSR adjacency (indptr, neighbour indices, neighbour ids) over sorted ids.

    Goes through :mod:`scipy.sparse` when available (the exemplar layout --
    APGL's sparse-matrix graphs); otherwise assembles the same arrays
    directly.  Neighbour lists come out sorted by id either way, matching
    the insertion order of the object backend's per-node view dicts.
    """
    n = len(node_ids)
    index = {v: i for i, v in enumerate(node_ids)}
    try:  # pragma: no cover - exercised when scipy is installed (CI lane)
        from scipy.sparse import csr_matrix

        rows, cols = [], []
        for u, v in graph.edges:
            ui, vi = index[u], index[v]
            rows.append(ui)
            cols.append(vi)
            rows.append(vi)
            cols.append(ui)
        data = np.ones(len(rows), dtype=np.int8)
        adj = csr_matrix((data, (rows, cols)), shape=(n, n))
        adj.sort_indices()
        indptr = adj.indptr.astype(_I64)
        nbr_idx = adj.indices.astype(_I64)
    except ImportError:
        counts = np.zeros(n + 1, dtype=_I64)
        for u, v in graph.edges:
            counts[index[u] + 1] += 1
            counts[index[v] + 1] += 1
        indptr = np.cumsum(counts).astype(_I64)
        nbr_idx = np.zeros(int(indptr[-1]), dtype=_I64)
        cursor = indptr[:-1].copy()
        for u, v in graph.edges:
            ui, vi = index[u], index[v]
            nbr_idx[cursor[ui]] = vi
            cursor[ui] += 1
            nbr_idx[cursor[vi]] = ui
            cursor[vi] += 1
        for i in range(n):
            seg = nbr_idx[indptr[i]:indptr[i + 1]]
            seg.sort()
    ids = np.asarray(node_ids, dtype=_I64)
    nbr_ids = ids[nbr_idx]
    return index, indptr, nbr_idx, nbr_ids


class ArrayKernel:
    """The shared column store: CSR topology plus flat state columns.

    One instance backs every :class:`ArrayBackedState` of a network; the
    vectorized round operates on these columns directly.
    """

    def __init__(self, graph: "nx.Graph | EdgeArrayGraph", n_upper: int):
        if isinstance(graph, EdgeArrayGraph):
            # CSR-direct: the container's cached CSR *is* the kernel
            # topology.  Node ids are the contiguous 0..n-1, so index,
            # neighbour indices and neighbour ids all coincide and no
            # per-edge Python loop runs.
            self.node_ids = list(range(graph.n))
            self.n = graph.n
            self.n_upper = int(n_upper)
            indptr, nbr = graph.csr()
            self.index = {v: v for v in self.node_ids}
            self.indptr = indptr
            self.nbr_idx = nbr
            self.nbr_ids = nbr
        else:
            self.node_ids = sorted(graph.nodes)
            self.n = len(self.node_ids)
            self.n_upper = int(n_upper)
            self.index, self.indptr, self.nbr_idx, self.nbr_ids = _build_csr(
                graph, self.node_ids)
        self.ids = np.asarray(self.node_ids, dtype=_I64)
        total = int(self.indptr[-1])
        self.total = total
        #: id of the owning node for every flat view row.
        self.row_owner = np.repeat(
            self.ids, np.diff(self.indptr).astype(_I64))
        # -- own-state columns (MDSTState slots) --------------------------------
        self.root = self.ids.copy()
        self.parent = self.ids.copy()
        self.distance = np.zeros(self.n, dtype=_I64)
        self.sub_max = np.zeros(self.n, dtype=_I64)
        self.dmax = np.zeros(self.n, dtype=_I64)
        self.color = np.ones(self.n, dtype=bool)
        # -- view columns (NeighborState slots), one row per directed edge ------
        self.v_root = np.zeros(total, dtype=_I64)
        self.v_parent = np.zeros(total, dtype=_I64)
        self.v_distance = np.zeros(total, dtype=_I64)
        self.v_degree = np.zeros(total, dtype=_I64)
        self.v_sub_max = np.zeros(total, dtype=_I64)
        self.v_dmax = np.zeros(total, dtype=_I64)
        self.v_color = np.ones(total, dtype=bool)
        self.v_heard = np.zeros(total, dtype=bool)
        # -- scratch written by the vectorized passes ---------------------------
        self.degree = np.zeros(self.n, dtype=_I64)
        self.locally_stab = np.zeros(self.n, dtype=bool)
        # -- gossip snapshot columns --------------------------------------------
        # The state each node last gossiped (copied at the end of the
        # vectorized timeout phase).  A gossip *token* on a channel stands
        # for "the MInfo ``src`` sent last round" and resolves against these
        # columns, so the synchronous fast path never builds message objects
        # for the O(m)-per-round gossip traffic.
        self.g_root = np.zeros(self.n, dtype=_I64)
        self.g_parent = np.zeros(self.n, dtype=_I64)
        self.g_distance = np.zeros(self.n, dtype=_I64)
        self.g_degree = np.zeros(self.n, dtype=_I64)
        self.g_sub_max = np.zeros(self.n, dtype=_I64)
        self.g_dmax = np.zeros(self.n, dtype=_I64)
        self.g_color = np.zeros(self.n, dtype=bool)
        # Previous-generation gossip snapshot.  Asynchronous schedules can
        # mint a node's next token while the previous one is still in flight
        # on some channels; shifting the snapshot here (instead of
        # materializing message objects) keeps those late deliveries
        # columnar.  At most two generations are ever live per source: a
        # round delivers every round-start token before the round ends, so a
        # token older than one generation is physically materialized by the
        # mint that would otherwise overwrite this buffer.
        self.go_root = np.zeros(self.n, dtype=_I64)
        self.go_parent = np.zeros(self.n, dtype=_I64)
        self.go_distance = np.zeros(self.n, dtype=_I64)
        self.go_degree = np.zeros(self.n, dtype=_I64)
        self.go_sub_max = np.zeros(self.n, dtype=_I64)
        self.go_dmax = np.zeros(self.n, dtype=_I64)
        self.go_color = np.zeros(self.n, dtype=bool)
        #: node *index* (not id) of the neighbour at each flat view row.
        #: ``nbr_ids = ids[nbr_idx]`` with ``ids`` sorted and unique, so the
        #: index of each neighbour id is just ``nbr_idx`` itself (both
        #: arrays are frozen topology; sharing is safe).
        self.nbr_node_idx = self.nbr_idx
        # -- flat position lookup -----------------------------------------------
        # (owner index, neighbour id) -> flat row, as a sorted key array so a
        # batch of parent pointers resolves with one searchsorted.  Keys are
        # offset to stay non-negative for every value a (possibly corrupted)
        # pointer can take.
        lo = int(min(self.ids.min(initial=0), -5)) - 1
        hi = int(max(self.ids.max(initial=0), self.n_upper + 5)) + 1
        self._key_off = -lo
        self._key_mod = hi - lo + 1
        owner_idx = np.repeat(np.arange(self.n, dtype=_I64),
                              np.diff(self.indptr).astype(_I64))
        self.flat_keys = owner_idx * self._key_mod + (self.nbr_ids + self._key_off)
        # Scalar-path position lookup, built lazily (see the ``pos``
        # property): construction never needs it, and the CSR-direct build
        # path must stay free of per-edge Python dict fills.
        self._pos_cache: Optional[Dict[Tuple[NodeId, NodeId], int]] = None
        self._full_flat = np.arange(total, dtype=_I64)
        self._full_starts = self.indptr[:-1].astype(np.intp)
        self._all_idx = np.arange(self.n, dtype=_I64)
        self._row_counts = np.diff(self.indptr).astype(_I64)

    @property
    def pos(self) -> Dict[Tuple[NodeId, NodeId], int]:
        """Scalar-path lookup ``(owner id, neighbour id) -> flat view row``.

        Row order follows the CSR layout (owner-major, neighbour-id minor),
        exactly the order the eager per-edge fill used to produce.  Built on
        first use -- typically when the first channel materializes -- so
        network *construction* stays O(arrays).
        """
        p = self._pos_cache
        if p is None:
            p = dict(zip(zip(self.row_owner.tolist(), self.nbr_ids.tolist()),
                         range(self.total)))
            self._pos_cache = p
        return p

    # -- flat-row geometry -----------------------------------------------------

    def rows_of(self, S: np.ndarray):
        """Flat view rows of the node-index subset ``S`` plus segment starts.

        Returns ``(flat, starts, counts)`` where ``flat`` concatenates each
        node's CSR segment (neighbour-id order) and ``starts`` indexes the
        segment boundaries inside ``flat`` -- the shape every
        ``ufunc.reduceat`` segment reduction below consumes.
        """
        if len(S) == self.n:
            return self._full_flat, self._full_starts, self._row_counts
        counts = (self.indptr[S + 1] - self.indptr[S]).astype(_I64)
        total = int(counts.sum())
        starts = np.zeros(len(S), dtype=_I64)
        np.cumsum(counts[:-1], out=starts[1:])
        flat = (np.repeat(self.indptr[S] - starts, counts)
                + np.arange(total, dtype=_I64))
        return flat, starts.astype(np.intp), counts

    def parent_rows(self, S: np.ndarray, parents: np.ndarray):
        """Flat view row of each node's parent pointer (or -1 when absent).

        ``parents`` may hold arbitrary (corrupted) integers; anything that is
        not a current neighbour id of the owning node resolves to -1, the
        vector analogue of ``state.view.get(parent) is None``.
        """
        shifted = parents + self._key_off
        in_range = (shifted >= 0) & (shifted < self._key_mod)
        qkeys = S * self._key_mod + np.where(in_range, shifted, 0)
        pos = np.searchsorted(self.flat_keys, qkeys)
        pos_c = np.minimum(pos, self.total - 1)
        valid = in_range & (pos < self.total) & (self.flat_keys[pos_c] == qkeys)
        return np.where(valid, pos_c, -1), valid

    # -- vectorized rule evaluation --------------------------------------------

    def refresh(self, S: np.ndarray, predicates: bool = False) -> None:
        """Vectorized ``MDSTNode._refresh`` over the node-index subset ``S``.

        Applies the spanning-tree rules R2 -> R1 -> R3 and the fused degree
        layer exactly as :meth:`~repro.core.node_algorithm.MDSTNode.
        _apply_tree_rules` / ``_update_degree_layer`` do per node, writing
        the state columns in place.  With ``predicates=True`` the pass also
        refreshes :attr:`locally_stab` (the reduction-layer gate) for ``S``.

        The rule order licenses two simplifications the scalar code pays for
        per node: after R2 no node is a new-root candidate, and every node
        R1 or R2 touched has a coherent distance -- so R3 applies exactly to
        the untouched nodes whose *original* distance was incoherent.

        When ``S`` covers a large fraction of the network the pass computes
        over the *full* columns in place (no gather of the subset's view
        rows -- the per-row results are independent, so computing the extra
        rows is cheaper than building the subset geometry) and writes back
        only the rows of ``S``.
        """
        if self.total == 0 or len(S) == 0:
            return
        n_upper = self.n_upper
        rep = np.repeat  # segment broadcast helper
        dense = 4 * len(S) >= self.n
        if dense:
            # Full-column geometry: the view arrays are read uncopied.
            idx = self._all_idx
            starts = self._full_starts
            counts = self._row_counts
            me = self.ids
            r = self.root.copy()
            p = self.parent.copy()
            d = self.distance.copy()
            vr = self.v_root
            vp = self.v_parent
            vd = self.v_distance
            vh = self.v_heard
            nbr = self.nbr_ids
            vsub = self.v_sub_max
            vdm = self.v_dmax
            vcol = self.v_color
        else:
            idx = S
            flat, starts, counts = self.rows_of(S)
            me = self.ids[S]
            r = self.root[S].copy()
            p = self.parent[S].copy()
            d = self.distance[S].copy()
            vr = self.v_root[flat]
            vp = self.v_parent[flat]
            vd = self.v_distance[flat]
            vh = self.v_heard[flat]
            nbr = self.nbr_ids[flat]
            vsub = self.v_sub_max[flat]
            vdm = self.v_dmax[flat]
            vcol = self.v_color[flat]

        # -- coherence of the original state (feeds R2 and R3) ----------------
        prow, pvalid = self.parent_rows(idx, p)
        prow_c = np.maximum(prow, 0)
        pvh = np.where(pvalid, self.v_heard[prow_c], False)
        pvr = np.where(pvalid, self.v_root[prow_c], 0)
        pvd = np.where(pvalid, self.v_distance[prow_c], 0)
        self_parent = p == me
        cp = np.where(r > me, False,
                      np.where(self_parent, (r == me) & (d == 0),
                               pvalid & (~pvh | (pvr == r))))
        cd = np.where(d >= n_upper, False,
                      np.where(self_parent, d == 0,
                               pvalid & (~pvh | (d == pvd + 1))))
        ncr = ~cp | (d >= n_upper)

        # -- R2: reset to a fresh root -----------------------------------------
        r = np.where(ncr, me, r)
        p = np.where(ncr, me, p)
        d = np.where(ncr, 0, d)

        # -- R1: adopt the best smaller-root neighbour -------------------------
        cand = vh & (vr < rep(r, counts)) & (vd + 1 < n_upper)
        br = np.minimum.reduceat(np.where(cand, vr, _INT_MAX), starts)
        fired1 = br < _INT_MAX
        best = np.minimum.reduceat(
            np.where(cand & (vr == rep(br, counts)), nbr, _INT_MAX), starts)
        best_d = np.minimum.reduceat(
            np.where(cand & (vr == rep(br, counts)) & (nbr == rep(best, counts)),
                     vd, _INT_MAX), starts)
        r = np.where(fired1, br, r)
        p = np.where(fired1, best, p)
        d = np.where(fired1, best_d + 1, d)

        # -- R3: gentle distance repair on the untouched incoherent nodes ------
        fire3 = ~ncr & ~fired1 & ~cd
        if fire3.any():
            d = np.where(fire3, pvd + 1, d)
            reset = fire3 & (d >= n_upper)
            r = np.where(reset, me, r)
            p = np.where(reset, me, p)
            d = np.where(reset, 0, d)

        # -- fused degree layer (degree, sub_max, dmax, color) -----------------
        child = vh & (vp == rep(me, counts))
        pmask = (~child) & (rep(p, counts) == nbr)
        degree = np.add.reduceat((child | pmask).astype(_I64), starts)
        child_max = np.maximum.reduceat(
            np.where(child, vsub, np.int64(-1)), starts)
        sub_max = np.maximum(degree, child_max)
        prow, pvalid = self.parent_rows(idx, p)
        prow_c = np.maximum(prow, 0)
        pvh = np.where(pvalid, self.v_heard[prow_c], False)
        pvdm = np.where(pvalid, self.v_dmax[prow_c], 0)
        dmax = np.where(p == me, sub_max, np.where(pvh, pvdm, sub_max))
        color = ~np.logical_or.reduceat(
            vh & (vdm != rep(dmax, counts)), starts)

        if predicates:
            # locally_stabilized = tree_stabilized & color & degree_stabilized
            # & color_stabilized.  Post-rules every node has a coherent parent
            # and distance, so tree_stabilized reduces to "no better parent";
            # color equals degree_stabilized by construction (it was just set
            # to it and nothing changed since).
            bp = np.logical_or.reduceat(vh & (vr < rep(r, counts)), starts)
            cstab = ~np.logical_or.reduceat(
                vh & (vcol != rep(color, counts)), starts)
            stab = ~bp & color & cstab

        if dense and len(S) != self.n:
            self.root[S] = r[S]
            self.parent[S] = p[S]
            self.distance[S] = d[S]
            self.sub_max[S] = sub_max[S]
            self.dmax[S] = dmax[S]
            self.color[S] = color[S]
            self.degree[S] = degree[S]
            if predicates:
                self.locally_stab[S] = stab[S]
        elif dense:
            self.root = r
            self.parent = p
            self.distance = d
            self.sub_max = sub_max
            self.dmax = dmax
            self.color = color
            self.degree = degree
            if predicates:
                self.locally_stab = stab
        else:
            self.root[S] = r
            self.parent[S] = p
            self.distance[S] = d
            self.sub_max[S] = sub_max
            self.dmax[S] = dmax
            self.color[S] = color
            self.degree[S] = degree
            if predicates:
                self.locally_stab[S] = stab

    def compute_degrees(self, S: np.ndarray) -> np.ndarray:
        """Tree degree of every node in ``S`` (the derived ``deg_v``)."""
        if len(S) == 0:
            return np.zeros(0, dtype=_I64)
        if len(S) == self.n:
            # Dense path: no gather, the full columns are read in place.
            child = self.v_heard & (self.v_parent == self.row_owner)
            pmask = (~child) & (np.repeat(self.parent, self._row_counts)
                                == self.nbr_ids)
            return np.add.reduceat((child | pmask).astype(_I64),
                                   self._full_starts)
        flat, starts, counts = self.rows_of(S)
        child = self.v_heard[flat] & (self.v_parent[flat]
                                      == np.repeat(self.ids[S], counts))
        pmask = (~child) & (np.repeat(self.parent[S], counts)
                            == self.nbr_ids[flat])
        return np.add.reduceat((child | pmask).astype(_I64), starts)

    def stabilized_mask(self, S: np.ndarray) -> np.ndarray:
        """Vectorized ``locally_stabilized`` over the node-index subset ``S``.

        The batched twin of :meth:`ArrayMDSTNode.locally_stabilized`:
        evaluates the predicate's five clauses for every node of ``S`` in
        one pass, without writing any column.  Used to gate whole batches
        of ``Search``/``Deblock`` deliveries at once (the handlers'
        early-return) instead of calling the scalar predicate per message.
        """
        if len(S) == 0:
            return np.zeros(0, dtype=bool)
        me = self.ids[S]
        r = self.root[S]
        p = self.parent[S]
        d = self.distance[S]
        ok = (d < self.n_upper) & (r <= me)
        self_parent = p == me
        prow, pvalid = self.parent_rows(S, p)
        prow_c = np.maximum(prow, 0)
        pvh = pvalid & self.v_heard[prow_c]
        ok &= np.where(
            self_parent,
            (r == me) & (d == 0),
            pvalid & (~pvh | ((self.v_root[prow_c] == r)
                              & (d == self.v_distance[prow_c] + 1))))
        ok &= self.color[S]
        if self.total:
            flat, starts, counts = self.rows_of(S)
            vh = self.v_heard[flat]
            bad = vh & ((self.v_root[flat] < np.repeat(r, counts))
                        | (self.v_dmax[flat] != np.repeat(self.dmax[S], counts))
                        | (~self.v_color[flat]))
            ok &= ~np.logical_or.reduceat(bad, starts)
        return ok


class NeighborProxy:
    """A :class:`~repro.core.state.NeighborState` view over one flat row."""

    __slots__ = ("_k", "_f")

    def __init__(self, kernel: ArrayKernel, flat: int):
        self._k = kernel
        self._f = flat

    # Getters convert to Python scalars so values flowing into messages,
    # snapshots and JSON rows are indistinguishable from the object backend.
    @property
    def root(self) -> int:
        return int(self._k.v_root[self._f])

    @root.setter
    def root(self, value) -> None:
        self._k.v_root[self._f] = value

    @property
    def parent(self) -> int:
        return int(self._k.v_parent[self._f])

    @parent.setter
    def parent(self, value) -> None:
        self._k.v_parent[self._f] = value

    @property
    def distance(self) -> int:
        return int(self._k.v_distance[self._f])

    @distance.setter
    def distance(self, value) -> None:
        self._k.v_distance[self._f] = value

    @property
    def degree(self) -> int:
        return int(self._k.v_degree[self._f])

    @degree.setter
    def degree(self, value) -> None:
        self._k.v_degree[self._f] = value

    @property
    def sub_max(self) -> int:
        return int(self._k.v_sub_max[self._f])

    @sub_max.setter
    def sub_max(self, value) -> None:
        self._k.v_sub_max[self._f] = value

    @property
    def dmax(self) -> int:
        return int(self._k.v_dmax[self._f])

    @dmax.setter
    def dmax(self, value) -> None:
        self._k.v_dmax[self._f] = value

    @property
    def color(self) -> bool:
        return bool(self._k.v_color[self._f])

    @color.setter
    def color(self, value) -> None:
        self._k.v_color[self._f] = value

    @property
    def heard(self) -> bool:
        return bool(self._k.v_heard[self._f])

    @heard.setter
    def heard(self, value) -> None:
        self._k.v_heard[self._f] = value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NeighborProxy(root={self.root}, parent={self.parent}, "
                f"distance={self.distance}, degree={self.degree}, "
                f"sub_max={self.sub_max}, dmax={self.dmax}, "
                f"color={self.color}, heard={self.heard})")


class ArrayViewMap:
    """Dict-like per-node view (``{neighbour id -> NeighborProxy}``).

    Iteration order is neighbour-id order, exactly the insertion order of
    the object backend's ``{u: NeighborState() for u in sorted(...)}``.
    """

    __slots__ = ("_k", "_lo", "_nbrs", "_proxies", "_local")

    def __init__(self, kernel: ArrayKernel, node_index: int):
        self._k = kernel
        self._lo = int(kernel.indptr[node_index])
        hi = int(kernel.indptr[node_index + 1])
        self._nbrs = tuple(int(u) for u in kernel.nbr_ids[self._lo:hi])
        self._proxies = tuple(NeighborProxy(kernel, self._lo + i)
                              for i in range(hi - self._lo))
        self._local = {u: i for i, u in enumerate(self._nbrs)}

    def __getitem__(self, u: NodeId) -> NeighborProxy:
        return self._proxies[self._local[u]]

    def get(self, u: NodeId, default=None):
        i = self._local.get(u)
        return self._proxies[i] if i is not None else default

    def __contains__(self, u: NodeId) -> bool:
        return u in self._local

    def __iter__(self):
        return iter(self._nbrs)

    def __len__(self) -> int:
        return len(self._nbrs)

    def keys(self):
        return self._nbrs

    def values(self):
        return self._proxies

    def items(self):
        return list(zip(self._nbrs, self._proxies))


class ArrayBackedState:
    """Drop-in :class:`~repro.core.state.MDSTState` over the shared columns.

    Implements the full state API -- own-variable properties, the view
    mapping, the derived tree queries, ``corrupt``/``state_bits``/
    ``snapshot`` -- so the unmodified :class:`~repro.core.node_algorithm.
    MDSTNode` logic runs against array storage.  The derived queries use
    numpy over the node's CSR slice, which also speeds up the scalar
    fallback paths (searches, removals) at high degree.
    """

    __slots__ = ("_k", "_i", "_lo", "_hi", "node_id", "neighbors", "n_upper",
                 "view", "_nbr_arr")

    def __init__(self, kernel: ArrayKernel, node_id: NodeId):
        self._k = kernel
        self._i = kernel.index[node_id]
        self._lo = int(kernel.indptr[self._i])
        self._hi = int(kernel.indptr[self._i + 1])
        self.node_id = node_id
        self.n_upper = kernel.n_upper
        self.view = ArrayViewMap(kernel, self._i)
        self.neighbors = self.view.keys()
        self._nbr_arr = kernel.nbr_ids[self._lo:self._hi]

    # -- own variables ---------------------------------------------------------

    @property
    def root(self) -> int:
        return int(self._k.root[self._i])

    @root.setter
    def root(self, value) -> None:
        self._k.root[self._i] = value

    @property
    def parent(self) -> int:
        return int(self._k.parent[self._i])

    @parent.setter
    def parent(self, value) -> None:
        self._k.parent[self._i] = value

    @property
    def distance(self) -> int:
        return int(self._k.distance[self._i])

    @distance.setter
    def distance(self, value) -> None:
        self._k.distance[self._i] = value

    @property
    def sub_max(self) -> int:
        return int(self._k.sub_max[self._i])

    @sub_max.setter
    def sub_max(self, value) -> None:
        self._k.sub_max[self._i] = value

    @property
    def dmax(self) -> int:
        return int(self._k.dmax[self._i])

    @dmax.setter
    def dmax(self, value) -> None:
        self._k.dmax[self._i] = value

    @property
    def color(self) -> bool:
        return bool(self._k.color[self._i])

    @color.setter
    def color(self, value) -> None:
        self._k.color[self._i] = value

    # -- derived quantities (vectorized over the CSR slice) --------------------

    def _tree_mask(self) -> np.ndarray:
        k = self._k
        lo, hi = self._lo, self._hi
        return ((k.parent[self._i] == self._nbr_arr)
                | (k.v_heard[lo:hi]
                   & (k.v_parent[lo:hi] == self.node_id)))

    def is_tree_edge(self, u: NodeId) -> bool:
        f = self.view._local.get(u)
        if f is None:
            return False
        if int(self._k.parent[self._i]) == u:
            return True
        pos = self._lo + f
        return bool(self._k.v_heard[pos]) and int(self._k.v_parent[pos]) == self.node_id

    def tree_neighbors(self) -> list:
        return [int(u) for u in self._nbr_arr[self._tree_mask()]]

    def children(self) -> list:
        k = self._k
        lo, hi = self._lo, self._hi
        mask = k.v_heard[lo:hi] & (k.v_parent[lo:hi] == self.node_id)
        return [int(u) for u in self._nbr_arr[mask]]

    @property
    def degree(self) -> int:
        return int(self._tree_mask().sum())

    def non_tree_neighbors(self) -> list:
        return [int(u) for u in self._nbr_arr[~self._tree_mask()]]

    # -- dynamic topology (unsupported on the array backend) -------------------

    def neighbor_added(self, neighbors, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def neighbor_removed(self, neighbors, u: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    # -- corruption / accounting (byte-identical to MDSTState) -----------------

    def corrupt(self, rng: np.random.Generator) -> None:
        # Exactly the draw sequence of MDSTState.corrupt, scattered into
        # the columns.
        pool = list(self.neighbors) + [self.node_id,
                                       int(rng.integers(-5, self.n_upper + 5))]
        self.root = int(rng.choice(pool))
        self.parent = int(rng.choice(list(self.neighbors) + [self.node_id]))
        self.distance = int(rng.integers(0, max(2, self.n_upper)))
        self.sub_max = int(rng.integers(0, max(2, self.n_upper)))
        self.dmax = int(rng.integers(0, max(2, self.n_upper)))
        self.color = bool(rng.integers(0, 2))
        for view in self.view.values():
            view.root = int(rng.choice(pool))
            view.parent = int(rng.choice(pool))
            view.distance = int(rng.integers(0, max(2, self.n_upper)))
            view.degree = int(rng.integers(0, max(2, self.n_upper)))
            view.sub_max = int(rng.integers(0, max(2, self.n_upper)))
            view.dmax = int(rng.integers(0, max(2, self.n_upper)))
            view.color = bool(rng.integers(0, 2))
            view.heard = bool(rng.integers(0, 2))

    def state_bits(self, network_size: int) -> int:
        import math
        idbits = max(1, math.ceil(math.log2(max(network_size, 2)))) + 1
        own = 5 * idbits + 1
        per_neighbor = 6 * idbits + 2
        return own + per_neighbor * len(self.neighbors)

    def snapshot(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "parent": self.parent,
            "distance": self.distance,
            "degree": self.degree,
            "sub_max": self.sub_max,
            "dmax": self.dmax,
            "color": self.color,
        }


class ArrayMDSTNode(MDSTNode):
    """A real :class:`MDSTNode` whose state lives in the shared columns.

    Every handler, predicate and corruption hook is inherited unchanged;
    only the storage differs.  This is what makes the scalar fallback paths
    of the array backend correct by construction.
    """

    __slots__ = ("_kernel",)

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 kernel: ArrayKernel, n_upper: int | None = None,
                 search_period: int = 3, deblock_cooldown: int = 30,
                 enable_reduction: bool = True):
        self._kernel = kernel
        super().__init__(node_id, neighbors, n_upper=n_upper,
                         search_period=search_period,
                         deblock_cooldown=deblock_cooldown,
                         enable_reduction=enable_reduction)

    def _make_state(self) -> "ArrayBackedState":
        # Column-backed state from the start -- the base constructor's
        # root/parent/distance writes land on kernel columns that are
        # pre-initialised to those exact values (own id, own id, 0).
        return ArrayBackedState(self._kernel, self.node_id)

    def locally_stabilized(self) -> bool:
        """Vectorized twin of :meth:`MDSTNode.locally_stabilized`.

        The predicate is pure, so evaluating its five clauses over the
        node's CSR slice (instead of per-field proxy reads) returns the
        identical boolean.  It gates every Search delivery, which makes it
        the hottest scalar call of the array backend's sync fast path.
        """
        s = self.s
        k = s._k
        i = s._i
        lo, hi = s._lo, s._hi
        root = k.root[i]
        d = k.distance[i]
        me = self.node_id
        # _new_root_candidate: incoherent parent or distance out of bounds.
        if d >= s.n_upper or root > me:
            return False
        parent = k.parent[i]
        if parent == me:
            if root != me or d != 0:
                return False
        else:
            j = s.view._local.get(int(parent))
            if j is None:
                return False
            f = lo + j
            if k.v_heard[f]:
                # _coherent_parent and _coherent_distance.
                if k.v_root[f] != root or d != k.v_distance[f] + 1:
                    return False
        if not k.color[i]:
            return False
        # _better_parent, _degree_stabilized and _color_stabilized, fused
        # into one pass over the slice (color[i] is True here, so the color
        # clause reduces to a heard neighbour voting False).
        vh = k.v_heard[lo:hi]
        bad = vh & ((k.v_root[lo:hi] < root)
                    | (k.v_dmax[lo:hi] != k.dmax[i])
                    | (~k.v_color[lo:hi]))
        return not bad.any()


#: The slot descriptor behind :attr:`Channel.stats`, used by
#: :class:`ArrayChannel` to reach the raw counters under its lazy property.
_RAW_STATS = Channel.__dict__["stats"]


class ArrayChannel(Channel):
    """A channel whose gossip traffic is *virtual*.

    The vectorized rounds never touch channel queues for gossip: one
    counter per source records how many gossip tokens it minted
    (``ArrayNetwork._vg_sent_src``) and one counter per directed edge
    (``ArrayNetwork._vg_del_row``) how many this channel consumed.  The
    difference is the channel's in-flight token count, at most two -- the
    current generation (the source's ``g_*`` snapshot columns) and the
    previous one (``go_*``).  This class makes that bookkeeping observable
    through the ordinary :class:`Channel` surface: ``stats`` lazily folds
    the counters into the raw :class:`~repro.sim.channel.ChannelStats`,
    and length/iteration/peek include the in-flight tokens.

    The standing FIFO invariant is that every physically queued message
    logically *precedes* every in-flight token: control traffic enqueued
    behind a token first materializes the tokens, a mint appends the
    newest token, and a mint that would overwrite a still-unconsumed
    previous generation materializes that oldest token at the back of the
    physical queue.  Delivery order is therefore always "physical queue
    first, then tokens oldest-first".

    ``max_queue_length`` is best-effort on the fast path (a queue that only
    ever carried virtual gossip reports its token peak); per-channel
    queue-depth peaks are not part of the byte-identity contract (no
    run-result field reads them), while ``sent``/``delivered``/
    ``max_message_bits`` stay exact.
    """

    __slots__ = ("_net", "_src_i", "_row", "_vs_base", "_vd_base")

    def __init__(self, src: NodeId, dst: NodeId, network_size: int,
                 net: "ArrayNetwork", src_i: int, row: int):
        super().__init__(src, dst, network_size=network_size)
        self._net = net
        self._src_i = src_i
        #: Flat view row of this channel at the destination (the per-edge
        #: slot of the consumed counter).
        self._row = row
        self._vs_base = 0
        self._vd_base = 0

    @property
    def stats(self):
        # Deltas are clamped to >= 0 independently: a materialized channel
        # carries a *lookahead* delivered base (the round trip completes as
        # a physical delivery instead), so its delivered base may run ahead
        # of the consumed counter until the physical pop happens.
        st = _RAW_STATS.__get__(self)
        net = self._net
        vs = int(net._vg_sent_src[self._src_i])
        if vs > self._vs_base:
            st.sent += vs - self._vs_base
            self._vs_base = vs
            if st.max_queue_length < 1:
                st.max_queue_length = 1
            bits = net._minfo_bits
            if bits > st.max_message_bits:
                st.max_message_bits = bits
        vd = int(net._vg_del_row[self._row])
        if vd > self._vd_base:
            st.delivered += vd - self._vd_base
            self._vd_base = vd
        return st

    @stats.setter
    def stats(self, value):
        _RAW_STATS.__set__(self, value)

    def _pending(self) -> int:
        """In-flight token count (0, 1 or 2; 1 is always the current
        generation, 2 adds the previous one in front of it)."""
        net = self._net
        return int(net._vg_sent_src[self._src_i]) - int(net._vg_del_row[self._row])

    def _enqueue(self, message, index=None) -> None:
        # Non-gossip traffic goes behind the in-flight tokens; make them
        # physical first so the queue order is the send order.
        if self._pending():
            self._net._materialize_channel(self)
        super()._enqueue(message, index)

    def deliver(self):
        if not self._queue and self._pending():
            self._net._materialize_channel(self)
        return super().deliver()

    def peek(self):
        if self._queue:
            return super().peek()
        p = self._pending()
        if p >= 2:
            return self._net._gossip_minfo_old(self._src_i)
        if p:
            return self._net._gossip_minfo(self._src_i)
        return super().peek()

    def preload(self, messages) -> None:
        if self._pending():
            self._net._materialize_channel(self)
        super().preload(messages)

    def clear(self) -> int:
        if self._pending():
            self._net._materialize_channel(self)
        return super().clear()

    def __len__(self) -> int:
        return len(self._queue) + self._pending()

    def __bool__(self) -> bool:
        return bool(self._queue) or self._pending() > 0

    def __iter__(self):
        yield from self._queue
        p = self._pending()
        if p >= 2:
            yield self._net._gossip_minfo_old(self._src_i)
        if p:
            yield self._net._gossip_minfo(self._src_i)


def mdst_scalar_gate(network: "ArrayNetwork",
                     scalars: List[Tuple[NodeId, NodeId, object]]) -> List[bool]:
    """Which of the popped control messages ``(dst, src, msg)`` are no-ops.

    The MDST handlers drop a large share of Search-storm traffic at the
    door: ``Search``/``Deblock`` return immediately at a destination that is
    not locally stabilized, ``UpdateDist`` is ignored unless it arrives from
    the destination's current parent, garbage never matches a handler, and
    with the reduction layer disabled *every* non-gossip message is ignored.
    Those early-returns read state but never write it, so they can be
    evaluated in batch (one :meth:`ArrayKernel.stabilized_mask` pass per
    slot) and the dropped messages accounted without running a handler.
    Messages that would reach a real handler body are kept scalar.
    """
    k = network.kernel
    nsc = len(scalars)
    if not network._enable_reduction:
        # MDSTNode.on_message returns before dispatch for every non-MInfo
        # message when the reduction layer is off.
        return [True] * nsc
    drop = [False] * nsc
    gated: List[int] = []
    for j, (dst, src, msg) in enumerate(scalars):
        t = type(msg)
        if t is GarbageMessage:
            drop[j] = True
        elif t is Search or t is Deblock:
            gated.append(j)
        elif t is UpdateDist:
            drop[j] = int(k.parent[k.index[dst]]) != src
    if gated:
        S = np.fromiter((k.index[scalars[j][0]] for j in gated), dtype=_I64,
                        count=len(gated))
        # The subset helpers (rows_of in particular) expect sorted unique
        # indices; a slot can gate several messages for one destination and
        # asynchronous plans list destinations in event order.
        uniq, inverse = np.unique(S, return_inverse=True)
        stab = k.stabilized_mask(uniq)[inverse]
        for jj, j in enumerate(gated):
            drop[j] = not bool(stab[jj])
    return drop


def account_dropped_deliveries(network: Network,
                               trace: Optional[TraceRecorder],
                               stats: RoundStats,
                               dropped: List[Tuple[NodeId, NodeId, object]]
                               ) -> None:
    """Batched accounting for deliveries whose handler body was skipped.

    Exactly :meth:`Scheduler._deliver_one` minus the handler call and the
    (empty) outbox flush: the destination still takes an atomic step, the
    kernel still sees it, and the trace still counts the delivery with zero
    emitted messages.  Channel ``deliver()`` accounting happened at pop
    time.  Callers guarantee ``trace.keep_events`` is off (gated paths fall
    back to the scalar scheduler for full event logs).
    """
    count = len(dropped)
    processes = network.processes
    for dst, _src, _msg in dropped:
        processes[dst].steps_taken += 1
    network._dirty.update(dst for dst, _src, _msg in dropped)
    network._version += count
    stats.steps += count
    stats.deliveries += count
    if trace is not None:
        mtc = trace.message_type_counts
        nsz = trace.network_size
        for _dst, _src, msg in dropped:
            name = msg.type_name()
            mtc[name] = mtc.get(name, 0) + 1
            bits = msg.size_bits(nsz)
            if bits > trace.max_message_bits:
                trace.max_message_bits = bits
        trace.total_deliveries += count
        if trace.rounds:
            rec = trace.rounds[-1]
            rec.steps += count
            rec.deliveries += count


class _LazyMap(dict):
    """A fixed-key mapping whose values materialize on first access.

    Backs the CSR-direct build path's ``processes`` / ``channels`` /
    ``adjacency`` maps: the key set is frozen at construction (the array
    topology is immutable), values are built by ``factory(key)`` on first
    ``[]`` and cached in the underlying dict.  Iteration and membership
    consult the frozen key list without materializing anything; ``values``
    / ``items`` (and generic mapping copies, which go through ``keys`` +
    ``__getitem__`` because ``__iter__`` is overridden) materialize
    everything.  The structural mutators raise: the network rejects live
    topology churn before any of them could be reached legitimately.
    """

    __slots__ = ("_keys", "_keyset", "_factory")

    def __init__(self, keys, factory):
        super().__init__()
        self._keys = tuple(keys)
        self._keyset = None  # built on first membership test
        self._factory = factory

    def _valid(self, key) -> bool:
        ks = self._keyset
        if ks is None:
            ks = self._keyset = frozenset(self._keys)
        return key in ks

    def __missing__(self, key):
        if not self._valid(key):
            raise KeyError(key)
        value = self._factory(key)
        dict.__setitem__(self, key, value)
        return value

    def __contains__(self, key):
        return self._valid(key)

    def __len__(self):
        return len(self._keys)

    def __iter__(self):
        return iter(self._keys)

    def keys(self):
        return self._keys

    def values(self):
        return [self[k] for k in self._keys]

    def items(self):
        return [(k, self[k]) for k in self._keys]

    def get(self, key, default=None):
        try:
            return self[key]
        except KeyError:
            return default

    def copy(self):
        return {k: self[k] for k in self._keys}

    def _frozen(self, *args, **kwargs):
        raise SimulationError("the array backend's maps are frozen")

    __setitem__ = __delitem__ = _frozen
    pop = popitem = clear = update = setdefault = _frozen


class ArrayNetwork(Network):
    """A :class:`~repro.sim.network.Network` whose nodes share array state.

    Subclasses the object kernel rather than duck-typing it: channels,
    enabled-event tracking, dirty-set snapshot caches, quiescence and the
    whole monitor/fault stack are inherited and therefore behave (and
    count) identically.  What changes is (a) node state storage and (b) the
    vectorized synchronous round (:meth:`run_sync_round`) that
    :class:`ArraySyncScheduler` drives.  Live topology mutation is rejected:
    the flat layout is frozen at construction.
    """

    def __init__(self, graph: "nx.Graph | EdgeArrayGraph", *, n_upper: int,
                 search_period: int = 3, deblock_cooldown: int = 30,
                 enable_reduction: bool = True):
        # Backing stores for the ``graph`` / ``_channel_order`` properties
        # (the CSR-direct path materializes both lazily).
        self._graph_store: Optional[nx.Graph] = None
        self._channel_order_store: Optional[Dict] = None
        self._edge_arrays: Optional[EdgeArrayGraph] = None
        self.kernel = ArrayKernel(graph, n_upper)
        self._enable_reduction = enable_reduction
        kernel = self.kernel
        #: All MInfo gossip is the same shape, so its bit size is a per-run
        #: constant; computing it once keeps it off the batched hot path.
        self._minfo_bits: int = _minfo_bits_for(kernel.n)
        # -- virtual gossip token state (read by ArrayChannel) ------------------
        #: Gossip tokens each source has minted so far (one per mint on each
        #: of its out-channels).
        self._vg_sent_src = np.zeros(kernel.n, dtype=_I64)
        #: Tokens each directed edge (indexed by its flat view row at the
        #: destination) has consumed -- by a vectorized pop, a scalar
        #: delivery or a materialization.  ``sent[src] - del_row[row]`` is
        #: the channel's in-flight token count; the invariant
        #: ``del_row >= sent - 2`` (tokens older than one generation are
        #: materialized at mint time) keeps two snapshot generations
        #: sufficient.
        self._vg_del_row = np.zeros(kernel.total, dtype=_I64)
        #: Total in-flight (virtual) tokens across all channels.
        self._vg_virtual_total = 0
        #: Steady-state cache for :meth:`enabled_deliveries`: the full
        #: channel list in channel order, one token per channel.
        self._all_deliv_cache = None
        #: Lazy per-row structures for the virtual-gossip machinery.
        self._vg_structs_cache = None

        def factory(node_id: NodeId, neighbors: Sequence[NodeId]) -> ArrayMDSTNode:
            return ArrayMDSTNode(node_id, neighbors, kernel, n_upper=n_upper,
                                 search_period=search_period,
                                 deblock_cooldown=deblock_cooldown,
                                 enable_reduction=enable_reduction)

        if isinstance(graph, EdgeArrayGraph):
            self._init_from_arrays(graph, factory)
        else:
            super().__init__(graph, factory)
        #: Lazily built per-node channel lists for the sync fast path.
        self._sync_structs_cache = None
        #: ``snapshot_key`` cache: ``(version, key)`` over the state columns.
        self._acols_key_cache = None

    def _init_from_arrays(self, eg: EdgeArrayGraph,
                          factory: "ProcessFactory") -> None:
        """CSR-direct construction: :class:`Network.__init__` field for
        field, with the per-object maps replaced by lazy ones.

        No process, state view, channel or nx structure is built here --
        only the frozen key lists.  Processes materialize when the
        simulator starts them, channels when the first round's structures
        are assembled, so *construction* cost is O(arrays) regardless of
        ``n`` and ``m``.
        """
        eg.validate()  # connectivity (cheap union-find; no-op if validated)
        self._edge_arrays = eg
        k = self.kernel
        self.n = k.n
        self.m = eg.number_of_edges()
        self.node_ids = list(k.node_ids)
        indptr, nbr = k.indptr, k.nbr_ids

        def adjacency_of(v: NodeId):
            return tuple(nbr[int(indptr[v]):int(indptr[v + 1])].tolist())

        self.adjacency = _LazyMap(self.node_ids, adjacency_of)
        self._process_factory = factory
        self.processes = _LazyMap(self.node_ids, self._make_process)
        self._version = 0
        self._topology_version = 0
        self._graph_owned = False
        self.dropped_messages = 0
        self._retired_messages_sent = 0
        self._retired_max_message_bits = 0
        self._disabled = set()
        self._channel_model = None
        self._active = set()
        self._pending_total = 0
        # _channel_order materializes from the edge arrays on first access;
        # the sequence counter continues past the 2m construction slots.
        self._channel_order_store = None
        self._channel_seq = 2 * self.m
        self._dirty = set(self.node_ids)
        self._node_snaps = {}
        self._node_views = {}
        self._node_keys = {}
        self._snaps_stale = True
        self._snaps_view = None
        self._snaps_version = -1
        self._key_cache = None
        self._nonempty_outboxes = 0
        # Directed channel keys in creation order -- (u, v) then (v, u) per
        # canonical edge -- assembled with C-level zips, no per-edge loop.
        us, vs = eg.edges_u.tolist(), eg.edges_v.tolist()
        keys = itertools.chain.from_iterable(zip(zip(us, vs), zip(vs, us)))
        self.channels = _LazyMap(keys, self._make_channel)

    def _make_process(self, v: NodeId) -> ArrayMDSTNode:
        """Materialize node ``v``'s process (the lazy-map factory)."""
        proc = self._process_factory(v, self.adjacency[v])
        if proc.node_id != v:
            raise ProtocolError(
                f"process factory returned node id {proc.node_id} for node {v}")
        proc.outbox.watch(self._outbox_changed)
        if len(proc.outbox):
            self._nonempty_outboxes += 1
        return proc

    def _make_channel(self, key) -> "ArrayChannel":
        """Materialize one directed channel (the lazy-map factory).

        Mirrors :meth:`_install_channel` minus the order/registration
        bookkeeping, which the lazy maps carry structurally.  Virtual-gossip
        counters are global (indexed by source and flat row), so a channel
        materializing mid-run observes exactly the token history an eagerly
        built one would have.
        """
        src, dst = key
        channel = ArrayChannel(src, dst, self.n, self,
                               int(self.kernel.index[src]),
                               self.kernel.pos[(dst, src)])
        channel.watch(self._channel_changed)
        if self._channel_model is not None:
            channel.set_model(self._channel_model)
        return channel

    # -- lazy structures of the CSR-direct path --------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The nx view of the topology, materialized on first use.

        The CSR-direct path defers building it (legitimacy predicates and
        fault planners are the consumers, none of which run at
        construction); identity is stable after the first access, which the
        identity-keyed predicate memos rely on.
        """
        g = self._graph_store
        if g is None and self._edge_arrays is not None:
            g = self._edge_arrays.to_networkx()
            self._graph_store = g
        return g

    @graph.setter
    def graph(self, value: nx.Graph) -> None:
        self._graph_store = value

    @property
    def _channel_order(self) -> Dict:
        """Channel-creation order; on the CSR-direct path it is derived
        from the canonical edge arrays (edge ``i`` yields slots ``2i`` and
        ``2i + 1``), exactly the order the eager loop would have minted."""
        d = self._channel_order_store
        if d is None:
            eg = self._edge_arrays
            d = {}
            seq = 0
            for a, b in zip(eg.edges_u.tolist(), eg.edges_v.tolist()):
                d[(a, b)] = seq
                d[(b, a)] = seq + 1
                seq += 2
            self._channel_order_store = d
        return d

    @_channel_order.setter
    def _channel_order(self, value: Dict) -> None:
        self._channel_order_store = value

    def initialize_isolated_columns(self) -> None:
        """Vectorized twin of :func:`repro.core.protocol.initialize_isolated`.

        One assignment per column instead of one Python loop per node; the
        written values are the definition of the isolated configuration, so
        both routes land on identical columns.
        """
        k = self.kernel
        k.root[:] = k.ids
        k.parent[:] = k.ids
        k.distance[:] = 0
        k.sub_max[:] = 0
        k.dmax[:] = 0
        k.color[:] = True
        k.v_heard[:] = False
        self.note_state_write()

    def _install_channel(self, key) -> Channel:
        """Create an :class:`ArrayChannel` (virtual-gossip aware)."""
        src, dst = key
        channel = ArrayChannel(src, dst, self.n, self,
                               int(self.kernel.index[src]),
                               self.kernel.pos[(dst, src)])
        channel.watch(self._channel_changed)
        if self._channel_model is not None:
            channel.set_model(self._channel_model)
        self._channel_order[key] = self._channel_seq
        self._channel_seq += 1
        self.channels[key] = channel
        return channel

    def _channel_changed(self, channel: Channel, delta: int) -> None:
        # The parent watcher keys the active set on channel truthiness;
        # ArrayChannel truthiness includes in-flight tokens, which would
        # leave keys active after a physical pop empties the queue.  The
        # active set here tracks *physical* queues only (in-flight tokens
        # are enumerated by ``enabled_deliveries`` straight from the
        # counters), so key on the queue.
        self._pending_total += delta
        key = (channel.src, channel.dst)
        if channel._queue:
            self._active.add(key)
        else:
            self._active.discard(key)
        self._version += 1

    # -- dynamic topology is rejected ------------------------------------------

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        raise SimulationError(
            "the array backend does not support live topology churn")

    def add_node(self, v: NodeId, neighbors=()):
        raise SimulationError(
            "the array backend does not support live topology churn")

    def remove_node(self, v: NodeId):
        raise SimulationError(
            "the array backend does not support live topology churn")

    # -- vectorized snapshot refresh -------------------------------------------

    def _refresh_dirty(self) -> None:
        """Vectorize the derived-degree part of the dirty-set refresh.

        The object backend pays O(deg) per dirty node to derive ``deg_v``;
        here one segment reduction covers the whole dirty set, and the
        per-node dict compare/build matches the parent class exactly.
        """
        dirty = self._dirty
        if not dirty:
            return
        k = self.kernel
        order = sorted(dirty)
        S = np.fromiter((k.index[v] for v in order), dtype=_I64,
                        count=len(order))
        degs = k.compute_degrees(S)
        roots = k.root[S].tolist()
        parents = k.parent[S].tolist()
        dists = k.distance[S].tolist()
        subs = k.sub_max[S].tolist()
        dmaxs = k.dmax[S].tolist()
        colors = k.color[S].tolist()
        degl = degs.tolist()
        node_snaps = self._node_snaps
        from types import MappingProxyType
        for j, v in enumerate(order):
            snap = {"root": roots[j], "parent": parents[j],
                    "distance": dists[j], "degree": degl[j],
                    "sub_max": subs[j], "dmax": dmaxs[j], "color": colors[j]}
            if node_snaps.get(v) == snap:
                continue
            node_snaps[v] = snap
            self._node_views[v] = MappingProxyType(snap)
            self._node_keys.pop(v, None)
            self._snaps_stale = True
        dirty.clear()

    # -- the vectorized synchronous round --------------------------------------

    def _sync_structs(self):
        """Per-node channel lists for the fast path, built once.

        The topology is frozen, so the in-channel list of every destination
        (ascending source, paired with the destination's flat view row) and
        the out-channel list of every source (neighbour order) are static.
        """
        cache = self._sync_structs_cache
        if cache is None:
            k = self.kernel
            channels = self.channels
            in_lists = []
            for i, dst in enumerate(k.node_ids):
                lo, hi = int(k.indptr[i]), int(k.indptr[i + 1])
                chans = tuple(
                    (channels[(int(k.nbr_ids[f]), dst)], f, int(k.nbr_ids[f]),
                     int(k.nbr_node_idx[f]))
                    for f in range(lo, hi))
                in_lists.append((dst, i, chans))
            out_lists = {
                v: tuple(channels[(v, u)] for u in self.adjacency[v])
                for v in k.node_ids}
            all_keys = frozenset(channels)
            all_nodes = tuple(k.node_ids)
            cache = (in_lists, out_lists, all_keys, all_nodes)
            self._sync_structs_cache = cache
        return cache

    def _vg_structs(self):
        """Per-row structures for the virtual-gossip machinery, built once.

        ``out_flat``/``out_starts``/``out_counts`` are the CSR transpose
        (the out-channel rows of every source, grouped by source index);
        ``row_channel`` maps a flat view row to its channel object,
        ``row_key`` to its ``(src, dst)`` key and ``row_order`` to the
        network's channel-creation order (the sort key of
        ``enabled_deliveries``).
        """
        cache = self._vg_structs_cache
        if cache is None:
            k = self.kernel
            order = np.argsort(k.nbr_node_idx, kind="stable")
            out_counts = np.bincount(k.nbr_node_idx,
                                     minlength=k.n).astype(_I64)
            out_starts = np.zeros(k.n, dtype=_I64)
            np.cumsum(out_counts[:-1], out=out_starts[1:])
            row_channel: List[Optional[ArrayChannel]] = [None] * k.total
            row_key: List[Optional[Tuple[NodeId, NodeId]]] = [None] * k.total
            row_order = np.zeros(k.total, dtype=_I64)
            chorder = self._channel_order
            for key, ch in self.channels.items():
                row_channel[ch._row] = ch
                row_key[ch._row] = key
                row_order[ch._row] = chorder[key]
            cache = (order, out_starts, out_counts, row_channel, row_key,
                     row_order)
            self._vg_structs_cache = cache
        return cache

    def _gossip_minfo(self, si: int) -> MInfo:
        """The ``MInfo`` a current-generation token of source ``si`` means."""
        k = self.kernel
        return MInfo(root=int(k.g_root[si]), parent=int(k.g_parent[si]),
                     distance=int(k.g_distance[si]),
                     degree=int(k.g_degree[si]),
                     sub_max=int(k.g_sub_max[si]),
                     dmax=int(k.g_dmax[si]), color=bool(k.g_color[si]))

    def _gossip_minfo_old(self, si: int) -> MInfo:
        """The ``MInfo`` a previous-generation token of source ``si`` means."""
        k = self.kernel
        return MInfo(root=int(k.go_root[si]), parent=int(k.go_parent[si]),
                     distance=int(k.go_distance[si]),
                     degree=int(k.go_degree[si]),
                     sub_max=int(k.go_sub_max[si]),
                     dmax=int(k.go_dmax[si]), color=bool(k.go_color[si]))

    def _materialize_channel(self, ch: ArrayChannel) -> None:
        """Materialize every in-flight token of ``ch`` onto its queue.

        Tokens append *behind* any physical traffic, oldest generation
        first -- by the FIFO invariant everything physically queued
        predates them.  The channel's delivered base runs ahead of the
        consumed counter afterwards (a *lookahead*): the round trips
        complete as physical deliveries instead, so the counter bumps must
        not be folded into its stats a second time.
        """
        p = (int(self._vg_sent_src[ch._src_i])
             - int(self._vg_del_row[ch._row]))
        if p <= 0:
            return
        st = ch.stats  # flush the pending virtual ``sent`` first
        si = ch._src_i
        q = ch._queue
        if p >= 2:
            q.append(self._gossip_minfo_old(si))
        q.append(self._gossip_minfo(si))
        self._vg_del_row[ch._row] += p
        ch._vd_base += p
        self._vg_virtual_total -= p
        length = len(q)
        if length > st.max_queue_length:
            st.max_queue_length = length
        self._active.add((ch.src, ch.dst))

    def _materialize_oldest(self, ch: ArrayChannel) -> None:
        """Materialize only the *oldest* in-flight token of ``ch``.

        Called by :meth:`_mint` just before the generation shift would
        overwrite that token's snapshot; the newer token (if any) stays
        virtual and survives the shift as the previous generation.
        """
        st = ch.stats  # flush the pending virtual ``sent`` first
        q = ch._queue
        q.append(self._gossip_minfo_old(ch._src_i))
        self._vg_del_row[ch._row] += 1
        ch._vd_base += 1
        self._vg_virtual_total -= 1
        length = len(q)
        if length > st.max_queue_length:
            st.max_queue_length = length
        self._active.add((ch.src, ch.dst))

    def materialize_gossip(self) -> None:
        """Materialize every in-flight virtual gossip token.

        Called before any fallback to the scalar scheduler (full event
        logs, disabled nodes) so the object code path only ever sees real
        message objects on physical queues.  Token content is the sender's
        gossip snapshot columns, exactly what the fast path would have
        scattered.
        """
        if not self._vg_virtual_total:
            return
        k = self.kernel
        pending = self._vg_sent_src[k.nbr_node_idx] - self._vg_del_row
        row_channel = self._vg_structs()[3]
        for row in np.nonzero(pending > 0)[0].tolist():
            self._materialize_channel(row_channel[row])

    def _mint(self, S: np.ndarray, full: bool = False) -> int:
        """Mint one gossip token per out-channel of the node indices ``S``.

        The asynchronous/synchronous twin of a physical gossip broadcast:
        any out-channel still holding the source's *previous*-generation
        token materializes it (its snapshot buffer is about to be
        reused), the snapshot generations shift (current -> previous), the
        post-refresh state columns become the new current generation, and
        the sent counters advance.  Returns the number of (virtual) sends;
        the caller accounts version/stats/trace.
        """
        k = self.kernel
        vm = self._vg_sent_src
        dr = self._vg_del_row
        structs = self._vg_structs()
        if full:
            stale = np.nonzero(dr < vm[k.nbr_node_idx] - 1)[0]
        else:
            out_flat, out_starts, out_counts = structs[0], structs[1], structs[2]
            cnts = out_counts[S]
            tot = int(cnts.sum())
            starts = np.zeros(len(S), dtype=_I64)
            np.cumsum(cnts[:-1], out=starts[1:])
            R = out_flat[np.repeat(out_starts[S] - starts, cnts)
                         + np.arange(tot, dtype=_I64)]
            stale = R[dr[R] < vm[k.nbr_node_idx[R]] - 1]
        if len(stale):
            row_channel = structs[3]
            for row in stale.tolist():
                self._materialize_oldest(row_channel[row])
        if full:
            np.copyto(k.go_root, k.g_root)
            np.copyto(k.go_parent, k.g_parent)
            np.copyto(k.go_distance, k.g_distance)
            np.copyto(k.go_degree, k.g_degree)
            np.copyto(k.go_sub_max, k.g_sub_max)
            np.copyto(k.go_dmax, k.g_dmax)
            np.copyto(k.go_color, k.g_color)
            np.copyto(k.g_root, k.root)
            np.copyto(k.g_parent, k.parent)
            np.copyto(k.g_distance, k.distance)
            np.copyto(k.g_degree, k.degree)
            np.copyto(k.g_sub_max, k.sub_max)
            np.copyto(k.g_dmax, k.dmax)
            np.copyto(k.g_color, k.color)
            vm += 1
            sends = k.total
        else:
            k.go_root[S] = k.g_root[S]
            k.go_parent[S] = k.g_parent[S]
            k.go_distance[S] = k.g_distance[S]
            k.go_degree[S] = k.g_degree[S]
            k.go_sub_max[S] = k.g_sub_max[S]
            k.go_dmax[S] = k.g_dmax[S]
            k.go_color[S] = k.g_color[S]
            k.g_root[S] = k.root[S]
            k.g_parent[S] = k.parent[S]
            k.g_distance[S] = k.distance[S]
            k.g_degree[S] = k.degree[S]
            k.g_sub_max[S] = k.sub_max[S]
            k.g_dmax[S] = k.dmax[S]
            k.g_color[S] = k.color[S]
            vm[S] += 1
            sends = int(k._row_counts[S].sum())
        self._vg_virtual_total += sends
        self._pending_total += sends
        return sends

    def enabled_deliveries(self):
        """Enabled deliveries with in-flight virtual tokens made visible.

        The parent enumerates the active set, which tracks *physical*
        queues only; had the tokens been physical sends their channels
        would all be active, so the asynchronous schedulers (whose event
        pools, and therefore rng draws, depend on this list) must see
        them.  Channel order, the disabled-destination skip and the
        per-channel counts (``len`` includes the tokens) match the parent
        exactly.  In gossip-only steady state -- one token in flight on
        every channel, no physical backlog -- the answer is the static
        full channel list with count 1, served from a cache.
        """
        if not self._vg_virtual_total:
            return super().enabled_deliveries()
        k = self.kernel
        counts = self._vg_sent_src[k.nbr_node_idx] - self._vg_del_row
        if (not self._active and not self._disabled
                and self._vg_virtual_total == k.total
                and bool((counts == 1).all())):
            cache = self._all_deliv_cache
            if cache is None:
                order = self._channel_order
                keys = sorted(self.channels, key=order.__getitem__)
                cache = [(src, dst, 1) for src, dst in keys]
                self._all_deliv_cache = cache
            return list(cache)
        channels = self.channels
        if self._active:
            for key in self._active:
                ch = channels[key]
                counts[ch._row] += len(ch._queue)
        structs = self._vg_structs()
        row_key, row_order = structs[4], structs[5]
        rows = np.nonzero(counts > 0)[0]
        rows = rows[np.argsort(row_order[rows])]
        disabled = self._disabled
        enabled = []
        counts_l = counts[rows].tolist()
        for row, cnt in zip(rows.tolist(), counts_l):
            src, dst = row_key[row]
            if dst in disabled:
                continue
            enabled.append((src, dst, int(cnt)))
        return enabled

    def snapshot_key(self) -> tuple:
        """Fingerprint the configuration straight from the state columns.

        The per-node snapshot is exactly the seven ``MDSTState`` fields
        (six own columns plus the derived tree degree), so a digest over
        those columns is a sound equality key for the predicate cache:
        equal keys imply equal snapshot maps.  This skips the parent
        class's per-node dict assembly entirely on the hot path.
        """
        cached = self._acols_key_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        k = self.kernel
        degrees = k.compute_degrees(k._all_idx)
        h = hashlib.md5()
        h.update(k.root.tobytes())
        h.update(k.parent.tobytes())
        h.update(k.distance.tobytes())
        h.update(degrees.tobytes())
        h.update(k.sub_max.tobytes())
        h.update(k.dmax.tobytes())
        h.update(k.color.tobytes())
        key = ("array-cols", h.digest())
        self._acols_key_cache = (self._version, key)
        return key

    def run_sync_round(self, events: EnabledEvents,
                       trace: Optional[TraceRecorder],
                       stats: RoundStats) -> None:
        """One synchronous round, message delivery and refresh batched.

        Reproduces :class:`~repro.sim.scheduler.SynchronousScheduler`
        step-for-step: the round-start backlog is consumed per destination
        (destinations ascending, sources ascending, frozen counts), then
        every enabled node runs its timeout action in id order.  Gossip
        deliveries and the refresh they trigger are applied as per-slot
        vector operations -- slot ``j`` holds the ``j``-th backlog message
        of every destination, so each node still observes its own delivery
        sequence in order, and cross-node batching is sound because a
        gossip step touches only the destination's own columns.
        Destinations whose entire backlog is gossip are batched without any
        per-message work; a destination that received control traffic is
        replayed through the slot loop, control handlers running the real
        scalar code.
        """
        k = self.kernel
        processes = self.processes
        in_lists, out_lists, all_keys, all_nodes = self._sync_structs()
        minfo_bits = self._minfo_bits
        dirty = self._dirty
        active = self._active
        vm = self._vg_sent_src
        dr = self._vg_del_row
        # -- phase 1: drain the round-start backlog ----------------------------
        # The gossip backlog is *virtual* (the sent/consumed counters): in
        # the steady state this phase is a handful of array operations and
        # never touches a channel object.  Physical messages exist only on
        # the channels in the active set (control traffic, fault preloads,
        # materialized tokens); their destinations are replayed through the
        # slot loop in exact (dst, src, FIFO) order -- everything physically
        # queued on a channel predates its in-flight token (the standing
        # FIFO invariant), matching the send order of the object backend.
        mixed: List[Tuple[NodeId, List[object]]] = []
        phys_delivered = 0
        nvirt = 0
        rows = counts = dsti_arr = starts = None
        tok_dst_ids: Sequence[NodeId] = ()
        ntok = 0
        virt_total = self._vg_virtual_total
        if (not active and virt_total == k.total
                and bool((vm[k.nbr_node_idx] - dr == 1).all())):
            # Steady state: every destination's backlog is exactly one
            # (current-generation) token per in-edge, so the geometry is the
            # cached full CSR layout.
            rows = k._full_flat
            counts = k._row_counts
            starts = k._full_starts
            dsti_arr = k._all_idx
            tok_dst_ids = all_nodes
            ntok = k.total
            nvirt = k.total
            dr += 1
            self._vg_virtual_total = 0
        else:
            if virt_total:
                # A synchronous history never leaves two generations in
                # flight on one channel (each round drains everything the
                # previous round minted); materialize the exception so the
                # single-token fast geometry below stays sound.
                multi = np.nonzero(vm[k.nbr_node_idx] - dr > 1)[0]
                if len(multi):
                    row_channel = self._vg_structs()[3]
                    for row in multi.tolist():
                        self._materialize_channel(row_channel[row])
            mixed_idx = (sorted({int(k.index[d]) for (_, d) in active})
                         if active else [])
            if self._vg_virtual_total:
                tok_mask = vm[k.nbr_node_idx] > dr
                for i in mixed_idx:
                    tok_mask[int(k.indptr[i]):int(k.indptr[i + 1])] = False
                counts_all = np.add.reduceat(tok_mask.astype(_I64),
                                             k._full_starts)
                sel = counts_all > 0
                rows = np.nonzero(tok_mask)[0]
                counts = counts_all[sel]
                dsti_arr = k._all_idx[sel]
                starts = np.zeros(len(counts), dtype=_I64)
                np.cumsum(counts[:-1], out=starts[1:])
                tok_dst_ids = [k.node_ids[i] for i in dsti_arr.tolist()]
                ntok = len(rows)
                if ntok:
                    dr[rows] += 1
                    nvirt += ntok
                    self._vg_virtual_total -= ntok
            # Destinations with physical backlog: per-channel scalar drain,
            # physical messages first, then the channel's in-flight token.
            for i in mixed_idx:
                dst = k.node_ids[i]
                seq: List[object] = []
                for ch, row, src, si in in_lists[i][2]:
                    q = ch._queue
                    cnt = len(q)
                    if cnt:
                        st = ch.stats
                        st.delivered += cnt
                        phys_delivered += cnt
                        for _ in range(cnt):
                            seq.append((src, q.popleft()))
                    if vm[si] > dr[row]:
                        seq.append(row)
                        dr[row] += 1
                        nvirt += 1
                        self._vg_virtual_total -= 1
                if seq:
                    mixed.append((dst, seq))
        delivered = nvirt + phys_delivered
        if delivered:
            # Batched twin of per-message Channel.deliver() accounting: every
            # backlog queue is drained completely, so no channel stays active.
            self._pending_total -= delivered
            active.clear()
            self._version += delivered
        # -- phase 2a: pure-gossip destinations, fully vectorized --------------
        if ntok:
            nbr_node_idx = k.nbr_node_idx
            for j in range(int(counts.max())):
                if j == 0:
                    P = rows[starts]
                    S = dsti_arr
                else:
                    m = counts > j
                    P = rows[starts[m] + j]
                    S = dsti_arr[m]
                src_idx = nbr_node_idx[P]
                nr = k.g_root[src_idx]
                npa = k.g_parent[src_idx]
                nd = k.g_distance[src_idx]
                ndeg = k.g_degree[src_idx]
                nsm = k.g_sub_max[src_idx]
                ndm = k.g_dmax[src_idx]
                nc = k.g_color[src_idx]
                # A refresh with an unchanged view is a no-op (the rules are
                # idempotent: R1 adopts the minimum heard root, after which
                # neither R1 nor R2 fires again, and the degree layer is a
                # direct function of view and parent), so only destinations
                # whose view row this write actually changed re-run it.
                changed = ((k.v_root[P] != nr) | (k.v_parent[P] != npa)
                           | (k.v_distance[P] != nd) | (k.v_degree[P] != ndeg)
                           | (k.v_sub_max[P] != nsm) | (k.v_dmax[P] != ndm)
                           | (k.v_color[P] != nc) | ~k.v_heard[P])
                k.v_root[P] = nr
                k.v_parent[P] = npa
                k.v_distance[P] = nd
                k.v_degree[P] = ndeg
                k.v_sub_max[P] = nsm
                k.v_dmax[P] = ndm
                k.v_color[P] = nc
                k.v_heard[P] = True
                if changed.any():
                    k.refresh(S[changed])
            for dst, cnt in zip(tok_dst_ids, counts.tolist()):
                processes[dst].steps_taken += cnt
            dirty.update(tok_dst_ids)
            self._version += ntok
            stats.steps += ntok
            stats.deliveries += ntok
            if trace is not None:
                mtc = trace.message_type_counts
                mtc["MInfo"] = mtc.get("MInfo", 0) + ntok
                if minfo_bits > trace.max_message_bits:
                    trace.max_message_bits = minfo_bits
                trace.total_deliveries += ntok
                if trace.rounds:
                    rec = trace.rounds[-1]
                    rec.steps += ntok
                    rec.deliveries += ntok
        # -- phase 2b: destinations with control traffic, slot by slot ---------
        slot = 0
        while mixed:
            batch_rows: List[int] = []
            batch_dsti: List[int] = []
            batch_dst_ids: List[NodeId] = []
            batch_pos: List[int] = []
            batch_fields: List[Tuple] = []
            scalars: List[Tuple[NodeId, NodeId, object]] = []
            active = False
            for dst, seq in mixed:
                if slot >= len(seq):
                    continue
                active = True
                e = seq[slot]
                if type(e) is int:
                    batch_rows.append(e)
                    batch_dsti.append(k.index[dst])
                    batch_dst_ids.append(dst)
                elif type(e[1]) is MInfo:
                    msg = e[1]
                    batch_rows.append(k.pos[(dst, e[0])])
                    batch_dsti.append(k.index[dst])
                    batch_dst_ids.append(dst)
                    batch_pos.append(len(batch_rows) - 1)
                    batch_fields.append((msg.root, msg.parent, msg.distance,
                                         msg.degree, msg.sub_max, msg.dmax,
                                         msg.color))
                else:
                    scalars.append((dst, e[0], e[1]))
            if not active:
                break
            if batch_rows:
                P = np.asarray(batch_rows, dtype=np.intp)
                src_idx = k.nbr_node_idx[P]
                k.v_root[P] = k.g_root[src_idx]
                k.v_parent[P] = k.g_parent[src_idx]
                k.v_distance[P] = k.g_distance[src_idx]
                k.v_degree[P] = k.g_degree[src_idx]
                k.v_sub_max[P] = k.g_sub_max[src_idx]
                k.v_dmax[P] = k.g_dmax[src_idx]
                k.v_color[P] = k.g_color[src_idx]
                k.v_heard[P] = True
                if batch_fields:
                    # Real MInfo objects (start-up traffic, materialized
                    # fallbacks) override the token scatter at their rows.
                    pos = P[np.asarray(batch_pos, dtype=np.intp)]
                    cols = list(zip(*batch_fields))
                    k.v_root[pos] = cols[0]
                    k.v_parent[pos] = cols[1]
                    k.v_distance[pos] = cols[2]
                    k.v_degree[pos] = cols[3]
                    k.v_sub_max[pos] = cols[4]
                    k.v_dmax[pos] = cols[5]
                    k.v_color[pos] = np.asarray(cols[6], dtype=bool)
                S = np.asarray(batch_dsti, dtype=_I64)
                # NOTE: unlike phase 2a, the refresh here must be
                # unconditional -- a control handler earlier in this round
                # can change the destination's *own* state so that a rule
                # fires on a later gossip delivery even when that delivery
                # leaves the view row unchanged.
                k.refresh(S)
                count = len(batch_rows)
                for dst in batch_dst_ids:
                    processes[dst].steps_taken += 1
                dirty.update(batch_dst_ids)
                self._version += count
                stats.steps += count
                stats.deliveries += count
                if trace is not None:
                    mtc = trace.message_type_counts
                    mtc["MInfo"] = mtc.get("MInfo", 0) + count
                    if minfo_bits > trace.max_message_bits:
                        trace.max_message_bits = minfo_bits
                    trace.total_deliveries += count
                    if trace.rounds:
                        rec = trace.rounds[-1]
                        rec.steps += count
                        rec.deliveries += count
            if scalars:
                # Batched control gate: Search/Deblock at a non-stabilized
                # destination, UpdateDist from a non-parent and garbage are
                # handler no-ops -- account them in bulk, skip the dispatch.
                drop = mdst_scalar_gate(self, scalars)
                if True in drop:
                    dropped = [s for s, dr in zip(scalars, drop) if dr]
                    scalars = [s for s, dr in zip(scalars, drop) if not dr]
                    account_dropped_deliveries(self, trace, stats, dropped)
            for dst, src, msg in scalars:
                process = processes[dst]
                process.on_message(src, msg)
                process.steps_taken += 1
                self.note_step(dst)
                sent = self.flush_outbox(dst)
                stats.steps += 1
                stats.deliveries += 1
                stats.messages_sent += sent
                if trace is not None:
                    trace.record_delivery(src, dst, msg, sent)
            slot += 1
        # -- phase 3: the timeout actions, gossip as tokens --------------------
        timeouts = events.timeouts
        if not timeouts:
            return
        full = timeouts == all_nodes
        if full:
            S = k._all_idx
        else:
            S = np.fromiter((k.index[v] for v in timeouts), dtype=_I64,
                            count=len(timeouts))
        enable_reduction = self._enable_reduction
        k.refresh(S, predicates=enable_reduction)
        ls = k.locally_stab
        dmax = k.dmax
        n_to = len(timeouts)
        # Virtual gossip send: one in-flight token per node, standing for one
        # MInfo on each of its out-channels.  Channel objects are untouched;
        # the mint shifts the gossip generations and snapshots the senders'
        # post-refresh state into the current-generation columns.  Channels
        # that carried control traffic earlier this round need no special
        # step: the new token is logically *behind* every physical message
        # (the standing FIFO invariant), exactly matching the send order.
        gossip_sends = self._mint(S, full=full)
        sent_total = gossip_sends
        for j, v in enumerate(timeouts):
            process = processes[v]
            process._timeout_count += 1
            if enable_reduction:
                if process._jitter.random() < 1.0 / process.search_period:
                    i = j if full else int(S[j])
                    if ls[i] and dmax[i] >= 3:
                        process._initiate_searches(idblock=None, limit=1)
                        if process.outbox._items:
                            sent_total += self.flush_outbox(v)
            process.steps_taken += 1
        # Batched twin of the per-step accounting (note_step + RoundStats and
        # trace counters); the active set tracks physical queues only, so
        # virtual sends do not touch it.
        self._version += gossip_sends + n_to
        dirty.update(timeouts)
        stats.steps += n_to
        stats.timeouts += n_to
        stats.messages_sent += sent_total
        if trace is not None:
            trace.total_timeouts += n_to
            trace.total_messages_sent += sent_total
            if trace.rounds:
                rec = trace.rounds[-1]
                rec.steps += n_to
                rec.timeouts += n_to
                rec.messages_sent += sent_total


class ArraySyncScheduler(SynchronousScheduler):
    """Synchronous scheduler driving the vectorized round of an
    :class:`ArrayNetwork`; any other network (or a full-event-log trace,
    which needs per-message events) falls back to the scalar parent."""

    name = "synchronous"

    def run_round(self, network: Network,
                  trace: Optional[TraceRecorder] = None) -> RoundStats:
        if not isinstance(network, ArrayNetwork):
            return super().run_round(network, trace)
        if network._disabled or (trace is not None and trace.keep_events):
            # Scalar fallback: virtual gossip tokens must become physical
            # messages *before* the parent builds its enabled-event set,
            # or the round would not see them as deliverable.
            network.materialize_gossip()
            return super().run_round(network, trace)
        # Building the enabled-event set costs a sort over every active
        # channel; the vectorized round scans the frozen channel lists
        # directly, so on the fast path we skip it entirely.
        stats = RoundStats()
        all_nodes = network._sync_structs()[3]
        events = EnabledEvents(timeouts=all_nodes, deliveries=())
        network.run_sync_round(events, trace, stats)
        return stats

    def schedule_round(self, network: Network, events: EnabledEvents,
                       trace: Optional[TraceRecorder],
                       stats: RoundStats) -> None:
        if not isinstance(network, ArrayNetwork):
            # Substrate array networks (spanning tree, PIF) carry a column
            # driver instead of virtual gossip; route them through the
            # generic slot engine with a synchronous-shaped plan.
            ops = getattr(network, "_array_ops", None)
            if (ops is None or network._disabled
                    or (trace is not None and trace.keep_events)):
                super().schedule_round(network, events, trace, stats)
                return
            from .array_engine import execute_plan, sync_plan
            execute_plan(network, ops, sync_plan(network, events), trace, stats)
            return
        if ((trace is not None and trace.keep_events)
                or network._disabled):
            # Scalar fallback: full event logs need per-message records,
            # disabled nodes need the parent's per-event gating.  Queued
            # gossip tokens must become real messages first.
            network.materialize_gossip()
            super().schedule_round(network, events, trace, stats)
            return
        network.run_sync_round(events, trace, stats)


def build_array_mdst_network(graph: "nx.Graph | EdgeArrayGraph", *,
                             n_upper: int,
                             search_period: int = 3,
                             deblock_cooldown: int = 30,
                             enable_reduction: bool = True) -> ArrayNetwork:
    """Build the array-backed MDST network (the adapter's ``backend="array"``
    counterpart of :func:`repro.core.protocol.build_mdst_network`).

    Accepts either an ``nx.Graph`` (eager per-object construction) or an
    :class:`~repro.graphs.edge_array.EdgeArrayGraph` (the CSR-direct fast
    path: kernel columns come straight from the container's cached CSR and
    the per-object maps materialize lazily)."""
    return ArrayNetwork(graph, n_upper=n_upper, search_period=search_period,
                        deblock_cooldown=deblock_cooldown,
                        enable_reduction=enable_reduction)
