"""Validation helpers for graphs and (claimed) spanning trees.

The distributed algorithm must *output* a spanning tree regardless of the
initial configuration; the functions here are the ground-truth checkers used
by the legitimacy predicates, the test-suite and the fault-injection
experiments to decide whether a configuration is legitimate.
"""

from __future__ import annotations

from typing import Dict, Iterable

import networkx as nx

from ..exceptions import GraphError, NotASpanningTreeError, NotConnectedError
from ..types import Edge, NodeId, canonical_edge, canonical_edges
from .spanning import parent_map_from_edges, tree_degrees

__all__ = [
    "check_network",
    "check_spanning_tree",
    "check_parent_map",
    "check_distances",
    "spanning_tree_violations",
]


def check_network(graph: nx.Graph) -> None:
    """Validate that ``graph`` is a legal input network for the algorithm.

    Raises :class:`GraphError` / :class:`NotConnectedError` when the graph is
    empty, directed, has self-loops, or is disconnected.
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("network is empty")
    if graph.is_directed():
        raise GraphError("network must be undirected")
    if any(u == v for u, v in graph.edges):
        raise GraphError("network must not contain self-loops")
    if not nx.is_connected(graph):
        raise NotConnectedError("network must be connected")


def check_spanning_tree(graph: nx.Graph, edges: Iterable[Edge]) -> Dict[NodeId, int]:
    """Validate a claimed spanning tree and return its per-node degrees.

    Raises :class:`NotASpanningTreeError` with a descriptive message when the
    edge set is not a spanning tree of ``graph``.
    """
    nodes = list(graph.nodes)
    edge_set = canonical_edges(edges)
    graph_edges = {canonical_edge(u, v) for u, v in graph.edges}
    foreign = edge_set - graph_edges
    if foreign:
        raise NotASpanningTreeError(f"tree uses edges not in the graph: {sorted(foreign)[:5]}")
    if len(edge_set) != len(nodes) - 1:
        raise NotASpanningTreeError(
            f"tree has {len(edge_set)} edges but a spanning tree of {len(nodes)} "
            f"nodes needs {len(nodes) - 1}")
    parent_map_from_edges(nodes, edge_set)  # raises if not spanning / has cycles
    return tree_degrees(nodes, edge_set)


def check_parent_map(graph: nx.Graph, parent: Dict[NodeId, NodeId]) -> NodeId:
    """Validate a ``node -> parent`` map as a spanning tree of ``graph``.

    Checks: every node present, exactly one self-parented root, every
    non-root parent pointer follows an existing graph edge, and following
    parent pointers from any node reaches the root (no cycles).
    Returns the root id.
    """
    nodes = set(graph.nodes)
    if set(parent) != nodes:
        missing = nodes - set(parent)
        extra = set(parent) - nodes
        raise NotASpanningTreeError(
            f"parent map does not cover the node set (missing={sorted(missing)[:5]}, "
            f"extra={sorted(extra)[:5]})")
    roots = [v for v, p in parent.items() if p == v]
    if len(roots) != 1:
        raise NotASpanningTreeError(f"expected exactly one root, found {sorted(roots)}")
    root = roots[0]
    for v, p in parent.items():
        if v == root:
            continue
        if not graph.has_edge(v, p):
            raise NotASpanningTreeError(f"parent pointer {v}->{p} is not a graph edge")
    # Cycle check: walk up from every node with a visited set.
    for v in nodes:
        seen = set()
        cur = v
        while cur != root:
            if cur in seen:
                raise NotASpanningTreeError(f"parent pointers contain a cycle through {cur}")
            seen.add(cur)
            cur = parent[cur]
            if len(seen) > len(nodes):
                raise NotASpanningTreeError("parent pointers do not reach the root")
    return root


def check_distances(parent: Dict[NodeId, NodeId], distance: Dict[NodeId, int]) -> None:
    """Validate the coherent-distance predicate globally.

    Every non-root node must have ``distance = distance(parent) + 1``; the
    root must have distance 0.  Mirrors ``coherent_distance(v)`` from §3.1.
    """
    for v, p in parent.items():
        if p == v:
            if distance.get(v) != 0:
                raise NotASpanningTreeError(f"root {v} has distance {distance.get(v)} != 0")
        else:
            if distance.get(v) != distance.get(p, -10**9) + 1:
                raise NotASpanningTreeError(
                    f"node {v} has distance {distance.get(v)} but its parent {p} "
                    f"has distance {distance.get(p)}")


def spanning_tree_violations(graph: nx.Graph, edges: Iterable[Edge]) -> list[str]:
    """Human-readable list of reasons why ``edges`` is not a spanning tree.

    Returns an empty list when the edge set is a valid spanning tree; used by
    fault-injection experiments to report *how* a configuration is broken.
    """
    problems: list[str] = []
    nodes = list(graph.nodes)
    edge_set = canonical_edges(edges)
    graph_edges = {canonical_edge(u, v) for u, v in graph.edges}
    foreign = edge_set - graph_edges
    if foreign:
        problems.append(f"{len(foreign)} edges are not graph edges")
    if len(edge_set) != len(nodes) - 1:
        problems.append(f"edge count {len(edge_set)} != n-1 = {len(nodes) - 1}")
    sub = nx.Graph()
    sub.add_nodes_from(nodes)
    sub.add_edges_from(e for e in edge_set if e in graph_edges)
    ncomp = nx.number_connected_components(sub)
    if ncomp != 1:
        problems.append(f"induced subgraph has {ncomp} connected components")
    if sub.number_of_edges() >= sub.number_of_nodes() and ncomp == 1:
        problems.append("induced subgraph contains a cycle")
    return problems
