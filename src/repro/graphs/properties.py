"""Structural graph properties relevant to the MDST problem.

Besides generic statistics (degree distribution, density, diameter), this
module exposes MDST-specific lower bounds on the optimal tree degree Δ*:

* ``1 + max over cut vertices of (number of components the cut vertex
  separates - 1)`` is a weak bound; we use the exact *cut-vertex bound*: a
  vertex whose removal splits the graph into ``c`` components must have tree
  degree at least ``c``.
* the *leaf bound*: Δ* >= ceil((n - 1) / (n - leaves_possible)), specialised
  here to the simple bound Δ* >= 2 whenever n >= 3 and the graph is not a
  single edge.

These bounds are used by tests and by the exact solver to prune search.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import networkx as nx

from ..exceptions import GraphError, NotConnectedError

__all__ = [
    "GraphSummary",
    "summarize",
    "degree_histogram",
    "max_degree",
    "min_degree",
    "density",
    "cut_vertex_lower_bound",
    "mdst_lower_bound",
    "is_hamiltonian_path_certificate",
]


@dataclass(frozen=True)
class GraphSummary:
    """Compact structural summary of a network instance."""

    nodes: int
    edges: int
    min_degree: int
    max_degree: int
    mean_degree: float
    density: float
    diameter: int | None
    family: str | None
    mdst_lower_bound: int

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for tabular reporting."""
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
            "mean_degree": round(self.mean_degree, 3),
            "density": round(self.density, 4),
            "diameter": self.diameter,
            "family": self.family,
            "mdst_lower_bound": self.mdst_lower_bound,
        }


def degree_histogram(graph: nx.Graph) -> Dict[int, int]:
    """Histogram ``degree -> number of nodes with that degree``."""
    hist: Dict[int, int] = {}
    for _, d in graph.degree():
        hist[d] = hist.get(d, 0) + 1
    return dict(sorted(hist.items()))


def max_degree(graph: nx.Graph) -> int:
    """Maximum node degree of the graph (δ in the paper's memory bound)."""
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    return max(d for _, d in graph.degree())


def min_degree(graph: nx.Graph) -> int:
    """Minimum node degree of the graph."""
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    return min(d for _, d in graph.degree())


def density(graph: nx.Graph) -> float:
    """Edge density ``2m / (n (n-1))`` (0 for a single node)."""
    return nx.density(graph)


def cut_vertex_lower_bound(graph: nx.Graph) -> int:
    """Lower bound on Δ* from articulation points.

    If removing vertex ``v`` splits the graph into ``c(v)`` connected
    components, then any spanning tree must connect those components through
    ``v``, so ``deg_T(v) >= c(v)`` and therefore ``Δ* >= max_v c(v)``.
    For graphs without articulation points the bound degenerates to 1
    (or 2 once the trivial bound below is applied).
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    if not nx.is_connected(graph):
        raise NotConnectedError("cut_vertex_lower_bound requires a connected graph")
    best = 1
    for v in nx.articulation_points(graph):
        sub = graph.copy()
        sub.remove_node(v)
        c = nx.number_connected_components(sub)
        best = max(best, c)
    return best


def mdst_lower_bound(graph: nx.Graph) -> int:
    """Best cheap lower bound on Δ* available without solving the problem.

    Combines the trivial bound (any spanning tree of a graph with at least
    3 nodes has a node of degree >= 2 -- in fact Δ* >= ceil((n-1) * 2 / n) --
    with the cut-vertex bound.  The exact solver and the quality experiments
    (E1) use this to certify optimality without enumerating all trees when
    the bound is tight.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("graph is empty")
    if n == 1:
        return 0
    if n == 2:
        return 1
    trivial = 2  # a tree on >= 3 nodes has an internal node
    return max(trivial, cut_vertex_lower_bound(graph))


def is_hamiltonian_path_certificate(graph: nx.Graph, path: list[int]) -> bool:
    """Check that ``path`` is a Hamiltonian path of ``graph``.

    Families like :func:`repro.graphs.generators.dense_hamiltonian_graph`
    store such a certificate, which pins Δ* = 2 without any search.
    """
    if len(path) != graph.number_of_nodes():
        return False
    if len(set(path)) != len(path):
        return False
    return all(graph.has_edge(u, v) for u, v in zip(path, path[1:]))


def summarize(graph: nx.Graph, compute_diameter: bool = True) -> GraphSummary:
    """Produce a :class:`GraphSummary` for ``graph``.

    ``compute_diameter`` may be disabled for large instances (the diameter
    computation is O(n·m) and only used for reporting).
    """
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    degrees = [d for _, d in graph.degree()]
    diameter: int | None = None
    if compute_diameter and nx.is_connected(graph) and graph.number_of_nodes() <= 2000:
        diameter = nx.diameter(graph)
    return GraphSummary(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=sum(degrees) / len(degrees),
        density=density(graph),
        diameter=diameter,
        family=graph.graph.get("family"),
        mdst_lower_bound=mdst_lower_bound(graph) if nx.is_connected(graph) else 0,
    )
