"""Vectorized edge-array graph generators (the large-n construction path).

Every generator here produces an :class:`~repro.graphs.edge_array
.EdgeArrayGraph` using numpy primitives only -- no networkx object is
built, no per-edge Python call is made, and connectivity is repaired by
the vectorized union-find of :mod:`repro.graphs.edge_array` instead of
``nx.connected_components``.  At n = 10k-100k this is the difference
between milliseconds and seconds of setup per run.

Three generators are array twins of existing families (Erdős–Rényi via
geometric skip-sampling, random-geometric via grid-cell binning,
Barabási–Albert via the Batagelj–Brandes repeated-endpoints trick) and
three open new heavy-tailed / structured regimes the object registry
could not produce at scale: ``powerlaw_cm`` (power-law configuration
model), ``small_world_fast`` (Watts–Strogatz rewiring) and ``kronecker``
(R-MAT recursive quadrant sampling).  Hub-heavy degree distributions are
exactly what stresses the paper's degree-reduction layer (E7/E8).

Determinism: each generator threads one explicit ``seed`` through
``numpy.random.default_rng`` and touches no hash-ordered container, so
the produced edge arrays are byte-identical across processes and
``PYTHONHASHSEED`` values (a tested property).
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from ..exceptions import GraphError
from .edge_array import EdgeArrayGraph, connect_components

__all__ = [
    "erdos_renyi_fast",
    "random_geometric_fast",
    "barabasi_albert_fast",
    "powerlaw_cm",
    "small_world_fast",
    "kronecker",
    "FAST_FAMILIES",
    "make_fast_graph",
    "fast_family_names",
]

_I64 = np.int64


def _finish(n: int, u: np.ndarray, v: np.ndarray, family: str,
            **metadata: object) -> EdgeArrayGraph:
    """Canonicalize, repair connectivity, and wrap into the container."""
    g = EdgeArrayGraph(n, u, v, family=family, validate=False,
                       metadata=metadata or None)
    ru, rv = connect_components(n, g.edges_u, g.edges_v)
    if ru.size != g.edges_u.size:
        g = EdgeArrayGraph(n, ru, rv, family=family, validate=False,
                           metadata=metadata or None)
    return g.validate()


def _triangular_decode(k: np.ndarray, n: int):
    """Invert the lexicographic pair index ``k`` to endpoints ``u < v``.

    Pairs ``(u, v)`` with ``0 <= u < v < n`` are enumerated in
    lexicographic order; row ``u`` starts at offset
    ``S(u) = u * (2n - u - 1) / 2``.  A float solve of the quadratic gives
    ``u`` up to rounding; one vectorized correction pass pins it exactly.
    """
    b = 2 * n - 1
    u = np.floor((b - np.sqrt(b * b - 8.0 * k.astype(np.float64))) / 2.0)
    u = np.clip(u.astype(_I64), 0, n - 2)
    start = u * (2 * n - u - 1) // 2
    while True:
        over = start > k
        if not over.any():
            break
        u[over] -= 1
        start[over] = u[over] * (2 * n - u[over] - 1) // 2
    while True:
        nxt = (u + 1) * (2 * n - u - 2) // 2
        under = (nxt <= k) & (u < n - 2)
        if not under.any():
            break
        u[under] += 1
        start[under] = u[under] * (2 * n - u[under] - 1) // 2
    v = u + 1 + (k - start)
    return u, v


def erdos_renyi_fast(n: int, p: float | None = None,
                     seed: int | None = None) -> EdgeArrayGraph:
    """G(n, p) sampled by geometric skip-sampling over the pair index.

    Instead of flipping ``n*(n-1)/2`` coins, the gap to the next present
    edge is geometric with parameter ``p``; cumulative sums of batched
    geometric draws enumerate exactly the selected pair indices, which
    decode to endpoints in O(m) total work.  Defaults to the same sparse
    connectivity-threshold ``p`` as the object-path
    ``erdos_renyi_sparse`` family.
    """
    if n < 2:
        raise GraphError("erdos_renyi_fast requires n >= 2")
    if p is None:
        p = min(1.0, 2.5 * math.log(max(n, 2)) / max(n, 2))
    if not 0.0 < p <= 1.0:
        raise GraphError("p must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    total = n * (n - 1) // 2
    picks = []
    cur = -1  # last selected pair index
    while cur < total - 1:
        remaining = total - 1 - cur
        batch = max(1024, int(remaining * p * 1.1) + 16)
        steps = np.cumsum(rng.geometric(p, size=batch)) + cur
        inside = steps < total
        picks.append(steps[inside])
        if not inside.all():
            break
        cur = int(steps[-1])
    k = np.concatenate(picks) if picks else np.zeros(0, dtype=_I64)
    u, v = _triangular_decode(k.astype(_I64), n)
    return _finish(n, u, v, "erdos_renyi_fast", p=float(p))


def random_geometric_fast(n: int, radius: float | None = None,
                          seed: int | None = None) -> EdgeArrayGraph:
    """Random geometric graph in the unit square via grid-cell binning.

    Points are bucketed into a grid of cells with side >= ``radius``, so
    every edge lives inside one cell or between 8-adjacent cells; five of
    the nine offsets cover each unordered cell pair exactly once.
    Candidate pairs are enumerated with sorted-cell ``searchsorted``
    arithmetic (no per-point Python), then filtered by squared distance.
    The default radius sits just above the connectivity threshold, same
    as the object-path family.
    """
    if n < 2:
        raise GraphError("random_geometric_fast requires n >= 2")
    if radius is None:
        radius = 1.4 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))
    if radius <= 0:
        raise GraphError("radius must be positive")
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2))
    grid = max(1, min(n, int(1.0 / radius)))
    cx = np.minimum((pts[:, 0] * grid).astype(_I64), grid - 1)
    cy = np.minimum((pts[:, 1] * grid).astype(_I64), grid - 1)
    cell = cx * grid + cy
    order = np.argsort(cell, kind="stable")
    sorted_cells = cell[order]
    r2 = radius * radius
    all_u, all_v = [], []
    for dx, dy in ((0, 0), (0, 1), (1, -1), (1, 0), (1, 1)):
        tx, ty = cx + dx, cy + dy
        valid = (tx >= 0) & (tx < grid) & (ty >= 0) & (ty < grid)
        src_pts = np.nonzero(valid)[0]
        target = tx[valid] * grid + ty[valid]
        starts = np.searchsorted(sorted_cells, target, side="left")
        counts = np.searchsorted(sorted_cells, target, side="right") - starts
        total = int(counts.sum())
        if total == 0:
            continue
        src = np.repeat(src_pts, counts)
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts)
        dst = order[np.repeat(starts, counts) + offsets]
        if dx == 0 and dy == 0:
            keep = dst > src  # same cell: count each unordered pair once
            src, dst = src[keep], dst[keep]
        close = ((pts[src] - pts[dst]) ** 2).sum(axis=1) <= r2
        all_u.append(src[close])
        all_v.append(dst[close])
    u = np.concatenate(all_u) if all_u else np.zeros(0, dtype=_I64)
    v = np.concatenate(all_v) if all_v else np.zeros(0, dtype=_I64)
    return _finish(n, u, v, "random_geometric_fast", radius=float(radius))


def barabasi_albert_fast(n: int, m: int = 2,
                         seed: int | None = None) -> EdgeArrayGraph:
    """Barabási–Albert preferential attachment, fully vectorized.

    Batagelj–Brandes repeated-endpoints trick: the flat sequence of all
    edge endpoints is itself the preferential-attachment distribution, so
    each new target is "the value at a uniformly random earlier position".
    All positions are drawn up front and the reference chains resolved by
    vectorized pointer-jumping (chains strictly decrease, expected
    O(log n) passes).  Multi-edges and self-loops of the multigraph
    collapse in canonicalization, as in the standard treatment.
    """
    if n < 3:
        raise GraphError("barabasi_albert_fast requires n >= 3")
    m = max(1, min(int(m), n - 1))
    rng = np.random.default_rng(seed)
    # Seed star: node m attaches to every node below it.
    seed_u = np.full(m, m, dtype=_I64)
    seed_v = np.arange(m, dtype=_I64)
    rest = n - m - 1
    if rest <= 0:
        return _finish(n, seed_u, seed_v, "barabasi_albert_fast", m=m)
    # Endpoint array layout: positions 0..2m-1 are the seed star
    # (alternating source m, target i); position 2m + 2j is the source of
    # slot j and 2m + 2j + 1 its sampled target.
    j = np.arange(rest * m, dtype=_I64)
    r = (rng.random(rest * m) * (2 * m + 2 * j)).astype(_I64)
    seed_flat = np.empty(2 * m, dtype=_I64)
    seed_flat[0::2] = m
    seed_flat[1::2] = np.arange(m, dtype=_I64)
    pos = r.copy()
    while True:
        chase = (pos >= 2 * m) & ((pos - 2 * m) % 2 == 1)
        if not chase.any():
            break
        pos[chase] = r[(pos[chase] - 2 * m) // 2]
    in_seed = pos < 2 * m
    targets = np.where(in_seed,
                       seed_flat[np.minimum(pos, 2 * m - 1)],
                       m + 1 + ((pos - 2 * m) // 2) // m)
    sources = m + 1 + j // m
    u = np.concatenate([seed_u, sources])
    v = np.concatenate([seed_v, targets])
    return _finish(n, u, v, "barabasi_albert_fast", m=m)


def powerlaw_cm(n: int, exponent: float = 2.5, min_degree: int = 2,
                seed: int | None = None) -> EdgeArrayGraph:
    """Power-law configuration model (heavy-tailed hub degrees).

    Degrees are drawn from the discrete Pareto tail
    ``d = floor(min_degree * U^(-1/(exponent-1)))`` clipped to ``n - 1``,
    the stub multiset is shuffled once, and consecutive stubs are paired.
    Self-loops and multi-edges of the pairing collapse in
    canonicalization (the standard simple-graph projection); the
    vectorized union-find then chains any stranded components.  The hub
    tail directly stresses the degree-reduction layer (E7/E8 regimes) at
    sizes the object generators cannot reach.
    """
    if n < 3:
        raise GraphError("powerlaw_cm requires n >= 3")
    if exponent <= 1.0:
        raise GraphError("powerlaw_cm requires exponent > 1")
    min_degree = max(1, min(int(min_degree), n - 1))
    rng = np.random.default_rng(seed)
    tail = rng.random(n) ** (-1.0 / (exponent - 1.0))
    deg = np.minimum(np.floor(min_degree * tail).astype(_I64), n - 1)
    if int(deg.sum()) % 2:
        room = np.nonzero(deg < n - 1)[0]
        if room.size:
            deg[room[0]] += 1
        else:
            deg[0] -= 1
    stubs = np.repeat(np.arange(n, dtype=_I64), deg)
    stubs = stubs[rng.permutation(stubs.size)]
    return _finish(n, stubs[0::2], stubs[1::2], "powerlaw_cm",
                   exponent=float(exponent), min_degree=int(min_degree))


def small_world_fast(n: int, k: int = 4, p: float = 0.2,
                     seed: int | None = None) -> EdgeArrayGraph:
    """Watts–Strogatz small world, vectorized ring lattice + rewiring.

    The ``k``-nearest-neighbour ring lattice is ``k/2`` shifted copies of
    ``arange(n)``; one Bernoulli mask selects the edges to rewire and one
    uniform draw replaces their far endpoints.  Rewiring conflicts
    (self-loops, duplicate edges) collapse in canonicalization and the
    union-find repair restores connectivity, so no retry loop is needed.
    """
    if n < 5:
        raise GraphError("small_world_fast requires n >= 5")
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must lie in [0, 1]")
    k = max(2, min(int(k), n - 1))
    k -= k % 2
    rng = np.random.default_rng(seed)
    half = k // 2
    base = np.arange(n, dtype=_I64)
    u = np.tile(base, half)
    v = np.concatenate([(base + shift) % n for shift in range(1, half + 1)])
    rewire = rng.random(u.size) < p
    v = v.copy()
    v[rewire] = rng.integers(0, n, size=int(rewire.sum()), dtype=_I64)
    return _finish(n, u, v, "small_world_fast", k=int(k), p=float(p))


def kronecker(n: int, edge_factor: int = 4, a: float = 0.57, b: float = 0.19,
              c: float = 0.19, seed: int | None = None) -> EdgeArrayGraph:
    """Stochastic Kronecker (R-MAT) graph with skewed hub structure.

    Each of ``edge_factor * n`` edges picks one quadrant per bit level
    with probabilities ``(a, b, c, 1-a-b-c)``; the chosen quadrant bits
    assemble the two endpoints.  All levels of all edges are drawn as one
    uniform matrix and reduced with bit arithmetic.  Endpoints landing at
    or above ``n`` (when ``n`` is not a power of two) are discarded and
    connectivity is repaired over the survivors.
    """
    if n < 2:
        raise GraphError("kronecker requires n >= 2")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise GraphError("kronecker needs a, b, c >= 0 with a + b + c < 1")
    edge_factor = max(1, int(edge_factor))
    rng = np.random.default_rng(seed)
    levels = max(1, math.ceil(math.log2(n)))
    draws = rng.random((edge_factor * n, levels))
    # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
    ubit = draws >= a + b
    vbit = ((draws >= a) & (draws < a + b)) | (draws >= a + b + c)
    weights = (_I64(1) << np.arange(levels, dtype=_I64))
    u = (ubit * weights).sum(axis=1)
    v = (vbit * weights).sum(axis=1)
    inside = (u < n) & (v < n)
    return _finish(n, u[inside], v[inside], "kronecker",
                   edge_factor=int(edge_factor),
                   a=float(a), b=float(b), c=float(c))


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: Array-native family registry: name -> ``(n, seed=..., **params) ->
#: EdgeArrayGraph``.  Every entry also appears in
#: :data:`repro.graphs.generators.GRAPH_FAMILIES` (materialized through
#: ``to_networkx``) so both backends sample the identical graph.
FAST_FAMILIES: Dict[str, Callable[..., EdgeArrayGraph]] = {
    "erdos_renyi_fast": lambda n, seed=None, p=None: erdos_renyi_fast(
        max(n, 2), p=p, seed=seed),
    "random_geometric_fast": lambda n, seed=None, radius=None:
        random_geometric_fast(max(n, 2), radius=radius, seed=seed),
    "barabasi_albert_fast": lambda n, seed=None, m=2: barabasi_albert_fast(
        max(n, 3), m=m, seed=seed),
    "powerlaw_cm": lambda n, seed=None, exponent=2.5, min_degree=2:
        powerlaw_cm(max(n, 3), exponent=exponent, min_degree=min_degree,
                    seed=seed),
    "small_world_fast": lambda n, seed=None, k=4, p=0.2: small_world_fast(
        max(n, 5), k=k, p=p, seed=seed),
    "kronecker": lambda n, seed=None, edge_factor=4, a=0.57, b=0.19, c=0.19:
        kronecker(max(n, 2), edge_factor=edge_factor, a=a, b=b, c=c,
                  seed=seed),
}


def fast_family_names() -> list:
    """Sorted names of the array-native graph families."""
    return sorted(FAST_FAMILIES)


def make_fast_graph(family: str, n: int, seed: int | None = None,
                    **params: object) -> EdgeArrayGraph:
    """Instantiate an array-native family as an :class:`EdgeArrayGraph`."""
    try:
        factory = FAST_FAMILIES[family]
    except KeyError as exc:
        raise GraphError(
            f"unknown fast graph family {family!r}; "
            f"known: {fast_family_names()}") from exc
    return factory(n, seed=seed, **params)
