"""Flat edge-array graph container for the large-n construction fast path.

An :class:`EdgeArrayGraph` holds a simple undirected graph on nodes
``0 .. n-1`` as two parallel numpy arrays of endpoints -- nothing is stored
per node or per edge as a Python object.  It is what the vectorized
generators in :mod:`repro.graphs.fast_generators` produce and what the
CSR-direct array-network build path in :mod:`repro.sim.array_kernel`
consumes: the cached CSR adjacency built here *is* the kernel topology, so
at n = 10k+ a network materializes without ever touching
:mod:`networkx`.

Every consumer that genuinely needs an object graph keeps working: the
container materializes (and caches) an equivalent :class:`networkx.Graph`
on first request through :meth:`to_networkx`, inserting nodes and edges in
the same canonical order an eager build would have used, so downstream
structures (channel creation order, adjacency iteration, snapshots) are
byte-identical between the two construction routes.

Canonical form
--------------
The constructor normalizes any edge soup into the canonical layout the
rest of the pipeline relies on: endpoints ordered ``u < v`` within each
edge, edges sorted lexicographically by ``(u, v)``, self-loops dropped and
duplicates collapsed.  Connectivity queries and repair run over the same
arrays via a vectorized union-find (:func:`union_find_labels`), never
through ``nx.connected_components``.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import networkx as nx
import numpy as np

from ..exceptions import GraphError

__all__ = [
    "EdgeArrayGraph",
    "canonical_edge_arrays",
    "union_find_labels",
    "connect_components",
]

_I64 = np.int64


def canonical_edge_arrays(n: int, u: np.ndarray, v: np.ndarray
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Normalize endpoint arrays to the canonical simple-graph layout.

    Orders each pair ``u < v``, drops self-loops, deduplicates, and sorts
    edges lexicographically.  Raises on endpoints outside ``[0, n)``.
    """
    u = np.asarray(u, dtype=_I64).ravel()
    v = np.asarray(v, dtype=_I64).ravel()
    if u.shape != v.shape:
        raise GraphError("edge endpoint arrays must have equal length")
    if u.size:
        if int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= n:
            raise GraphError(f"edge endpoint outside [0, {n})")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    # Lexicographic sort + dedup via the linearized pair key (n <= 2**31
    # keeps the product comfortably inside int64).
    key = lo * _I64(n) + hi
    key = np.unique(key)
    return (key // n).astype(_I64), (key % n).astype(_I64)


def union_find_labels(n: int, u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Connected-component labels via a vectorized union-find.

    Shiloach--Vishkin style: alternate full pointer-jumping passes with a
    minimum-root hooking step over all edges until no edge spans two
    components.  Converges in O(log n) vectorized rounds; the returned
    label of each node is the smallest node id in its component.
    """
    parent = np.arange(n, dtype=_I64)
    if u.size == 0:
        return parent
    while True:
        # Full path compression: parent becomes the component root.
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                break
            parent = grand
        ru = parent[u]
        rv = parent[v]
        lo = np.minimum(ru, rv)
        hi = np.maximum(ru, rv)
        cross = lo != hi
        if not cross.any():
            return parent
        # Hook the larger root onto the smaller; minimum.at resolves
        # conflicting hooks of one round deterministically (min wins).
        np.minimum.at(parent, hi[cross], lo[cross])


def connect_components(n: int, u: np.ndarray, v: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Repair connectivity by chaining component representatives.

    Components are identified with :func:`union_find_labels`; the smallest
    node of each component (its label) represents it, and consecutive
    representatives in increasing order are linked.  Purely structural and
    deterministic: the repair depends only on the input edge set.
    """
    labels = union_find_labels(n, u, v)
    reps = np.unique(labels)
    if reps.size <= 1:
        return u, v
    extra_u, extra_v = reps[:-1], reps[1:]
    return np.concatenate([u, extra_u]), np.concatenate([v, extra_v])


class EdgeArrayGraph:
    """A simple undirected graph on ``0..n-1`` as flat endpoint arrays.

    Parameters
    ----------
    n:
        Number of nodes (all of ``0..n-1`` are nodes, even if isolated --
        though validated graphs are connected, so none are).
    edges_u, edges_v:
        Parallel endpoint arrays; normalized to canonical form (``u < v``,
        lexicographically sorted, simple) by the constructor.
    family:
        Family tag recorded in :attr:`graph` metadata (mirrors the
        ``graph.graph["family"]`` convention of the nx generators).
    validate:
        When true (the default), verify connectivity immediately;
        otherwise :meth:`validate` may be called later (the CSR-direct
        network build does, exactly once).
    """

    __slots__ = ("n", "edges_u", "edges_v", "graph", "validated",
                 "_csr", "_nx")

    def __init__(self, n: int, edges_u: np.ndarray, edges_v: np.ndarray, *,
                 family: str = "unknown", validate: bool = True,
                 metadata: Optional[Dict[str, object]] = None):
        if n < 1:
            raise GraphError("EdgeArrayGraph requires n >= 1")
        self.n = int(n)
        self.edges_u, self.edges_v = canonical_edge_arrays(n, edges_u, edges_v)
        #: Graph-level metadata, mirroring ``nx.Graph.graph``.
        self.graph: Dict[str, object] = {"family": family}
        if metadata:
            self.graph.update(metadata)
        self._csr: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._nx: Optional[nx.Graph] = None
        self.validated = False
        if validate:
            self.validate()

    # -- sizes and basic accessors ---------------------------------------------

    def number_of_nodes(self) -> int:
        return self.n

    def number_of_edges(self) -> int:
        return int(self.edges_u.size)

    @property
    def nodes(self) -> range:
        """Node ids (always the contiguous integers ``0..n-1``)."""
        return range(self.n)

    @property
    def edges(self) -> Iterator[Tuple[int, int]]:
        """Edges as ``(u, v)`` int tuples in canonical (sorted) order."""
        return zip(self.edges_u.tolist(), self.edges_v.tolist())

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Sorted neighbour ids of ``v`` (a CSR row slice)."""
        indptr, nbr = self.csr()
        if not 0 <= v < self.n:
            raise GraphError(f"node {v} not in graph")
        return tuple(nbr[int(indptr[v]):int(indptr[v + 1])].tolist())

    def degree_array(self) -> np.ndarray:
        """Degree of every node as one int64 array."""
        indptr, _ = self.csr()
        return np.diff(indptr)

    # -- derived structures ----------------------------------------------------

    def csr(self) -> Tuple[np.ndarray, np.ndarray]:
        """Cached CSR adjacency ``(indptr, neighbours)`` over node ids.

        Built entirely with array primitives: both edge directions are
        concatenated, lexsorted by (row, column), and the row counts
        prefix-summed into ``indptr``.  Each row's neighbour slice comes
        out sorted by id, matching the object backend's per-node views.
        """
        cache = self._csr
        if cache is None:
            rows = np.concatenate([self.edges_u, self.edges_v])
            cols = np.concatenate([self.edges_v, self.edges_u])
            order = np.lexsort((cols, rows))
            nbr = cols[order]
            indptr = np.zeros(self.n + 1, dtype=_I64)
            np.cumsum(np.bincount(rows, minlength=self.n), out=indptr[1:])
            cache = (indptr, nbr)
            self._csr = cache
        return cache

    def to_networkx(self) -> nx.Graph:
        """The equivalent :class:`networkx.Graph`, built lazily and cached.

        Nodes are inserted as ``0..n-1`` and edges in canonical sorted
        order -- the exact insertion order an eager builder iterating a
        sorted edge list would produce, so everything keyed on nx
        iteration order (channel creation, adjacency dicts) is identical
        between the array and object construction routes.
        """
        g = self._nx
        if g is None:
            g = nx.Graph()
            g.add_nodes_from(range(self.n))
            g.add_edges_from(zip(self.edges_u.tolist(), self.edges_v.tolist()))
            g.graph.update(self.graph)
            self._nx = g
        return g

    # -- validation ------------------------------------------------------------

    def is_connected(self) -> bool:
        """Connectivity via the vectorized union-find over the edge arrays."""
        labels = union_find_labels(self.n, self.edges_u, self.edges_v)
        return bool((labels == 0).all())

    def validate(self) -> "EdgeArrayGraph":
        """Verify the container is a usable workload instance.

        Canonical form already guarantees simplicity and no self-loops;
        what remains is connectivity (every generator repairs it, but
        hand-built containers may not).  Idempotent and cached.
        """
        if not self.validated:
            if self.n > 1 and self.edges_u.size == 0:
                raise GraphError("edge-array graph has no edges")
            if not self.is_connected():
                raise GraphError("edge-array graph is not connected")
            self.validated = True
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EdgeArrayGraph(n={self.n}, m={self.number_of_edges()}, "
                f"family={self.graph.get('family', 'unknown')!r})")
