"""Spanning-tree utilities: construction, fundamental cycles, edge swaps.

These are *centralised* helpers used by baselines, by the reference engine and
by the verification layer.  The distributed protocol itself (``repro.core``)
never calls into this module -- nodes there only use local information -- but
tests use these functions as ground truth.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence

import networkx as nx
import numpy as np

from ..exceptions import GraphError, NotASpanningTreeError, NotConnectedError
from ..types import Edge, NodeId, canonical_edge, canonical_edges

__all__ = [
    "bfs_spanning_tree",
    "dfs_spanning_tree",
    "random_spanning_tree",
    "minimum_spanning_tree",
    "parent_map_from_edges",
    "edges_from_parent_map",
    "tree_degrees",
    "tree_degree",
    "non_tree_edges",
    "fundamental_cycle",
    "fundamental_cycle_edges",
    "swap_edges",
    "is_spanning_tree",
    "tree_path",
]


def _require_connected(graph: nx.Graph) -> None:
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    if not nx.is_connected(graph):
        raise NotConnectedError("graph is not connected")


# ---------------------------------------------------------------------------
# Spanning-tree construction
# ---------------------------------------------------------------------------

def bfs_spanning_tree(graph: nx.Graph, root: NodeId | None = None) -> set[Edge]:
    """Breadth-first-search spanning tree rooted at ``root`` (default: min id).

    This mirrors the output of the paper's underlying spanning-tree module
    (a simplified Afek–Kutten–Yung BFS rooted at the minimum identifier).
    """
    _require_connected(graph)
    if root is None:
        root = min(graph.nodes)
    if root not in graph:
        raise GraphError(f"root {root} is not a node of the graph")
    edges: set[Edge] = set()
    visited = {root}
    queue: deque[NodeId] = deque([root])
    while queue:
        u = queue.popleft()
        for v in sorted(graph.neighbors(u)):
            if v not in visited:
                visited.add(v)
                edges.add(canonical_edge(u, v))
                queue.append(v)
    return edges


def dfs_spanning_tree(graph: nx.Graph, root: NodeId | None = None) -> set[Edge]:
    """Depth-first-search spanning tree rooted at ``root`` (default: min id).

    DFS trees tend to have low degree (they are path-like on dense graphs),
    making them a strong "cheap" baseline for experiment E6.
    """
    _require_connected(graph)
    if root is None:
        root = min(graph.nodes)
    if root not in graph:
        raise GraphError(f"root {root} is not a node of the graph")
    edges: set[Edge] = set()
    visited = {root}
    stack: List[NodeId] = [root]
    while stack:
        u = stack[-1]
        advanced = False
        for v in sorted(graph.neighbors(u)):
            if v not in visited:
                visited.add(v)
                edges.add(canonical_edge(u, v))
                stack.append(v)
                advanced = True
                break
        if not advanced:
            stack.pop()
    return edges


def random_spanning_tree(graph: nx.Graph, seed: int | None = None) -> set[Edge]:
    """Uniform-ish random spanning tree via a random-order Kruskal pass.

    Edges are shuffled with a seeded generator and added greedily when they
    join two different components (union-find).  This is not exactly uniform
    over spanning trees but is cheap, seeded and adequately "random" for use
    as an arbitrary initial tree in self-stabilization experiments.
    """
    _require_connected(graph)
    rng = np.random.default_rng(seed)
    edge_list = [canonical_edge(u, v) for u, v in graph.edges]
    order = rng.permutation(len(edge_list))
    parent: Dict[NodeId, NodeId] = {v: v for v in graph.nodes}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges: set[Edge] = set()
    for idx in order:
        u, v = edge_list[int(idx)]
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            edges.add((u, v))
            if len(edges) == graph.number_of_nodes() - 1:
                break
    return edges


def minimum_spanning_tree(graph: nx.Graph, weight: str = "weight") -> set[Edge]:
    """Minimum-weight spanning tree (unweighted graphs: an arbitrary tree)."""
    _require_connected(graph)
    t = nx.minimum_spanning_tree(graph, weight=weight)
    return canonical_edges(t.edges)


# ---------------------------------------------------------------------------
# Representation conversions
# ---------------------------------------------------------------------------

def parent_map_from_edges(nodes: Iterable[NodeId], edges: Iterable[Edge],
                          root: NodeId | None = None) -> Dict[NodeId, NodeId]:
    """Orient a spanning-tree edge set towards ``root`` (default: min node).

    Returns a ``node -> parent`` map with the root self-parented.  Raises
    :class:`NotASpanningTreeError` if the edge set does not span the nodes.
    """
    nodes = list(nodes)
    edge_set = canonical_edges(edges)
    adj: Dict[NodeId, List[NodeId]] = {v: [] for v in nodes}
    for u, v in edge_set:
        if u not in adj or v not in adj:
            raise NotASpanningTreeError(f"edge ({u},{v}) uses a node outside the node set")
        adj[u].append(v)
        adj[v].append(u)
    if root is None:
        root = min(nodes)
    parent: Dict[NodeId, NodeId] = {root: root}
    queue: deque[NodeId] = deque([root])
    while queue:
        u = queue.popleft()
        for v in adj[u]:
            if v not in parent:
                parent[v] = u
                queue.append(v)
    if len(parent) != len(nodes):
        raise NotASpanningTreeError(
            f"edge set spans {len(parent)} of {len(nodes)} nodes (not a spanning tree)")
    if len(edge_set) != len(nodes) - 1:
        raise NotASpanningTreeError(
            f"edge set has {len(edge_set)} edges, expected {len(nodes) - 1}")
    return parent


def edges_from_parent_map(parent: Dict[NodeId, NodeId]) -> set[Edge]:
    """Convert a ``node -> parent`` map into a canonical edge set."""
    return {canonical_edge(v, p) for v, p in parent.items() if p != v}


# ---------------------------------------------------------------------------
# Degrees, non-tree edges, fundamental cycles
# ---------------------------------------------------------------------------

def tree_degrees(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> Dict[NodeId, int]:
    """Per-node degree in the tree given by ``edges`` (``deg_T(v)``)."""
    degrees = {v: 0 for v in nodes}
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees


def tree_degree(nodes: Iterable[NodeId], edges: Iterable[Edge]) -> int:
    """Maximum node degree of the tree (``deg(T)``); 0 for a single node."""
    degrees = tree_degrees(nodes, edges)
    return max(degrees.values()) if degrees else 0


def non_tree_edges(graph: nx.Graph, tree_edges: Iterable[Edge]) -> set[Edge]:
    """Edges of the graph that are not in the tree (each defines one
    fundamental cycle)."""
    tset = canonical_edges(tree_edges)
    return {canonical_edge(u, v) for u, v in graph.edges} - tset


def tree_path(tree_edges: Iterable[Edge], source: NodeId, target: NodeId) -> List[NodeId]:
    """Unique path from ``source`` to ``target`` inside the tree.

    Raises :class:`NotASpanningTreeError` if no path exists (the edge set is
    not a tree containing both endpoints).
    """
    adj: Dict[NodeId, List[NodeId]] = {}
    for u, v in canonical_edges(tree_edges):
        adj.setdefault(u, []).append(v)
        adj.setdefault(v, []).append(u)
    if source == target:
        return [source]
    if source not in adj or target not in adj:
        raise NotASpanningTreeError(
            f"nodes {source} and/or {target} do not appear in the tree edge set")
    prev: Dict[NodeId, NodeId] = {source: source}
    queue: deque[NodeId] = deque([source])
    while queue:
        u = queue.popleft()
        if u == target:
            break
        for v in adj[u]:
            if v not in prev:
                prev[v] = u
                queue.append(v)
    if target not in prev:
        raise NotASpanningTreeError(f"no tree path between {source} and {target}")
    path = [target]
    while path[-1] != source:
        path.append(prev[path[-1]])
    path.reverse()
    return path


def fundamental_cycle(tree_edges: Iterable[Edge], non_tree_edge: Edge) -> List[NodeId]:
    """Node sequence of the fundamental cycle of ``non_tree_edge``.

    The returned list starts at one endpoint of the non-tree edge and ends at
    the other; closing the cycle with the non-tree edge itself is implicit.
    This matches the ``path`` carried by the paper's ``Search`` messages.
    """
    u, v = non_tree_edge
    return tree_path(tree_edges, u, v)


def fundamental_cycle_edges(tree_edges: Iterable[Edge], non_tree_edge: Edge) -> List[Edge]:
    """Tree edges of the fundamental cycle of ``non_tree_edge`` (in path order)."""
    path = fundamental_cycle(tree_edges, non_tree_edge)
    return [canonical_edge(a, b) for a, b in zip(path, path[1:])]


def swap_edges(tree_edges: Iterable[Edge], add: Edge, remove: Edge) -> set[Edge]:
    """Return a new edge set with ``add`` inserted and ``remove`` deleted.

    The caller is responsible for choosing ``remove`` on the fundamental cycle
    of ``add``; under that condition the result is again a spanning tree.
    """
    edges = set(canonical_edges(tree_edges))
    add = canonical_edge(*add)
    remove = canonical_edge(*remove)
    if remove not in edges:
        raise NotASpanningTreeError(f"edge {remove} is not a tree edge")
    if add in edges:
        raise NotASpanningTreeError(f"edge {add} is already a tree edge")
    edges.remove(remove)
    edges.add(add)
    return edges


def is_spanning_tree(graph: nx.Graph, edges: Iterable[Edge]) -> bool:
    """``True`` iff ``edges`` forms a spanning tree of ``graph``.

    Checks edge membership in the graph, edge count ``n - 1``, and
    connectivity of the induced subgraph.
    """
    nodes = list(graph.nodes)
    edge_set = canonical_edges(edges)
    if len(edge_set) != len(nodes) - 1:
        return False
    graph_edges = {canonical_edge(u, v) for u, v in graph.edges}
    if not edge_set <= graph_edges:
        return False
    try:
        parent_map_from_edges(nodes, edge_set)
    except NotASpanningTreeError:
        return False
    return True
