"""Serialisation of networks and trees to simple text formats.

Experiments write their instances and resulting trees to disk so that runs
can be replayed and inspected.  The formats are intentionally trivial
(whitespace-separated edge lists with ``#``-comments) so that they can be
consumed by external tools and diffed by humans.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Iterable

import networkx as nx

from ..exceptions import GraphError
from ..types import Edge, NodeId, canonical_edge

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_tree",
    "read_tree",
    "graph_to_dict",
    "graph_from_dict",
    "write_graph_json",
    "read_graph_json",
]


def write_edge_list(graph: nx.Graph, path: str | Path) -> None:
    """Write ``graph`` as an edge list: one ``u v`` pair per line.

    The node count is recorded in a header comment so isolated nodes (never
    produced by our generators, but accepted on read) round-trip correctly.
    """
    path = Path(path)
    lines = [f"# nodes {graph.number_of_nodes()}",
             f"# family {graph.graph.get('family', 'unknown')}"]
    for u, v in sorted(canonical_edge(u, v) for u, v in graph.edges):
        lines.append(f"{u} {v}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _read_text_maybe_gzip(path: Path) -> str:
    """File contents, transparently decompressing ``.gz`` archives."""
    if path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            return fh.read()
    return path.read_text(encoding="utf-8")


def read_edge_list(path: str | Path) -> nx.Graph:
    """Read a whitespace-separated edge list, tolerantly.

    Accepts our own :func:`write_edge_list` output and the common
    real-topology variants (SNAP / Pajek exports):

    * gzip-compressed files (any path ending in ``.gz``);
    * ``#`` and ``%`` comment lines, including SNAP's
      ``# Nodes: N Edges: M`` header (the node count is honoured so
      trailing isolated ids round-trip);
    * arbitrary whitespace (tabs, runs of spaces) between columns;
    * extra trailing columns (edge weights/timestamps are ignored);
    * self-loop lines, which are dropped (our networks are simple).
    """
    path = Path(path)
    g = nx.Graph()
    declared_nodes: int | None = None
    for raw in _read_text_maybe_gzip(path).splitlines():
        line = raw.strip()
        if not line:
            continue
        if line[0] in "#%":
            parts = line[1:].replace(":", " ").split()
            lowered = [p.lower() for p in parts]
            if len(parts) >= 2 and lowered[0] == "nodes":
                try:
                    declared_nodes = int(parts[1])
                except ValueError:
                    pass
            elif len(parts) >= 2 and lowered[0] == "family":
                g.graph["family"] = parts[1]
            continue
        parts = line.split()
        if len(parts) < 2:
            raise GraphError(f"malformed edge-list line: {raw!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphError(f"malformed edge-list line: {raw!r}") from exc
        if u == v:
            continue
        g.add_edge(u, v)
    if declared_nodes is not None:
        g.add_nodes_from(range(declared_nodes))
    return g


def write_tree(edges: Iterable[Edge], path: str | Path) -> None:
    """Write a tree edge set, one canonical ``u v`` pair per line."""
    path = Path(path)
    lines = [f"{u} {v}" for u, v in sorted(canonical_edge(u, v) for u, v in edges)]
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")


def read_tree(path: str | Path) -> set[Edge]:
    """Read a tree edge set written by :func:`write_tree`."""
    path = Path(path)
    edges: set[Edge] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise GraphError(f"malformed tree line: {raw!r}")
        edges.add(canonical_edge(int(parts[0]), int(parts[1])))
    return edges


def graph_to_dict(graph: nx.Graph) -> Dict:
    """JSON-serialisable dict representation of a graph."""
    return {
        "nodes": sorted(int(v) for v in graph.nodes),
        "edges": sorted([int(u), int(v)] for u, v in
                        (canonical_edge(u, v) for u, v in graph.edges)),
        "family": graph.graph.get("family", "unknown"),
    }


def graph_from_dict(data: Dict) -> nx.Graph:
    """Inverse of :func:`graph_to_dict`."""
    g = nx.Graph()
    g.add_nodes_from(int(v) for v in data.get("nodes", []))
    g.add_edges_from((int(u), int(v)) for u, v in data.get("edges", []))
    if "family" in data:
        g.graph["family"] = data["family"]
    return g


def write_graph_json(graph: nx.Graph, path: str | Path) -> None:
    """Write a graph as JSON (nodes, edges, family)."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2), encoding="utf-8")


def read_graph_json(path: str | Path) -> nx.Graph:
    """Read a graph written by :func:`write_graph_json`."""
    return graph_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))
