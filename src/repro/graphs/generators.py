"""Graph generators used throughout the experiments.

All generators return simple, undirected, connected :class:`networkx.Graph`
instances whose nodes are the integers ``0 .. n-1``.  Node identifiers double
as the unique processor identifiers required by the paper (each node has a
unique, totally ordered ``ID_v``).

The generators are deterministic given a seed: every random family threads an
explicit ``seed`` argument through :func:`numpy.random.default_rng` so that
experiments are reproducible run-to-run.

Families
--------
The families were chosen to exercise the minimum-degree spanning tree
algorithm in qualitatively different regimes:

* *dense* graphs (complete, dense Erdős–Rényi) where Δ* = 2 (a Hamiltonian
  path exists) but naive trees have huge degree;
* *sparse* random graphs (connected Erdős–Rényi, random geometric) typical of
  ad-hoc / sensor deployments motivating the paper;
* *structured* graphs (grid, torus, hypercube, ring with chords) with known
  optimal degrees;
* *adversarial* graphs (star-of-cliques, spider, lollipop, caterpillar with
  hubs) that contain high-degree hubs and blocking nodes, stressing the
  Deblock recursion.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Mapping, Optional

import networkx as nx
import numpy as np

from ..exceptions import GraphError
from .fast_generators import FAST_FAMILIES, make_fast_graph

__all__ = [
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "wheel_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "ring_with_chords",
    "erdos_renyi_connected",
    "random_geometric_connected",
    "barabasi_albert_graph",
    "watts_strogatz_connected",
    "random_regular_connected",
    "star_of_cliques",
    "spider_graph",
    "lollipop_graph",
    "barbell_graph",
    "caterpillar_with_hubs",
    "hard_hub_graph",
    "dense_hamiltonian_graph",
    "two_hub_graph",
    "GRAPH_FAMILIES",
    "FAMILY_PARAMS",
    "make_graph",
    "family_names",
    "family_info",
    "validate_graph_params",
]


def _finalize(g: nx.Graph, name: str) -> nx.Graph:
    """Relabel nodes to ``0..n-1`` ints, verify simple/connected, tag name."""
    g = nx.convert_node_labels_to_integers(g, ordering="sorted")
    g.remove_edges_from(nx.selfloop_edges(g))
    if g.number_of_nodes() == 0:
        raise GraphError(f"generator {name!r} produced an empty graph")
    if not nx.is_connected(g):
        raise GraphError(f"generator {name!r} produced a disconnected graph")
    g.graph["family"] = name
    return g


# ---------------------------------------------------------------------------
# Deterministic structured families
# ---------------------------------------------------------------------------

def complete_graph(n: int) -> nx.Graph:
    """Complete graph ``K_n`` (Δ* = 2 for n >= 2: any Hamiltonian path)."""
    if n < 1:
        raise GraphError("complete_graph requires n >= 1")
    return _finalize(nx.complete_graph(n), "complete")


def cycle_graph(n: int) -> nx.Graph:
    """Cycle ``C_n`` (n >= 3).  Every spanning tree is a path, so Δ* = 2."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    return _finalize(nx.cycle_graph(n), "cycle")


def path_graph(n: int) -> nx.Graph:
    """Path ``P_n``; the graph is already its own (unique) spanning tree."""
    if n < 2:
        raise GraphError("path_graph requires n >= 2")
    return _finalize(nx.path_graph(n), "path")


def star_graph(n: int) -> nx.Graph:
    """Star with ``n`` leaves; the unique spanning tree has degree ``n``.

    This is the canonical example where *no* improvement is possible: the
    centre is a cut vertex adjacent to every leaf, hence Δ* = n and the
    algorithm must terminate immediately with the star itself.
    """
    if n < 1:
        raise GraphError("star_graph requires n >= 1 leaves")
    return _finalize(nx.star_graph(n), "star")


def wheel_graph(n: int) -> nx.Graph:
    """Wheel: a hub connected to every node of a cycle ``C_{n-1}`` (Δ* = 2... 3)."""
    if n < 4:
        raise GraphError("wheel_graph requires n >= 4")
    return _finalize(nx.wheel_graph(n), "wheel")


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """2D grid graph ``rows x cols`` (Δ* <= 3 for non-degenerate grids)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid_graph requires positive dimensions")
    if rows * cols < 2:
        raise GraphError("grid_graph requires at least 2 nodes")
    return _finalize(nx.grid_2d_graph(rows, cols), "grid")


def torus_graph(rows: int, cols: int) -> nx.Graph:
    """2D torus (grid with wrap-around edges)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus_graph requires both dimensions >= 3")
    return _finalize(nx.grid_2d_graph(rows, cols, periodic=True), "torus")


def hypercube_graph(dim: int) -> nx.Graph:
    """Hypercube ``Q_dim`` with ``2**dim`` nodes."""
    if dim < 1:
        raise GraphError("hypercube_graph requires dim >= 1")
    return _finalize(nx.hypercube_graph(dim), "hypercube")


def ring_with_chords(n: int, chords: int, seed: int | None = None) -> nx.Graph:
    """Cycle ``C_n`` augmented with ``chords`` random chords.

    A classical testbed for fundamental-cycle based algorithms: every chord
    defines exactly one fundamental cycle with respect to the ring.
    """
    if n < 4:
        raise GraphError("ring_with_chords requires n >= 4")
    rng = np.random.default_rng(seed)
    g = nx.cycle_graph(n)
    max_chords = n * (n - 1) // 2 - n
    chords = min(chords, max_chords)
    added = 0
    attempts = 0
    while added < chords and attempts < 50 * (chords + 1):
        attempts += 1
        u, v = rng.integers(0, n, size=2)
        u, v = int(u), int(v)
        if u == v or g.has_edge(u, v):
            continue
        g.add_edge(u, v)
        added += 1
    return _finalize(g, "ring_with_chords")


# ---------------------------------------------------------------------------
# Random families
# ---------------------------------------------------------------------------

def erdos_renyi_connected(n: int, p: float, seed: int | None = None,
                          max_tries: int = 200) -> nx.Graph:
    """Connected Erdős–Rényi graph ``G(n, p)``.

    The generator retries with fresh randomness (derived from ``seed``) until
    a connected sample is found; if ``p`` is too small for connectivity to be
    plausible, the sample is patched by linking its components with random
    edges so that the function always succeeds deterministically.
    """
    if n < 2:
        raise GraphError("erdos_renyi_connected requires n >= 2")
    if not (0.0 <= p <= 1.0):
        raise GraphError("p must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    g = None
    for _ in range(max_tries):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        g = nx.gnp_random_graph(n, p, seed=sub_seed)
        if nx.is_connected(g):
            return _finalize(g, "erdos_renyi")
    # Patch connectivity: connect consecutive components with a random edge.
    assert g is not None
    comps = [list(c) for c in nx.connected_components(g)]
    for a, b in zip(comps, comps[1:]):
        u = a[int(rng.integers(0, len(a)))]
        v = b[int(rng.integers(0, len(b)))]
        g.add_edge(u, v)
    return _finalize(g, "erdos_renyi")


def random_geometric_connected(n: int, radius: float | None = None,
                               seed: int | None = None) -> nx.Graph:
    """Connected random geometric graph in the unit square.

    Models the wireless ad-hoc / sensor deployments motivating the paper.
    When ``radius`` is omitted a radius slightly above the connectivity
    threshold ``sqrt(log n / (pi n))`` is used.
    """
    if n < 2:
        raise GraphError("random_geometric_connected requires n >= 2")
    if radius is None:
        radius = 1.4 * math.sqrt(math.log(max(n, 2)) / (math.pi * n))
    rng = np.random.default_rng(seed)
    for _ in range(200):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        g = nx.random_geometric_graph(n, radius, seed=sub_seed)
        if nx.is_connected(g):
            return _finalize(g, "random_geometric")
        radius *= 1.1
    raise GraphError("could not generate a connected random geometric graph")


def barabasi_albert_graph(n: int, m: int = 2, seed: int | None = None) -> nx.Graph:
    """Barabási–Albert preferential-attachment graph (hubs; always connected)."""
    if n < 3:
        raise GraphError("barabasi_albert_graph requires n >= 3")
    m = max(1, min(m, n - 1))
    g = nx.barabasi_albert_graph(n, m, seed=seed)
    return _finalize(g, "barabasi_albert")


def watts_strogatz_connected(n: int, k: int = 4, p: float = 0.2,
                             seed: int | None = None) -> nx.Graph:
    """Connected Watts–Strogatz small-world graph."""
    if n < 5:
        raise GraphError("watts_strogatz_connected requires n >= 5")
    k = max(2, min(k, n - 1))
    g = nx.connected_watts_strogatz_graph(n, k, p, tries=200, seed=seed)
    return _finalize(g, "watts_strogatz")


def random_regular_connected(n: int, d: int = 3, seed: int | None = None) -> nx.Graph:
    """Connected random ``d``-regular graph (``n*d`` must be even)."""
    if n < d + 1:
        raise GraphError("random_regular_connected requires n > d")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph")
    rng = np.random.default_rng(seed)
    for _ in range(200):
        sub_seed = int(rng.integers(0, 2**31 - 1))
        g = nx.random_regular_graph(d, n, seed=sub_seed)
        if nx.is_connected(g):
            return _finalize(g, "random_regular")
    raise GraphError("could not generate a connected random regular graph")


# ---------------------------------------------------------------------------
# Adversarial / hub-heavy families
# ---------------------------------------------------------------------------

def star_of_cliques(hub_count: int, clique_size: int) -> nx.Graph:
    """Several cliques, each attached to a dedicated hub, hubs on a cycle.

    Every hub is adjacent to all nodes of its clique, giving several
    simultaneous maximum-degree nodes.  The paper highlights (vs. Blin–Butelle)
    that its algorithm can decrease the degree of *all* maximum-degree nodes
    simultaneously; experiment E7 uses this family.
    """
    if hub_count < 2 or clique_size < 2:
        raise GraphError("star_of_cliques requires hub_count >= 2, clique_size >= 2")
    g = nx.Graph()
    hubs = list(range(hub_count))
    next_id = hub_count
    for h in hubs:
        members = list(range(next_id, next_id + clique_size))
        next_id += clique_size
        for i, u in enumerate(members):
            g.add_edge(h, u)
            for v in members[i + 1:]:
                g.add_edge(u, v)
    for i in range(hub_count):
        g.add_edge(hubs[i], hubs[(i + 1) % hub_count])
    return _finalize(g, "star_of_cliques")


def spider_graph(legs: int, leg_length: int) -> nx.Graph:
    """A centre node with ``legs`` paths of ``leg_length`` nodes attached.

    The centre is a cut vertex of degree ``legs``; no improvement is possible,
    so Δ* = legs.  Useful to check that the algorithm does not loop forever
    looking for improvements that do not exist.
    """
    if legs < 1 or leg_length < 1:
        raise GraphError("spider_graph requires legs >= 1 and leg_length >= 1")
    g = nx.Graph()
    centre = 0
    nid = 1
    for _ in range(legs):
        prev = centre
        for _ in range(leg_length):
            g.add_edge(prev, nid)
            prev = nid
            nid += 1
    return _finalize(g, "spider")


def lollipop_graph(clique_size: int, path_length: int) -> nx.Graph:
    """Clique ``K_m`` attached to a path of ``path_length`` nodes."""
    if clique_size < 3 or path_length < 1:
        raise GraphError("lollipop_graph requires clique_size >= 3, path_length >= 1")
    return _finalize(nx.lollipop_graph(clique_size, path_length), "lollipop")


def barbell_graph(clique_size: int, path_length: int = 0) -> nx.Graph:
    """Two cliques ``K_m`` joined by a path."""
    if clique_size < 3:
        raise GraphError("barbell_graph requires clique_size >= 3")
    return _finalize(nx.barbell_graph(clique_size, path_length), "barbell")


def caterpillar_with_hubs(spine_length: int, leaves_per_hub: int,
                          extra_edges: int = 0, seed: int | None = None) -> nx.Graph:
    """A spine path whose every node carries ``leaves_per_hub`` leaves, plus
    optional random extra edges between leaves of adjacent hubs.

    Without the extra edges the caterpillar is a tree (its own MDST); the
    extra edges create improving edges that let hub degrees be reduced.
    """
    if spine_length < 2 or leaves_per_hub < 1:
        raise GraphError("caterpillar requires spine_length >= 2, leaves_per_hub >= 1")
    rng = np.random.default_rng(seed)
    g = nx.Graph()
    spine = list(range(spine_length))
    nx.add_path(g, spine)
    nid = spine_length
    leaves: dict[int, list[int]] = {}
    for s in spine:
        leaves[s] = []
        for _ in range(leaves_per_hub):
            g.add_edge(s, nid)
            leaves[s].append(nid)
            nid += 1
    added = 0
    attempts = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        i = int(rng.integers(0, spine_length - 1))
        u = leaves[i][int(rng.integers(0, leaves_per_hub))]
        v = leaves[i + 1][int(rng.integers(0, leaves_per_hub))]
        if not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return _finalize(g, "caterpillar_with_hubs")


def hard_hub_graph(hub_degree: int, seed: int | None = None) -> nx.Graph:
    """A hub of high degree whose neighbours form a sparse cycle.

    The hub has degree ``hub_degree`` in the graph; its neighbours form a
    cycle, so Δ* = 3 or less while a BFS tree rooted anywhere near the hub
    has degree ``hub_degree``.  Designed so that many successive improvements
    are required, exercising the Remove/Back/Reverse pipeline repeatedly.
    """
    if hub_degree < 3:
        raise GraphError("hard_hub_graph requires hub_degree >= 3")
    g = nx.Graph()
    hub = 0
    ring = list(range(1, hub_degree + 1))
    for u in ring:
        g.add_edge(hub, u)
    for i, u in enumerate(ring):
        g.add_edge(u, ring[(i + 1) % len(ring)])
    return _finalize(g, "hard_hub")


def dense_hamiltonian_graph(n: int, extra_edge_prob: float = 0.5,
                            seed: int | None = None) -> nx.Graph:
    """Graph guaranteed to contain a Hamiltonian path (hence Δ* = 2).

    A path over a random permutation of nodes plus random extra edges.
    Since the optimal degree is known exactly (2), these graphs give a sharp
    test of the Δ*+1 guarantee on instances where exact solving is infeasible.
    """
    if n < 2:
        raise GraphError("dense_hamiltonian_graph requires n >= 2")
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for a, b in zip(perm, perm[1:]):
        g.add_edge(int(a), int(b))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < extra_edge_prob:
                g.add_edge(u, v)
    g.graph["hamiltonian_path"] = [int(x) for x in perm]
    return _finalize(g, "dense_hamiltonian")


def two_hub_graph(leaf_count: int) -> nx.Graph:
    """Two adjacent hubs sharing ``leaf_count`` common neighbours.

    Each shared leaf is adjacent to both hubs, so leaves can be re-parented
    from one hub to the other: the MDST balances the hub degrees, giving
    Δ* = ceil(leaf_count / 2) + 1.  A compact instance whose optimum is known
    in closed form, used in unit tests.
    """
    if leaf_count < 2:
        raise GraphError("two_hub_graph requires leaf_count >= 2")
    g = nx.Graph()
    a, b = 0, 1
    g.add_edge(a, b)
    for i in range(leaf_count):
        leaf = 2 + i
        g.add_edge(a, leaf)
        g.add_edge(b, leaf)
    return _finalize(g, "two_hub")


# ---------------------------------------------------------------------------
# Family registry
# ---------------------------------------------------------------------------

#: Registry mapping a family name to a ``(callable, default_kwargs)`` pair.
#: Callables take ``n`` (target size) and ``seed`` and return a graph whose
#: node count is *approximately* ``n`` (exact for most families).
GRAPH_FAMILIES: Dict[str, Callable[..., nx.Graph]] = {
    "complete": lambda n, seed=None: complete_graph(n),
    "cycle": lambda n, seed=None: cycle_graph(max(n, 3)),
    "path": lambda n, seed=None: path_graph(max(n, 2)),
    "star": lambda n, seed=None: star_graph(max(n - 1, 1)),
    "wheel": lambda n, seed=None: wheel_graph(max(n, 4)),
    "grid": lambda n, seed=None: grid_graph(max(int(round(math.sqrt(n))), 2),
                                            max(int(round(math.sqrt(n))), 2)),
    "torus": lambda n, seed=None: torus_graph(max(int(round(math.sqrt(n))), 3),
                                              max(int(round(math.sqrt(n))), 3)),
    "hypercube": lambda n, seed=None: hypercube_graph(max(int(round(math.log2(max(n, 2)))), 1)),
    "ring_with_chords": lambda n, seed=None, chords=None: ring_with_chords(
        max(n, 4), max(n // 3, 1) if chords is None else int(chords), seed=seed),
    "erdos_renyi_sparse": lambda n, seed=None, p=None: erdos_renyi_connected(
        n, min(1.0, 2.5 * math.log(max(n, 2)) / max(n, 2)) if p is None else p,
        seed=seed),
    "erdos_renyi_dense": lambda n, seed=None, p=0.5: erdos_renyi_connected(
        n, p, seed=seed),
    "random_geometric": lambda n, seed=None, radius=None:
        random_geometric_connected(n, radius=radius, seed=seed),
    "barabasi_albert": lambda n, seed=None, m=2: barabasi_albert_graph(
        max(n, 3), int(m), seed=seed),
    "watts_strogatz": lambda n, seed=None, k=4, p=0.2:
        watts_strogatz_connected(max(n, 5), int(k), p, seed=seed),
    "random_regular": lambda n, seed=None, d=3: random_regular_connected(
        n if (n * int(d)) % 2 == 0 else n + 1, int(d), seed=seed),
    "star_of_cliques": lambda n, seed=None: star_of_cliques(max(n // 5, 2), 4),
    "barbell": lambda n, seed=None: barbell_graph(
        max(n // 2, 3), max(n - 2 * max(n // 2, 3), 0)),
    "spider": lambda n, seed=None: spider_graph(max(n // 4, 2), 3),
    "lollipop": lambda n, seed=None: lollipop_graph(max(n // 2, 3), max(n // 2, 1)),
    "two_hub": lambda n, seed=None: two_hub_graph(max(n - 2, 2)),
    "hard_hub": lambda n, seed=None: hard_hub_graph(max(n - 1, 3)),
    "dense_hamiltonian": lambda n, seed=None: dense_hamiltonian_graph(n, 0.4, seed=seed),
    "caterpillar": lambda n, seed=None: caterpillar_with_hubs(
        max(n // 5, 2), 4, extra_edges=max(n // 5, 1), seed=seed),
}


def _register_fast_families() -> None:
    """Expose every array-native family through the object registry too.

    The object-path entry materializes ``to_networkx()`` of the *same*
    :class:`~repro.graphs.edge_array.EdgeArrayGraph` the array backend
    consumes directly, so both backends always sample the identical graph
    for a given ``(family, n, seed, params)``.
    """
    for fast_name in FAST_FAMILIES:
        def entry(n, seed=None, _f=fast_name, **params):
            return make_fast_graph(_f, n, seed=seed, **params).to_networkx()
        GRAPH_FAMILIES[fast_name] = entry


_register_fast_families()


#: Family-specific knobs accepted by :func:`make_graph` (and threaded from
#: ``repro run --graph-param key=value``).  Families not listed accept no
#: parameters; unknown keys fail fast with the allowed set in the message.
FAMILY_PARAMS: Dict[str, tuple] = {
    "ring_with_chords": ("chords",),
    "erdos_renyi_sparse": ("p",),
    "erdos_renyi_dense": ("p",),
    "random_geometric": ("radius",),
    "barabasi_albert": ("m",),
    "watts_strogatz": ("k", "p"),
    "random_regular": ("d",),
    "erdos_renyi_fast": ("p",),
    "random_geometric_fast": ("radius",),
    "barabasi_albert_fast": ("m",),
    "powerlaw_cm": ("exponent", "min_degree"),
    "small_world_fast": ("k", "p"),
    "kronecker": ("edge_factor", "a", "b", "c"),
}


def family_names() -> list[str]:
    """Sorted list of registered graph family names."""
    return sorted(GRAPH_FAMILIES)


def validate_graph_params(family: str,
                          params: Optional[Mapping[str, object]]) -> None:
    """Fail fast on parameters a family does not understand.

    Called by :func:`make_graph` and by the CLI before any sweep expands,
    so a typo'd ``--graph-param`` never reaches a worker process.
    """
    if family not in GRAPH_FAMILIES:
        raise GraphError(
            f"unknown graph family {family!r}; known: {family_names()}")
    if not params:
        return
    allowed = FAMILY_PARAMS.get(family, ())
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        accepts = (f"accepts {sorted(allowed)}" if allowed
                   else "accepts no parameters")
        raise GraphError(
            f"family {family!r} got unknown graph parameters {unknown}; "
            f"it {accepts}")


def family_info() -> list[dict]:
    """Rows describing every registered family (the ``repro graphs`` view).

    ``array_fast`` marks families with an array-native generator (usable
    with the CSR-direct construction path of ``--backend array``);
    ``params`` lists the ``--graph-param`` keys the family accepts and
    ``size_hint`` the practical instance-size envelope.
    """
    rows = []
    for name in family_names():
        fast = name in FAST_FAMILIES
        rows.append({
            "family": name,
            "array_fast": fast,
            "params": list(FAMILY_PARAMS.get(name, ())),
            "size_hint": ("vectorized construction; n up to ~100k"
                          if fast else
                          "object construction; keep n below ~5k"),
        })
    return rows


def make_graph(family: str, n: int, seed: int | None = None,
               params: Optional[Mapping[str, object]] = None) -> nx.Graph:
    """Instantiate a registered graph family with ~``n`` nodes.

    Parameters
    ----------
    family:
        Name of a family in :data:`GRAPH_FAMILIES`.
    n:
        Target number of nodes (families with structural constraints may
        round it, e.g. grids round to a square).
    seed:
        Seed for random families; ignored by deterministic ones.
    params:
        Family-specific knobs (see :data:`FAMILY_PARAMS`), e.g.
        ``{"m": 3}`` for ``barabasi_albert`` or ``{"exponent": 2.2}`` for
        ``powerlaw_cm``.  Unknown keys raise :class:`GraphError`.
    """
    validate_graph_params(family, params)
    factory = GRAPH_FAMILIES[family]
    return factory(n, seed=seed, **dict(params or {}))
