"""Graph substrate: generators, spanning-tree utilities, validation, I/O.

This subpackage provides everything the experiments need to *create* network
instances and everything the verification layer needs to *check* trees.  The
distributed protocol itself only sees a network through the simulator's
adjacency interface (:class:`repro.sim.network.Network`).
"""

from .edge_array import (
    EdgeArrayGraph,
    canonical_edge_arrays,
    connect_components,
    union_find_labels,
)
from .fast_generators import (
    FAST_FAMILIES,
    barabasi_albert_fast,
    erdos_renyi_fast,
    fast_family_names,
    kronecker,
    make_fast_graph,
    powerlaw_cm,
    random_geometric_fast,
    small_world_fast,
)
from .generators import (
    FAMILY_PARAMS,
    GRAPH_FAMILIES,
    barabasi_albert_graph,
    barbell_graph,
    caterpillar_with_hubs,
    complete_graph,
    cycle_graph,
    dense_hamiltonian_graph,
    erdos_renyi_connected,
    family_info,
    family_names,
    grid_graph,
    hard_hub_graph,
    hypercube_graph,
    lollipop_graph,
    make_graph,
    path_graph,
    random_geometric_connected,
    random_regular_connected,
    ring_with_chords,
    spider_graph,
    star_graph,
    star_of_cliques,
    torus_graph,
    two_hub_graph,
    validate_graph_params,
    watts_strogatz_connected,
    wheel_graph,
)
from .properties import (
    GraphSummary,
    cut_vertex_lower_bound,
    degree_histogram,
    density,
    is_hamiltonian_path_certificate,
    max_degree,
    mdst_lower_bound,
    min_degree,
    summarize,
)
from .spanning import (
    bfs_spanning_tree,
    dfs_spanning_tree,
    edges_from_parent_map,
    fundamental_cycle,
    fundamental_cycle_edges,
    is_spanning_tree,
    minimum_spanning_tree,
    non_tree_edges,
    parent_map_from_edges,
    random_spanning_tree,
    swap_edges,
    tree_degree,
    tree_degrees,
    tree_path,
)
from .validation import (
    check_distances,
    check_network,
    check_parent_map,
    check_spanning_tree,
    spanning_tree_violations,
)
from .io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_graph_json,
    read_tree,
    write_edge_list,
    write_graph_json,
    write_tree,
)

__all__ = [name for name in dir() if not name.startswith("_")]
