"""``repro`` -- command-line interface to the reproduction.

Six subcommands, all thin wrappers over :mod:`repro.runtime`:

``repro run``
    One protocol run on one graph instance; prints the result row.
    ``--protocol`` picks any entry of the protocol registry,
    ``--graph-param key=value`` tunes the generator, ``--graph-file``
    substitutes an edge list from disk for the generated family.
``repro sweep``
    A ``family x size x seed x scheduler x initial x protocol`` matrix
    executed by the parallel sweep engine, with optional on-disk caching
    and JSON export.
``repro bench``
    The paper's experiments E1-E8 on a named profile, optionally in
    parallel, with tables printed and optionally saved.
``repro report``
    Re-render previously saved report JSON (tables, CSV, aggregates).
``repro protocols``
    List the registered protocols (the :data:`repro.protocols.PROTOCOLS`
    registry) with their capabilities.
``repro graphs``
    List the registered graph families with their tunable parameters,
    whether each has a vectorized (array-fast) generator, and the
    practical size range.

The module doubles as an executable (``python -m repro.runtime.cli``) and
is installed as the ``repro`` console script by ``setup.py``.  All data
output goes to stdout; progress/statistics go to stderr so output files and
pipes stay clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from ..analysis.convergence import aggregate_records
from ..analysis.reporting import ExperimentReport
from ..analysis.tables import format_table
from ..exceptions import ReproError
from ..graphs.generators import (GRAPH_FAMILIES, family_info, family_names,
                                 validate_graph_params)
from ..protocols import (PROTOCOLS, capable_names, churn_capable_names,
                         protocol_names)
from .cache import ResultCache
from .engine import SweepEngine, default_workers
from .spec import RunSpec, SweepSpec
from .tasks import execute_spec, task_names

__all__ = ["main", "build_parser"]

#: Default columns shown by ``repro sweep`` for protocol-style rows (the
#: full row, including message histograms, is always in the JSON export).
SWEEP_COLUMNS = ("family", "n", "m", "seed", "scheduler", "initial",
                 "converged", "rounds", "messages", "tree_degree")

EXPERIMENT_IDS = ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8")


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(item) for item in _csv(text)]


def _status(message: str) -> None:
    print(message, file=sys.stderr)


def _parse_graph_params(pairs: Optional[Sequence[str]]) -> dict:
    """``--graph-param key=value`` pairs as a dict, values coerced.

    Values try int, then float, then stay strings -- the generator
    signatures take numbers, so the common case round-trips without
    quoting gymnastics.
    """
    params: dict = {}
    for item in pairs or ():
        key, sep, raw = item.partition("=")
        key, raw = key.strip(), raw.strip()
        if not sep or not key or not raw:
            raise ReproError(
                f"--graph-param expects key=value (got {item!r})")
        try:
            value: object = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key] = value
    return params


def _check_families(families: Sequence[str]) -> None:
    """Reject unknown graph families before any work is dispatched.

    Failing here -- rather than deep inside a worker process mid-sweep --
    keeps the error cheap and actionable: the message lists every
    registered family name.
    """
    unknown = sorted(set(families) - set(GRAPH_FAMILIES))
    if unknown:
        noun = "family" if len(unknown) == 1 else "families"
        raise ReproError(
            f"unknown graph {noun} {', '.join(repr(f) for f in unknown)}; "
            f"registered families: {', '.join(family_names())}")


def _check_protocols(protocols: Sequence[str]) -> None:
    """Reject unknown protocol names before any work is dispatched,
    mirroring :func:`_check_families`: the error lists every registry
    entry so a typo is a one-line fix, not a mid-sweep stack trace."""
    unknown = sorted(set(protocols) - set(PROTOCOLS))
    if unknown:
        noun = "protocol" if len(unknown) == 1 else "protocols"
        raise ReproError(
            f"unknown {noun} {', '.join(repr(p) for p in unknown)}; "
            f"registered protocols: {', '.join(protocol_names())}")


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    graph_params = _parse_graph_params(args.graph_param)
    if args.graph_file:
        # The file defines the instance; family/n/params would silently
        # not apply, so reject the combination outright.
        if graph_params:
            raise ReproError("--graph-param cannot be combined with "
                             "--graph-file (the file defines the instance)")
    else:
        _check_families([args.family])
        # Unknown parameter keys fail here, before any work is dispatched
        # (same rationale as _check_families).
        validate_graph_params(args.family, graph_params)
    _check_protocols([args.protocol])
    # Only the churn task reads the churn knobs; silently ignoring them
    # would let a static-topology row masquerade as a churn measurement.
    _check_churn_flags(args)
    _check_fault_flags(args)
    _check_churn_protocols(args, [args.protocol])
    _check_adversary_flags(args)
    _check_adversary_protocols(args, [args.protocol])
    _check_backend_flags(args, [args.protocol])
    spec = RunSpec(
        task=args.task,
        protocol=args.protocol,
        family=args.family,
        n=args.n,
        seed=args.seed,
        scheduler=args.scheduler,
        initial=args.initial,
        max_rounds=args.max_rounds,
        fault_round=args.fault_round,
        fault_fraction=args.fault_fraction,
        churn_rate=args.churn_rate,
        churn_start=args.churn_start,
        churn_events=args.churn_events,
        loss_rate=args.loss,
        dup_rate=args.dup,
        reorder_rate=args.reorder,
        crash_count=args.crash_count,
        crash_round=args.crash_round,
        crash_recover=args.crash_recover,
        byzantine_count=args.byzantine_count,
        byzantine_start=args.byzantine_start,
        byzantine_rounds=args.byzantine_rounds,
        backend=args.backend,
        graph_params=tuple(sorted(graph_params.items())),
        graph_file=args.graph_file,
    )
    outcome = execute_spec(spec)
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True, default=str))
    else:
        print(format_table([outcome.row], title=spec.label))
    return 0


#: Tasks that actually build a fault plan from the spec's fault knobs.
FAULT_CAPABLE_TASKS = ("protocol", "throughput", "churn", "adversary")

#: Tasks that actually build an adversary from the spec's adversary knobs.
ADVERSARY_CAPABLE_TASKS = ("protocol", "throughput", "churn", "adversary")


def _check_churn_flags(args: argparse.Namespace) -> None:
    """Churn knobs only mean something to the churn task (see cmd_run)."""
    if (args.churn_rate > 0 or args.churn_events > 0) and args.task != "churn":
        raise ReproError(
            f"--churn-rate/--churn-events require --task churn "
            f"(got --task {args.task})")


def _check_fault_flags(args: argparse.Namespace) -> None:
    """Only the protocol-style tasks inject the spec's fault plan; silently
    ignoring --fault-round elsewhere would let a clean-run row masquerade
    as a fault-recovery measurement (same rationale as the churn check)."""
    if args.fault_round is not None and args.task not in FAULT_CAPABLE_TASKS:
        raise ReproError(
            f"--fault-round requires --task "
            f"{'/'.join(FAULT_CAPABLE_TASKS)} (got --task {args.task})")


def _check_churn_protocols(args: argparse.Namespace,
                           protocols: Sequence[str]) -> None:
    """For churn sweeps, every protocol must be churn-capable up front."""
    if args.task != "churn":
        return
    unable = sorted(p for p in protocols if not PROTOCOLS[p].supports_churn)
    if unable:
        raise ReproError(
            f"protocol(s) {', '.join(repr(p) for p in unable)} do not "
            f"support topology churn; churn-capable protocols: "
            f"{', '.join(churn_capable_names())}")


def _adversary_flags_set(args: argparse.Namespace) -> bool:
    """Whether any adversary knob is non-default."""
    return (args.loss > 0 or args.dup > 0 or args.reorder > 0
            or args.crash_count > 0 or args.byzantine_count > 0)


def _check_adversary_flags(args: argparse.Namespace) -> None:
    """Early validation of the adversary knobs (see :func:`_check_churn_flags`).

    Rates must be probabilities, counts non-negative, and the knobs only
    mean something to the tasks that build an adversary from the spec;
    conversely ``--task adversary`` without any knob would measure nothing.
    """
    for name, rate in (("--loss", args.loss), ("--dup", args.dup),
                       ("--reorder", args.reorder)):
        if not (0.0 <= rate <= 1.0):
            raise ReproError(f"{name} must be in [0, 1] (got {rate})")
    for name, count in (("--crash-count", args.crash_count),
                        ("--byzantine-count", args.byzantine_count)):
        if count < 0:
            raise ReproError(f"{name} must be >= 0 (got {count})")
    if args.crash_recover is not None and args.crash_recover < 1:
        raise ReproError(
            f"--crash-recover must be >= 1 rounds (got {args.crash_recover}); "
            f"omit it for crash-stop")
    if _adversary_flags_set(args) and args.task not in ADVERSARY_CAPABLE_TASKS:
        raise ReproError(
            f"--loss/--dup/--reorder/--crash-*/--byzantine-* require --task "
            f"{'/'.join(ADVERSARY_CAPABLE_TASKS)} (got --task {args.task})")
    if args.task == "adversary" and not _adversary_flags_set(args):
        raise ReproError(
            "--task adversary needs at least one adversary knob "
            "(--loss/--dup/--reorder/--crash-count/--byzantine-count)")


def _check_adversary_protocols(args: argparse.Namespace,
                               protocols: Sequence[str]) -> None:
    """Every protocol must be capable of each enabled adversary model."""
    checks = (
        (args.loss > 0 or args.dup > 0 or args.reorder > 0,
         "supports_unreliable_channels", "unreliable channels"),
        (args.crash_count > 0, "supports_crash", "crash/recover faults"),
        (args.byzantine_count > 0, "supports_byzantine", "Byzantine gossip"),
    )
    for enabled, flag, what in checks:
        if not enabled:
            continue
        unable = sorted(p for p in protocols
                        if not getattr(PROTOCOLS[p], flag, False))
        if unable:
            raise ReproError(
                f"protocol(s) {', '.join(repr(p) for p in unable)} do not "
                f"support {what}; capable protocols: "
                f"{', '.join(capable_names(flag))}")


def _check_backend_flags(args: argparse.Namespace,
                         protocols: Sequence[str]) -> None:
    """Early validation of ``--backend`` (see :func:`_check_churn_flags`).

    The array kernel freezes the topology at build time and owns the
    channel objects, so churn and adversary models remain object-backend
    features; the runner enforces the same gating, but failing here keeps
    the error a one-line CLI fix instead of a mid-sweep stack trace.
    """
    if args.backend == "object":
        return
    if args.task == "churn" or args.churn_rate > 0 or args.churn_events > 0:
        raise ReproError("--backend array does not support topology churn")
    if args.task == "adversary" or _adversary_flags_set(args):
        raise ReproError("--backend array does not support adversary models")
    unable = sorted(p for p in protocols
                    if not getattr(PROTOCOLS[p], "supports_array_backend",
                                   False))
    if unable:
        raise ReproError(
            f"protocol(s) {', '.join(repr(p) for p in unable)} do not "
            f"support the array backend; capable protocols: "
            f"{', '.join(capable_names('supports_array_backend'))}")


def _sweep_from_args(args: argparse.Namespace) -> SweepSpec:
    graph_params = _parse_graph_params(args.graph_param)
    return SweepSpec(
        graph_params=tuple(sorted(graph_params.items())),
        families=tuple(args.families),
        sizes=tuple(args.sizes),
        repetitions=args.repetitions,
        master_seed=args.master_seed,
        seeds=tuple(args.seeds) if args.seeds else None,
        schedulers=tuple(args.schedulers),
        initials=tuple(args.initials),
        max_rounds=args.max_rounds,
        task=args.task,
        protocols=tuple(args.protocols),
        fault_round=args.fault_round,
        fault_fraction=args.fault_fraction,
        churn_rate=args.churn_rate,
        churn_start=args.churn_start,
        churn_events=args.churn_events,
        loss_rate=args.loss,
        dup_rate=args.dup,
        reorder_rate=args.reorder,
        crash_count=args.crash_count,
        crash_round=args.crash_round,
        crash_recover=args.crash_recover,
        byzantine_count=args.byzantine_count,
        byzantine_start=args.byzantine_start,
        byzantine_rounds=args.byzantine_rounds,
        backend=args.backend,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    _check_families(args.families)
    graph_params = _parse_graph_params(args.graph_param)
    for family in args.families:
        # Every family of the matrix must accept every parameter key.
        validate_graph_params(family, graph_params)
    _check_protocols(args.protocols)
    _check_churn_flags(args)
    _check_fault_flags(args)
    _check_churn_protocols(args, args.protocols)
    _check_adversary_flags(args)
    _check_adversary_protocols(args, args.protocols)
    _check_backend_flags(args, args.protocols)
    sweep = _sweep_from_args(args)
    specs = sweep.expand()
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    engine = SweepEngine(workers=args.workers, cache=cache)
    _status(f"sweep: {len(specs)} runs, {args.workers} worker(s)"
            + (f", cache at {args.cache_dir}" if args.cache_dir else ""))
    outcomes = engine.execute(specs)
    report = ExperimentReport(
        experiment="sweep",
        description=f"{sweep.task} sweep over {'/'.join(sweep.families)}")
    cross_protocol = sweep.protocols != ("mdst",)
    for outcome in outcomes:
        row = outcome.row
        if cross_protocol:
            # A cross-protocol report must keep every row attributable: the
            # task layer omits the key for the default protocol (that shape
            # is part of the byte-identity contract of the reproduction
            # tables, and what the per-spec cache stores), so the *report*
            # backfills it.  Default single-protocol MDST sweeps keep their
            # historical output untouched, table and JSON alike.
            row = {**row, "protocol": row.get("protocol", "mdst")}
        report.add_row(**row)
    stats = engine.last_stats
    _status(f"sweep: executed {stats.executed}, cache hits {stats.cache_hits}, "
            f"{stats.elapsed_s:.2f}s")
    columns = args.columns or (list(SWEEP_COLUMNS)
                               if sweep.task == "protocol" else None)
    if cross_protocol and columns is not None and not args.columns:
        columns.insert(columns.index("initial") + 1, "protocol")
    if args.csv:
        print(report.to_csv(columns=columns))
    else:
        print(report.to_table(columns=columns))
        records = [o.record for o in outcomes if o.record]
        if records:
            print("aggregate: "
                  + json.dumps(aggregate_records(records), sort_keys=True))
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report.to_json(), encoding="utf-8")
        _status(f"sweep: report written to {path}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from ..experiments.experiments import EXPERIMENTS, run_all_experiments

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    wanted = [e.upper() for e in args.experiments] if args.experiments else list(EXPERIMENT_IDS)
    unknown = sorted(set(wanted) - set(EXPERIMENT_IDS))
    if unknown:
        raise ReproError(f"unknown experiments {unknown}; known: {list(EXPERIMENT_IDS)}")
    reports = {}
    for exp_id in wanted:
        _status(f"bench: running {exp_id} on profile {args.profile!r} "
                f"with {args.workers} worker(s)")
        reports[exp_id] = EXPERIMENTS[exp_id](args.profile, workers=args.workers,
                                              cache=cache)
    for exp_id, report in reports.items():
        print(report.to_table())
        print()
    if args.output_dir:
        out = Path(args.output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for exp_id, report in reports.items():
            report.save(out / f"{exp_id}.json")
        _status(f"bench: {len(reports)} report(s) written to {out}")
    return 0


def cmd_protocols(args: argparse.Namespace) -> int:
    """List the registered protocols and their capabilities."""
    rows = []
    for name in protocol_names():
        adapter = PROTOCOLS[name]
        rows.append({
            "protocol": name,
            "churn": "yes" if adapter.supports_churn else "no",
            "faults": "yes" if adapter.supports_faults else "no",
            "lossy": "yes" if adapter.supports_unreliable_channels else "no",
            "crash": "yes" if adapter.supports_crash else "no",
            "byzantine": "yes" if adapter.supports_byzantine else "no",
            "array": "yes" if adapter.supports_array_backend else "no",
            "initial policies": "/".join(adapter.initial_policies),
            "description": adapter.description,
        })
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(format_table(rows, title="registered protocols"))
    return 0


def cmd_graphs(args: argparse.Namespace) -> int:
    """List the registered graph families, their parameters and size hints."""
    info = family_info()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    rows = []
    for entry in info:
        rows.append({
            "family": entry["family"],
            "array-fast": "yes" if entry["array_fast"] else "no",
            "params": ", ".join(entry["params"]) if entry["params"] else "-",
            "size hint": entry["size_hint"],
        })
    print(format_table(rows, title="registered graph families"))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    for path in args.paths:
        try:
            report = ExperimentReport.load(path)
        except (OSError, ValueError, KeyError) as exc:
            # malformed JSON (ValueError) or JSON that is not a report
            # (KeyError on the required keys)
            _status(f"error: cannot load report {path}: {exc!r}")
            return 1
        if args.group_by and args.value:
            aggregates = report.aggregate(args.group_by, args.value)
            print(format_table(
                [{args.group_by: k, f"mean_{args.value}": round(v, 3)}
                 for k, v in aggregates.items()],
                title=f"[{report.experiment}] mean {args.value} by {args.group_by}"))
        elif args.csv:
            print(report.to_csv(columns=args.columns))
        else:
            print(report.to_table(columns=args.columns))
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

def _add_adversary_flags(sub: argparse.ArgumentParser) -> None:
    """The adversary knobs, shared verbatim by ``run`` and ``sweep``."""
    sub.add_argument("--loss", type=float, default=0.0,
                     help="per-send probability of message loss")
    sub.add_argument("--dup", type=float, default=0.0,
                     help="per-send probability of message duplication")
    sub.add_argument("--reorder", type=float, default=0.0,
                     help="per-send probability of out-of-order insertion")
    sub.add_argument("--crash-count", type=int, default=0,
                     help="number of seeded-random nodes that crash")
    sub.add_argument("--crash-round", type=int, default=50,
                     help="round after which the crashes fire")
    sub.add_argument("--crash-recover", type=int, default=None,
                     help="rounds until crashed nodes recover with state "
                          "loss (omit for permanent crash-stop)")
    sub.add_argument("--byzantine-count", type=int, default=0,
                     help="number of seeded-random Byzantine nodes")
    sub.add_argument("--byzantine-start", type=int, default=10,
                     help="round after which Byzantine gossip starts")
    sub.add_argument("--byzantine-rounds", type=int, default=20,
                     help="length of the Byzantine activity window")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Self-stabilizing MDST reproduction: runs, sweeps, "
                    "benchmarks and reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the protocol once on one graph")
    run.add_argument("--family", default="erdos_renyi_sparse",
                     help="graph family (see `repro graphs`)")
    run.add_argument("--n", type=int, default=16, help="target node count")
    run.add_argument("--graph-param", action="append", default=None,
                     metavar="KEY=VALUE",
                     help="generator parameter, repeatable (e.g. "
                          "--graph-param p=0.05; see `repro graphs` for "
                          "each family's keys)")
    run.add_argument("--graph-file", default=None, metavar="PATH",
                     help="run on this edge-list file (plain or .gz; "
                          "'#'/'%%' comments and SNAP headers accepted) "
                          "instead of a generated family")
    run.add_argument("--seed", type=int, default=1, help="graph + run seed")
    run.add_argument("--scheduler", default="synchronous",
                     choices=("synchronous", "random", "adversarial",
                              "weighted"))
    run.add_argument("--initial", default="isolated",
                     help="initial-configuration policy; each protocol "
                          "declares its own set (see `repro protocols`), "
                          "e.g. bfs_tree/random_tree/isolated/corrupted "
                          "for mdst")
    run.add_argument("--max-rounds", type=int, default=5000)
    run.add_argument("--task", default="protocol", choices=task_names())
    run.add_argument("--protocol", default="mdst",
                     help="registered protocol to run (see `repro protocols`)")
    run.add_argument("--fault-round", type=int, default=None,
                     help="inject a transient fault after this round")
    run.add_argument("--fault-fraction", type=float, default=0.5,
                     help="fraction of nodes the fault corrupts")
    run.add_argument("--churn-rate", type=float, default=0.0,
                     help="topology events per round (use with --task churn)")
    run.add_argument("--churn-start", type=int, default=50,
                     help="first round after which churn may fire")
    run.add_argument("--churn-events", type=int, default=0,
                     help="total scheduled topology events")
    _add_adversary_flags(run)
    run.add_argument("--backend", default="object",
                     choices=("object", "array"),
                     help="simulation kernel: per-object message passing "
                          "or the vectorized array kernel (byte-identical "
                          "results, much faster at large n)")
    run.add_argument("--json", action="store_true",
                     help="print the full outcome as JSON instead of a table")
    run.set_defaults(func=cmd_run)

    sweep = sub.add_parser("sweep", help="run a matrix of configurations in parallel")
    sweep.add_argument("--families", type=_csv, default=["erdos_renyi_sparse"],
                       help="comma-separated graph families")
    sweep.add_argument("--sizes", type=_csv_ints, default=[12, 16],
                       help="comma-separated node counts")
    sweep.add_argument("--graph-param", action="append", default=None,
                       metavar="KEY=VALUE",
                       help="generator parameter applied to every family "
                            "of the matrix, repeatable (see `repro graphs`)")
    sweep.add_argument("--repetitions", type=int, default=1)
    sweep.add_argument("--master-seed", type=int, default=0,
                       help="per-repetition seeds are derived from this")
    sweep.add_argument("--seeds", type=_csv_ints, default=None,
                       help="explicit comma-separated seeds (overrides derivation)")
    sweep.add_argument("--schedulers", type=_csv, default=["synchronous"])
    sweep.add_argument("--initials", type=_csv, default=["isolated"])
    sweep.add_argument("--max-rounds", type=int, default=5000)
    sweep.add_argument("--task", default="protocol", choices=task_names())
    sweep.add_argument("--protocols", type=_csv, default=["mdst"],
                       help="comma-separated registered protocols; the "
                            "matrix multiplies across them "
                            "(see `repro protocols`)")
    sweep.add_argument("--fault-round", type=int, default=None,
                       help="inject a transient fault after this round "
                            "in every run of the matrix")
    sweep.add_argument("--fault-fraction", type=float, default=0.5,
                       help="fraction of nodes the fault corrupts")
    sweep.add_argument("--churn-rate", type=float, default=0.0,
                       help="topology events per round (use with --task churn)")
    sweep.add_argument("--churn-start", type=int, default=50,
                       help="first round after which churn may fire")
    sweep.add_argument("--churn-events", type=int, default=0,
                       help="total scheduled topology events per run")
    _add_adversary_flags(sweep)
    sweep.add_argument("--backend", default="object",
                       choices=("object", "array"),
                       help="simulation kernel for every run of the matrix "
                            "(byte-identical results; 'array' is the "
                            "vectorized large-n kernel)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = serial fallback; "
                            f"this machine's default would be {default_workers()})")
    sweep.add_argument("--cache-dir", default=None,
                       help="on-disk result cache; re-runs become incremental")
    sweep.add_argument("--output", default=None, help="write the report JSON here")
    sweep.add_argument("--columns", type=_csv, default=None,
                       help="columns to print (default: protocol summary)")
    sweep.add_argument("--csv", action="store_true", help="print CSV instead of a table")
    sweep.set_defaults(func=cmd_sweep)

    bench = sub.add_parser("bench", help="run the paper's experiments E1-E8")
    bench.add_argument("--experiments", type=_csv, default=None,
                       help="comma-separated subset, e.g. E2,E4 (default: all)")
    bench.add_argument("--profile", default="quick", choices=("quick", "full"),
                       help="experiment scale profile")
    bench.add_argument("--workers", type=int, default=1)
    bench.add_argument("--cache-dir", default=None)
    bench.add_argument("--output-dir", default=None,
                       help="directory for per-experiment report JSON")
    bench.set_defaults(func=cmd_bench)

    report = sub.add_parser("report", help="re-render saved report JSON")
    report.add_argument("paths", nargs="+", help="report JSON file(s)")
    report.add_argument("--columns", type=_csv, default=None)
    report.add_argument("--csv", action="store_true")
    report.add_argument("--group-by", default=None,
                        help="aggregate: group rows by this column")
    report.add_argument("--value", default=None,
                        help="aggregate: mean of this column per group")
    report.set_defaults(func=cmd_report)

    protocols = sub.add_parser(
        "protocols", help="list the registered protocols")
    protocols.add_argument("--json", action="store_true",
                           help="print the registry as JSON")
    protocols.set_defaults(func=cmd_protocols)

    graphs = sub.add_parser(
        "graphs", help="list the registered graph families")
    graphs.add_argument("--json", action="store_true",
                        help="print the family registry as JSON")
    graphs.set_defaults(func=cmd_graphs)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        _status(f"error: {exc}")
        return 1
    except OSError as exc:
        _status(f"error: {exc}")
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
