"""Task registry: the functions the sweep engine executes in worker processes.

Every task is a **module-level** function ``(RunSpec) -> RunOutcome`` so it
can be pickled by :class:`concurrent.futures.ProcessPoolExecutor`.  A task
receives only the spec -- it builds the graph itself from
``(family, n, seed)`` -- and returns a :class:`RunOutcome` whose ``row`` is a
plain JSON-serializable dict ready to be appended to an
:class:`~repro.analysis.reporting.ExperimentReport`.

The registry covers every kind of measurement the E1-E8 experiments need:

=============  ==============================================================
``protocol``   one :func:`~repro.protocols.runner.run_protocol` execution of
               the spec's registered protocol (E2, E4, E5 and the generic
               ``repro run`` / ``repro sweep``)
``reference``  the centralized reference engine (sanity sweeps)
``memory``     per-node state accounting without running the protocol (E3)
``quality``    exact/certified optimum + reference + FR + optional protocol
               degree on one instance (E1)
``baselines``  naive spanning trees vs reference vs local search (E6)
``hub``        serialized-vs-concurrent reduction model + protocol (E7)
``improvement`` single-improvement micro-benchmark on a hard-hub graph (E8)
``throughput`` timed protocol execution reporting rounds/sec (the large-n
               scaling and cross-protocol benchmarks; never cached)
``churn``      timed protocol execution under a live topology churn plan
               (node/edge joins and leaves through the network mutation
               APIs); reports recovery and throughput, never cached
``adversary``  timed protocol execution under the spec's adversary models
               (unreliable channels, crash/recover nodes, Byzantine
               gossip); reports a survival verdict and recovery rounds,
               never cached
=============  ==============================================================

The protocol-style tasks (``protocol``/``throughput``/``churn``) dispatch
on :attr:`~repro.runtime.spec.RunSpec.protocol` through the
:data:`repro.protocols.PROTOCOLS` registry and execute on the
activity-aware simulation kernel via
:func:`~repro.protocols.runner.run_protocol`; the spec's ``scheduler``
field names any kernel scheduling policy (``synchronous``/``random``/
``adversarial``/``weighted``), with per-node weights for the weighted-fair
policy supplied through the ``node_weights`` task parameter.  The
MDST-specific composite tasks (``quality``/``hub``/``improvement``/
``memory``/``reference``) reject specs naming any other protocol.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..analysis.convergence import ConvergenceRecord
from ..analysis.memory import memory_report
from ..baselines.blin_butelle import serialized_vs_concurrent_cost
from ..baselines.exact import exact_mdst_degree
from ..baselines.fuerer_raghavachari import fuerer_raghavachari
from ..baselines.local_search import greedy_local_search
from ..baselines.simple_trees import evaluate_simple_trees
from ..core.protocol import build_mdst_network, run_mdst
from ..core.reference import ReferenceMDST
from ..exceptions import ConfigurationError
from ..graphs.generators import hard_hub_graph
from ..graphs.properties import is_hamiltonian_path_certificate, mdst_lower_bound
from ..graphs.spanning import bfs_spanning_tree, tree_degree
from ..protocols.registry import capable_names, churn_capable_names, get_protocol
from ..protocols.runner import run_protocol
from ..sim.adversary import Adversary
from ..sim.faults import FaultPlan
from .spec import RunSpec

__all__ = ["RunOutcome", "TASKS", "UNCACHEABLE_TASKS", "execute_spec",
           "task_names"]


@dataclass
class RunOutcome:
    """The result of executing one :class:`RunSpec`.

    ``row`` is the experiment-facing view (a flat dict of JSON-friendly
    values); ``record`` is additionally populated by protocol-style tasks so
    outcomes can flow into the :class:`ConvergenceRecord` aggregation
    pipeline.  ``from_cache`` is transport metadata set by the engine, never
    persisted.
    """

    spec: RunSpec
    row: Dict[str, object]
    record: Optional[ConvergenceRecord] = None
    from_cache: bool = field(default=False, compare=False)

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec.to_dict(),
            "row": self.row,
            "record": dataclasses.asdict(self.record) if self.record else None,
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RunOutcome":
        record = data.get("record")
        return RunOutcome(
            spec=RunSpec.from_dict(data["spec"]),  # type: ignore[arg-type]
            row=dict(data["row"]),  # type: ignore[arg-type]
            record=ConvergenceRecord(**record) if record else None,
        )


# ---------------------------------------------------------------------------
# Helpers shared by the tasks
# ---------------------------------------------------------------------------

def _fault_plan(spec: RunSpec) -> Optional[FaultPlan]:
    if spec.fault_round is None:
        return None
    return FaultPlan().add(round_index=spec.fault_round,
                           node_fraction=spec.fault_fraction)


def _adversary(spec: RunSpec) -> Optional[Adversary]:
    """The spec's adversary, gated by the adapter's capability flags.

    Mirrors the churn task's early rejection: a spec pairing an adversary
    model with a protocol whose adapter does not declare the matching
    capability fails fast with the eligible protocols listed, instead of
    silently mislabelling a row.
    """
    adversary = spec.build_adversary()
    if adversary is None:
        return None
    adapter = get_protocol(spec.protocol)
    cm = adversary.channel_model
    if (cm is not None and not cm.is_reliable
            and not adapter.supports_unreliable_channels):
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support unreliable "
            f"channels; capable protocols: "
            f"{', '.join(capable_names('supports_unreliable_channels'))}")
    if adversary.node_faults is not None and not adapter.supports_crash:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support crash/recover "
            f"faults; capable protocols: "
            f"{', '.join(capable_names('supports_crash'))}")
    if adversary.byzantine is not None and not adapter.supports_byzantine:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support Byzantine gossip; "
            f"capable protocols: "
            f"{', '.join(capable_names('supports_byzantine'))}")
    return adversary


def _require_mdst(spec: RunSpec) -> None:
    """Guard for the MDST-specific composite tasks.

    ``quality``/``hub``/``improvement`` compare against Δ* oracles and
    count MDST message types, and ``memory``/``reference`` account MDST
    state -- none of that is meaningful for another registry entry, so a
    spec naming one fails fast instead of silently mislabelling a row.
    """
    if spec.protocol != "mdst":
        raise ConfigurationError(
            f"task {spec.task!r} is MDST-specific; got protocol "
            f"{spec.protocol!r} (use the protocol/throughput/churn tasks "
            f"for other registry entries)")


def _family_of(spec: RunSpec, graph) -> str:
    """The family column: for ``graph_file`` runs the file defines the
    instance, so the tag read from its header (or ``"file"``) replaces the
    spec's meaningless family default."""
    if spec.graph_file:
        return str(graph.graph.get("family", "file"))
    return spec.family


def _identify(spec: RunSpec, graph) -> Dict[str, object]:
    """The leading identity columns shared by the protocol-style rows.

    The ``protocol`` and ``backend`` columns appear only for non-default
    values: the E1-E8 reproduction tables predate the registry and the
    array kernel, and their rows are verified byte-identical across
    refactors, so the default MDST/object rows must keep their exact
    historical shape.
    """
    row: Dict[str, object] = {
        "family": _family_of(spec, graph),
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "seed": spec.seed,
        "scheduler": spec.scheduler,
        "initial": spec.initial,
    }
    if spec.protocol != "mdst":
        row["protocol"] = spec.protocol
    if spec.backend != "object":
        row["backend"] = spec.backend
    if spec.graph_params:
        row["graph_params"] = dict(spec.graph_params)
    if spec.graph_file:
        row["graph_file"] = spec.graph_file
    return row


def _record_for(spec: RunSpec, graph, result) -> ConvergenceRecord:
    return ConvergenceRecord(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        rounds=result.run.rounds,
        convergence_round=result.run.extra.get("convergence_round"),
        steps=result.run.steps,
        messages=result.run.messages,
        converged=result.run.converged,
        tree_degree=result.run.tree_degree,
        seed=spec.seed,
        family=spec.family,
        scheduler=spec.scheduler,
    )


def _known_optimal(graph, exact_limit: int = 12) -> Optional[int]:
    """Δ* when cheaply available: a certificate or the exact solver (small n)."""
    cert = graph.graph.get("hamiltonian_path")
    if cert and is_hamiltonian_path_certificate(graph, cert):
        return 2
    if graph.graph.get("family") == "two_hub":
        # L leaves each adjacent to both hubs: any tree needs deg(a)+deg(b) >= L+1,
        # and a balanced split achieves ceil((L+1)/2) = L//2 + 1.
        leaves = graph.number_of_nodes() - 2
        return leaves // 2 + 1
    if graph.number_of_nodes() <= exact_limit:
        return exact_mdst_degree(graph)
    return None


# ---------------------------------------------------------------------------
# Tasks
# ---------------------------------------------------------------------------

def run_protocol_task(spec: RunSpec) -> RunOutcome:
    """One full protocol execution; the workhorse of E2/E4/E5 and the CLI.

    Dispatches on ``spec.protocol`` through the registry: any registered
    protocol runs on the same kernel, with the same fault plans, and
    reports the same row shape.
    """
    graph = spec.build_graph()
    result = run_protocol(graph, spec.protocol_run_config(),
                          fault_plan=_fault_plan(spec),
                          adversary=_adversary(spec))
    record = _record_for(spec, graph, result)
    convergence_round = result.run.extra.get("convergence_round")
    row = _identify(spec, graph)
    row.update({
        "converged": result.converged,
        "rounds": convergence_round or result.rounds,
        "total_rounds": result.rounds,
        "steps": result.run.steps,
        "messages": result.run.messages,
        "tree_degree": result.tree_degree,
        "closure_violations": len(result.report.closure_violations),
        "max_message_bits": result.run.extra.get("max_message_bits", 0),
        "deliveries_by_type": result.run.extra.get("deliveries_by_type", {}),
    })
    if spec.adversary_enabled:
        # Only adversarial specs grow these columns: the E1-E8 rows are
        # verified byte-identical across refactors and must keep shape.
        row["adversary"] = result.run.extra.get("adversary", "")
        row["adversary_events"] = result.run.extra.get("adversary_events", 0)
    return RunOutcome(spec=spec, row=row, record=record)


def run_reference_task(spec: RunSpec) -> RunOutcome:
    """Centralized reference engine on one instance (no message passing)."""
    _require_mdst(spec)
    graph = spec.build_graph()
    initial = bfs_spanning_tree(graph)
    result = ReferenceMDST(graph, initial_tree=initial).run()
    row = {
        "family": _family_of(spec, graph),
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "seed": spec.seed,
        "bfs_degree": tree_degree(graph.nodes, initial),
        "reference_degree": result.final_degree,
        "lower_bound": mdst_lower_bound(graph),
    }
    return RunOutcome(spec=spec, row=row)


def run_memory_task(spec: RunSpec) -> RunOutcome:
    """Per-node state accounting vs the O(δ log n) envelope (E3)."""
    _require_mdst(spec)
    graph = spec.build_graph()
    network = build_mdst_network(graph, spec.mdst_config())
    row = memory_report(network).as_dict()
    row["family"] = _family_of(spec, graph)
    row["seed"] = spec.seed
    return RunOutcome(spec=spec, row=row)


def run_quality_task(spec: RunSpec) -> RunOutcome:
    """Degree quality of one instance vs Δ* and Fürer–Raghavachari (E1).

    Params: ``use_protocol`` (bool) and ``protocol_cap`` (max n for which the
    message-passing protocol is also run).
    """
    _require_mdst(spec)
    graph = spec.build_graph()
    optimal = _known_optimal(graph)
    reference = ReferenceMDST(graph).run()
    fr = fuerer_raghavachari(graph)
    row: Dict[str, object] = {
        "family": _family_of(spec, graph),
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "seed": spec.seed,
        "optimal": optimal,
        "lower_bound": mdst_lower_bound(graph),
        "bfs_degree": tree_degree(graph.nodes, bfs_spanning_tree(graph)),
        "reference_degree": reference.final_degree,
        "fr_degree": fr.final_degree,
    }
    record: Optional[ConvergenceRecord] = None
    use_protocol = bool(spec.param("use_protocol", True))
    # default cap = this graph's size, so a bare spec (e.g. from the CLI)
    # runs the protocol; E1 passes the profile's cap explicitly
    protocol_cap = int(spec.param("protocol_cap", graph.number_of_nodes()))
    if use_protocol and graph.number_of_nodes() <= protocol_cap:
        result = run_mdst(graph, spec.mdst_config())
        row["protocol_degree"] = result.tree_degree
        row["protocol_converged"] = result.converged
        record = _record_for(spec, graph, result)
    if optimal is not None:
        achieved = row.get("protocol_degree", reference.final_degree)
        row["within_one"] = achieved <= optimal + 1
    return RunOutcome(spec=spec, row=row, record=record)


def run_baselines_task(spec: RunSpec) -> RunOutcome:
    """Naive spanning trees vs reference MDST vs local search (E6)."""
    _require_mdst(spec)
    graph = spec.build_graph()
    naive = evaluate_simple_trees(graph, seed=spec.seed)
    reference = ReferenceMDST(graph).run()
    local = greedy_local_search(graph)
    row: Dict[str, object] = {
        "family": _family_of(spec, graph),
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "seed": spec.seed,
        "mdst_degree": reference.final_degree,
        "local_search_degree": local.final_degree,
        "lower_bound": mdst_lower_bound(graph),
    }
    for name, res in naive.items():
        row[f"{name}_degree"] = res.degree
    return RunOutcome(spec=spec, row=row)


def run_hub_task(spec: RunSpec) -> RunOutcome:
    """Serialized vs concurrent multi-hub reduction plus the real protocol (E7)."""
    _require_mdst(spec)
    graph = spec.build_graph()
    model = serialized_vs_concurrent_cost(graph)
    result = run_mdst(graph, spec.mdst_config())
    initial_deg = tree_degree(graph.nodes, bfs_spanning_tree(graph))
    row = {
        "hubs": spec.n // 5,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
        "initial_degree": initial_deg,
        "final_degree": model.final_degree,
        "swaps": model.swaps,
        "serialized_rounds": model.serialized_rounds,
        "concurrent_rounds": model.concurrent_rounds,
        "speedup": round(model.speedup, 2),
        "protocol_rounds": result.run.extra.get("convergence_round") or result.rounds,
        "protocol_degree": result.tree_degree,
        "protocol_converged": result.converged,
    }
    return RunOutcome(spec=spec, row=row, record=_record_for(spec, graph, result))


def run_improvement_task(spec: RunSpec) -> RunOutcome:
    """Cost of a single improvement on a hard-hub graph (E8, Figs 4-5).

    Params: ``hub_degree`` -- the fundamental-cycle length of the
    :func:`~repro.graphs.generators.hard_hub_graph` instance.
    """
    _require_mdst(spec)
    length = int(spec.param("hub_degree", spec.n))
    graph = hard_hub_graph(length)
    initial = bfs_spanning_tree(graph, root=0)
    initial_degree = tree_degree(graph.nodes, initial)
    result = run_mdst(graph, spec.mdst_config(), initial_tree=initial)
    by_type = result.run.extra.get("deliveries_by_type", {})
    row = {
        "hub_degree": length,
        "n": graph.number_of_nodes(),
        "initial_degree": initial_degree,
        "final_degree": result.tree_degree,
        "converged": result.converged,
        "rounds": result.run.extra.get("convergence_round") or result.rounds,
        "search_messages": by_type.get("Search", 0),
        "remove_messages": by_type.get("Remove", 0),
        "back_messages": by_type.get("Back", 0),
        "deblock_messages": by_type.get("Deblock", 0),
    }
    return RunOutcome(spec=spec, row=row, record=_record_for(spec, graph, result))


def run_throughput_task(spec: RunSpec) -> RunOutcome:
    """Kernel throughput measurement: simulated rounds per wall-clock second.

    Drives one full protocol execution (same code path as ``protocol``) and
    times the simulation only -- graph construction is excluded.  Used by the
    scaling benchmark (``benchmarks/test_bench_scaling.py``) and the
    cross-protocol benchmark (``benchmarks/test_bench_protocols.py``) to
    chart rounds/sec across network sizes, graph families and protocols.
    Convergence is reported but *not* required: large instances run against
    a fixed round budget.  The engine never caches these rows (see
    :data:`UNCACHEABLE_TASKS`) -- a cached wall-clock measurement would
    masquerade as a fresh one.

    Params: ``profile`` (int, default 0) -- when positive, the run executes
    under :mod:`cProfile` and the row grows a ``profile_top`` column with
    that many hottest functions by cumulative time (who-is-slow triage for
    kernel work, e.g. ``spec.with_params(profile=25)``).  Profiled
    timings carry interpreter tracing overhead and are *not* comparable to
    unprofiled rows; the column exists for ranking, not for rates.
    """
    graph = spec.build_graph()
    config = spec.protocol_run_config()
    adversary = _adversary(spec)
    profile_top = int(spec.param("profile", 0))
    profiler = None
    if profile_top > 0:
        import cProfile
        if config.backend == "array":
            # The array modules (and scipy underneath them) import lazily
            # on first use inside run_protocol.  In a cold process that
            # one-time import storm lands inside the profiled region and
            # drowns the vectorized round loop in importlib frames, so
            # warm it up before the profiler starts counting.
            import scipy.sparse              # noqa: F401
            import repro.sim.array_engine    # noqa: F401
            import repro.sim.array_kernel    # noqa: F401
            import repro.sim.array_substrates  # noqa: F401
        profiler = cProfile.Profile()
        profiler.enable()
    start = time.perf_counter()
    result = run_protocol(graph, config, fault_plan=_fault_plan(spec),
                          adversary=adversary)
    seconds = time.perf_counter() - start
    if profiler is not None:
        profiler.disable()
    row = _identify(spec, graph)
    row.update({
        "max_rounds": spec.max_rounds,
        "rounds": result.rounds,
        "converged": result.converged,
        "tree_degree": result.tree_degree,
        "seconds": round(seconds, 4),
        "rounds_per_sec": round(result.rounds / seconds, 2) if seconds > 0 else 0.0,
    })
    if profiler is not None:
        import pstats
        stats = pstats.Stats(profiler)
        entries = sorted(
            ((func, nc, ct, tt) for func, (_cc, nc, tt, ct, _callers)
             in stats.stats.items()),
            key=lambda item: item[2], reverse=True)
        row["profile_top"] = [
            {"function": f"{func[0]}:{func[1]}({func[2]})",
             "ncalls": nc,
             "cumtime": round(ct, 4),
             "tottime": round(tt, 4)}
            for func, nc, ct, tt in entries[:profile_top]]
    return RunOutcome(spec=spec, row=row, record=_record_for(spec, graph, result))


def run_churn_task(spec: RunSpec) -> RunOutcome:
    """Protocol execution under live topology churn (node/edge joins/leaves).

    Builds the spec's deterministic connectivity-preserving churn plan
    (:meth:`~repro.runtime.spec.RunSpec.build_churn_plan`), gives the
    spanning-tree layer ``n_upper`` headroom for the joins the plan may
    schedule, and runs the protocol through the churned execution.
    Convergence is judged against the *mutated* graph -- the legitimacy
    predicate reads the live network -- so ``converged`` doubles as the
    re-convergence-after-churn verdict.  ``recovery_rounds`` is the gap
    between the last applied churn event and the convergence round.  Rows
    carry wall-clock timing, so the engine never caches them (see
    :data:`UNCACHEABLE_TASKS`).

    Dispatches on ``spec.protocol``; protocols whose adapter declares
    ``supports_churn = False`` (the fixed-tree PIF aggregation) are
    rejected before any work happens.
    """
    adapter = get_protocol(spec.protocol)
    if not adapter.supports_churn:
        raise ConfigurationError(
            f"protocol {spec.protocol!r} does not support topology churn; "
            f"churn-capable protocols: {', '.join(churn_capable_names())}")
    graph = spec.build_graph()
    plan = spec.build_churn_plan(graph)
    config = spec.protocol_run_config()
    if plan is not None:
        # Joins may grow the network past the input size: keep the distance
        # bound legal for every topology the plan can produce.
        config.n_upper = graph.number_of_nodes() + spec.churn_events + 1
    adversary = _adversary(spec)
    start = time.perf_counter()
    result = run_protocol(graph, config, fault_plan=_fault_plan(spec),
                          churn_plan=plan, adversary=adversary)
    seconds = time.perf_counter() - start
    extra = result.run.extra
    convergence_round = extra.get("convergence_round")
    churn_rounds = extra.get("churn_rounds", [])
    recovery: Optional[int] = None
    if result.converged and convergence_round is not None and churn_rounds:
        recovery = convergence_round - max(churn_rounds)
    row = _identify(spec, graph)
    row.update({
        "churn_rate": spec.churn_rate,
        "churn_events": spec.churn_events,
        "churn_applied": extra.get("churn_applied", 0),
        "churn_skipped": extra.get("churn_skipped", 0),
        "dropped_messages": extra.get("dropped_messages", 0),
        "final_n": extra.get("final_n", graph.number_of_nodes()),
        "final_m": extra.get("final_m", graph.number_of_edges()),
        "converged": result.converged,
        "rounds": result.rounds,
        "convergence_round": convergence_round,
        "recovery_rounds": recovery,
        "steps": result.run.steps,
        "messages": result.run.messages,
        "tree_degree": result.tree_degree,
        "seconds": round(seconds, 4),
        "rounds_per_sec": round(result.rounds / seconds, 2) if seconds > 0 else 0.0,
    })
    if spec.adversary_enabled:
        # Adversary losses are accounted by the channel model, never in
        # ``dropped_messages`` (which is churn-only) -- the two columns
        # stay independently meaningful on a lossy churned run.
        row["adversary"] = extra.get("adversary", "")
        row["adversary_dropped"] = extra.get("adversary_dropped", 0)
    return RunOutcome(spec=spec, row=row, record=_record_for(spec, graph, result))


def run_adversary_task(spec: RunSpec) -> RunOutcome:
    """Protocol execution under the spec's adversary models.

    Builds the spec's :class:`~repro.sim.adversary.Adversary` (unreliable
    channels and/or crash/recover node faults and/or Byzantine gossip --
    :meth:`~repro.runtime.spec.RunSpec.build_adversary`), runs the protocol
    through the hostile execution, and reports a *survival verdict*:
    ``"recovered"`` when the legitimacy predicate re-stabilized after the
    last scheduled adversary event (or under continuous channel noise),
    ``"not_recovered"`` otherwise.  ``recovery_rounds`` is the gap between
    the last fired scheduled event and the convergence round (``None`` for
    channel-noise-only adversaries, which schedule no events).  Rows carry
    wall-clock timing, so the engine never caches them (see
    :data:`UNCACHEABLE_TASKS`).

    Dispatches on ``spec.protocol``; each enabled model is gated by the
    adapter's matching capability flag (``supports_unreliable_channels``/
    ``supports_crash``/``supports_byzantine``) before any work happens.
    """
    if not spec.adversary_enabled:
        raise ConfigurationError(
            "the adversary task needs at least one adversary knob "
            "(--loss/--dup/--reorder/--crash-count/--byzantine-count)")
    adversary = _adversary(spec)
    graph = spec.build_graph()
    config = spec.protocol_run_config()
    start = time.perf_counter()
    result = run_protocol(graph, config, fault_plan=_fault_plan(spec),
                          adversary=adversary)
    seconds = time.perf_counter() - start
    extra = result.run.extra
    convergence_round = extra.get("convergence_round")
    adversary_rounds = extra.get("adversary_rounds", [])
    recovery: Optional[int] = None
    if result.converged and convergence_round is not None and adversary_rounds:
        recovery = convergence_round - max(adversary_rounds)
    row = _identify(spec, graph)
    row.update({
        "adversary": extra.get("adversary", ""),
        "loss_rate": spec.loss_rate,
        "dup_rate": spec.dup_rate,
        "reorder_rate": spec.reorder_rate,
        "crash_count": spec.crash_count,
        "crash_recover": spec.crash_recover,
        "byzantine_count": spec.byzantine_count,
        "converged": result.converged,
        "verdict": "recovered" if result.converged else "not_recovered",
        "rounds": result.rounds,
        "convergence_round": convergence_round,
        "recovery_rounds": recovery,
        "adversary_events": extra.get("adversary_events", 0),
        "adversary_dropped": extra.get("adversary_dropped", 0),
        "adversary_duplicated": extra.get("adversary_duplicated", 0),
        "adversary_reordered": extra.get("adversary_reordered", 0),
        "node_crashes": extra.get("node_crashes", 0),
        "node_recoveries": extra.get("node_recoveries", 0),
        "byzantine_corruptions": extra.get("byzantine_corruptions", 0),
        "steps": result.run.steps,
        "messages": result.run.messages,
        "tree_degree": result.tree_degree,
        "seconds": round(seconds, 4),
        "rounds_per_sec": round(result.rounds / seconds, 2) if seconds > 0 else 0.0,
    })
    return RunOutcome(spec=spec, row=row, record=_record_for(spec, graph, result))


#: Tasks whose rows are wall-clock measurements: the engine never serves
#: them from (or writes them to) the result cache -- a cached timing row
#: would silently masquerade as a fresh measurement.
UNCACHEABLE_TASKS = frozenset({"throughput", "churn", "adversary"})

TASKS: Dict[str, Callable[[RunSpec], RunOutcome]] = {
    "protocol": run_protocol_task,
    "throughput": run_throughput_task,
    "churn": run_churn_task,
    "adversary": run_adversary_task,
    "reference": run_reference_task,
    "memory": run_memory_task,
    "quality": run_quality_task,
    "baselines": run_baselines_task,
    "hub": run_hub_task,
    "improvement": run_improvement_task,
}


def task_names() -> list:
    """Sorted names of the registered tasks."""
    return sorted(TASKS)


def execute_spec(spec: RunSpec) -> RunOutcome:
    """Execute one spec in the current process (the worker entry point)."""
    try:
        task = TASKS[spec.task]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown task {spec.task!r}; known: {task_names()}") from exc
    return task(spec)
