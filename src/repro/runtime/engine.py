"""The parallel sweep engine.

:class:`SweepEngine` takes an ordered list of :class:`~repro.runtime.spec.RunSpec`
and produces the matching ordered list of
:class:`~repro.runtime.tasks.RunOutcome`:

1. **cache lookup** -- specs with an entry in the (optional)
   :class:`~repro.runtime.cache.ResultCache` are resolved immediately;
2. **execution** -- the remaining specs run through
   :func:`~repro.runtime.tasks.execute_spec`, either in-process
   (``workers <= 1``, the exact serial code path the experiments always
   had) or fanned across a :class:`concurrent.futures.ProcessPoolExecutor`;
3. **merge** -- results are slotted back into input order, so the output is
   *independent of the worker count*: every run is fully determined by its
   spec (graph generation, scheduling and fault injection are all seeded),
   and ordering is restored after the fan-out.  ``--workers 4`` therefore
   yields byte-identical reports to ``--workers 1``.

The engine is deliberately ignorant of what a task *does* -- experiments,
benchmarks and the CLI all describe work as specs and share this one
execution path.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.convergence import ConvergenceRecord, aggregate_records
from ..analysis.reporting import ExperimentReport
from .cache import ResultCache
from .spec import RunSpec, SweepSpec
from .tasks import UNCACHEABLE_TASKS, RunOutcome, execute_spec

__all__ = ["SweepEngine", "EngineStats", "default_workers", "run_sweep"]


def default_workers() -> int:
    """A sensible default worker count: the CPU count, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


@dataclass
class EngineStats:
    """Accounting for one :meth:`SweepEngine.execute` call."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    workers: int = 1
    elapsed_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 3),
        }


@dataclass
class SweepEngine:
    """Execute run specs across worker processes with incremental caching.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (the default) executes serially in-process --
        the fallback path with zero multiprocessing machinery involved.
    cache:
        Optional on-disk result cache; hits skip execution entirely.
    chunksize:
        Specs per worker dispatch for the process pool (larger values
        amortize IPC for many tiny runs).
    """

    workers: int = 1
    cache: Optional[ResultCache] = None
    chunksize: int = 1
    last_stats: EngineStats = field(default_factory=EngineStats, repr=False)

    # -- core ------------------------------------------------------------------

    def execute(self, specs: Sequence[RunSpec]) -> List[RunOutcome]:
        """Run every spec and return outcomes in input order."""
        specs = list(specs)
        started = time.perf_counter()
        outcomes: List[Optional[RunOutcome]] = [None] * len(specs)
        pending: List[int] = []
        hits = 0
        for i, spec in enumerate(specs):
            # Timing tasks are never cached: a stored wall-clock measurement
            # would masquerade as a fresh one.
            cacheable = self.cache is not None and spec.task not in UNCACHEABLE_TASKS
            cached = self.cache.get(spec) if cacheable else None
            if cached is not None:
                outcomes[i] = cached
                hits += 1
            else:
                pending.append(i)
        fresh = self._run_pending([specs[i] for i in pending])
        for i, outcome in zip(pending, fresh):
            outcomes[i] = outcome
            if self.cache is not None and outcome.spec.task not in UNCACHEABLE_TASKS:
                self.cache.put(outcome)
        self.last_stats = EngineStats(
            total=len(specs),
            cache_hits=hits,
            executed=len(pending),
            workers=self.workers,
            elapsed_s=time.perf_counter() - started,
        )
        return outcomes  # type: ignore[return-value]

    def _run_pending(self, specs: List[RunSpec]) -> List[RunOutcome]:
        if not specs:
            return []
        if self.workers <= 1:
            return [execute_spec(spec) for spec in specs]
        max_workers = min(self.workers, len(specs))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(execute_spec, specs,
                                 chunksize=max(1, self.chunksize)))

    # -- convenience views -----------------------------------------------------

    def records(self, specs: Sequence[RunSpec]) -> List[ConvergenceRecord]:
        """Execute and keep only the convergence records (protocol tasks)."""
        return [o.record for o in self.execute(specs) if o.record is not None]

    def report(self, specs: Sequence[RunSpec], experiment: str = "sweep",
               description: str = "") -> ExperimentReport:
        """Execute and collect rows into an :class:`ExperimentReport`."""
        outcomes = self.execute(specs)
        report = ExperimentReport(experiment=experiment, description=description)
        for outcome in outcomes:
            report.add_row(**outcome.row)
        # volatile execution stats (elapsed time, worker count, hit counts)
        # stay on last_stats and out of the report, so saved reports are
        # byte-identical across worker counts and cache states
        return report

    def aggregate(self, specs: Sequence[RunSpec]) -> dict:
        """Execute and reduce the records via
        :func:`~repro.analysis.convergence.aggregate_records`."""
        return aggregate_records(self.records(specs))


def run_sweep(sweep: SweepSpec, workers: int = 1,
              cache: Optional[ResultCache] = None) -> ExperimentReport:
    """Expand a sweep matrix and execute it; the one-call convenience API.

    >>> report = run_sweep(SweepSpec(families=("wheel",), sizes=(8,)),
    ...                    workers=1)
    >>> report.rows[0]["converged"]
    True
    """
    engine = SweepEngine(workers=workers, cache=cache)
    outcomes = engine.execute(sweep.expand())
    report = ExperimentReport(
        experiment="sweep",
        description=f"{sweep.task} sweep over {'/'.join(sweep.families)}",
    )
    cross_protocol = sweep.protocols != ("mdst",)
    for outcome in outcomes:
        row = outcome.row
        if cross_protocol:
            # Keep every row of a cross-protocol report attributable; the
            # task layer omits the key for the default protocol (the
            # historical row shape) -- see cmd_sweep in runtime/cli.py.
            row = {**row, "protocol": row.get("protocol", "mdst")}
        report.add_row(**row)
    report.metadata["sweep"] = {
        "families": list(sweep.families),
        "sizes": list(sweep.sizes),
        "repetitions": sweep.repetitions,
        "schedulers": list(sweep.schedulers),
        "initials": list(sweep.initials),
        "master_seed": sweep.master_seed,
        "seeds": list(sweep.seeds) if sweep.seeds else None,
        "max_rounds": sweep.max_rounds,
        "task": sweep.task,
    }
    return report
