"""On-disk JSON result cache keyed by the run-spec content hash.

The cache makes sweeps *incremental*: re-running a sweep only executes the
specs whose hash (see :func:`repro.runtime.spec.spec_key`) has no entry yet.
Any change to a spec field -- a different seed, scheduler, round budget, or
task parameter -- produces a different key and therefore a miss, while a
bump of :data:`~repro.runtime.spec.CACHE_SCHEMA_VERSION` (done whenever the
simulator semantics change) invalidates everything at once.

Entries are one pretty-printed JSON file per result under the cache root,
``<root>/<first 2 hex chars>/<key>.json``, so a cache directory stays
human-inspectable and individual entries can be deleted by hand.  Writes go
through a temporary file + ``os.replace`` so a crashed worker never leaves a
truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from .spec import RunSpec, spec_key
from .tasks import RunOutcome

__all__ = ["ResultCache", "CacheStats"]


@dataclass
class CacheStats:
    """Hit/miss counters accumulated over the lifetime of a cache object."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


class ResultCache:
    """A directory of cached :class:`RunOutcome` entries."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def path_for(self, spec: RunSpec) -> Path:
        key = spec_key(spec)
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> Optional[RunOutcome]:
        """The cached outcome for ``spec``, or ``None`` on a miss.

        Unreadable / corrupt entries count as misses and are ignored (they
        get overwritten by the next :meth:`put`).
        """
        path = self.path_for(spec)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            outcome = RunOutcome.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.misses += 1
            return None
        outcome.from_cache = True
        self.stats.hits += 1
        return outcome

    def put(self, outcome: RunOutcome) -> Path:
        """Persist one outcome; returns the entry path."""
        path = self.path_for(outcome.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # no sort_keys: row key order is the experiment's column order and
        # must survive the cache round-trip byte-for-byte.  The temp name is
        # unique per writer so concurrent processes sharing a cache dir
        # cannot interleave into one file; last os.replace wins atomically.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(outcome.to_dict(), indent=2,
                                        default=str))
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
        self.stats.writes += 1
        return path

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).is_file()

    def entries(self) -> Iterator[Path]:
        """All entry files currently in the cache."""
        return self.root.glob("*/*.json")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in list(self.entries()):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
