"""Run and sweep specifications for the parallel execution engine.

A :class:`RunSpec` is a *fully serializable* description of one unit of
work: which task to perform (see :mod:`repro.runtime.tasks`), on which
workload instance ``(family, n, seed)``, and under which protocol
configuration.  Because a spec is a frozen dataclass of primitives it can be

* pickled across process boundaries (the sweep engine ships specs, not
  graphs or networks, to its workers),
* hashed into a stable cache key (:func:`spec_key`) so results persist on
  disk and re-runs are incremental,
* reconstructed from JSON (:meth:`RunSpec.from_dict`) by the CLI and the
  report loader.

A :class:`SweepSpec` describes a *matrix* of runs -- the cartesian product
``workload family x size x seed x scheduler x initial configuration x
protocol`` -- and expands it into an ordered list of :class:`RunSpec`.  Per-repetition seeds
are derived deterministically from a single master seed through
:func:`repro.sim.rng.derive_seed`, so adding repetitions never changes the
seeds of existing runs and the expansion is reproducible byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.protocol import MDSTConfig
from ..exceptions import ConfigurationError
from ..graphs.fast_generators import FAST_FAMILIES, make_fast_graph
from ..graphs.generators import make_graph, validate_graph_params
from ..graphs.io import read_edge_list
from ..protocols.base import ProtocolRunConfig
from ..sim.adversary import (Adversary, ByzantineModel, NodeFaultModel,
                             make_channel_model)
from ..sim.faults import ChurnPlan, random_churn_plan
from ..sim.rng import derive_seed

__all__ = ["RunSpec", "SweepSpec", "spec_key", "CACHE_SCHEMA_VERSION"]

#: Bumped whenever the result schema or the simulation semantics change in a
#: way that invalidates previously cached outcomes.  2: RunSpec grew the
#: churn parameters (``churn_rate``/``churn_start``/``churn_events``).
#: 3: RunSpec grew the ``protocol`` field (the unified protocol registry);
#: every cache key now embeds the protocol that produced the row.
#: 4: RunSpec grew the adversary axis (``loss_rate``/``dup_rate``/
#: ``reorder_rate``/``crash_*``/``byzantine_*``); legacy dicts without the
#: new keys deserialize to the adversary-free defaults.
#: 5: RunSpec grew the ``backend`` field (object vs array simulation
#: kernel); legacy dicts without the key deserialize to ``"object"``.  The
#: backends are byte-identical, but the key must still distinguish them so
#: per-backend timing rows (throughput, benchmarks) never alias.
#: 6: RunSpec grew the workload-instance knobs ``graph_params`` (per-family
#: generator parameters) and ``graph_file`` (run on an edge list from disk
#: instead of a generated family); legacy dicts deserialize to the
#: parameter-free generated defaults.
CACHE_SCHEMA_VERSION = 6

#: Stream index for deriving a run's churn-plan seed from its master seed
#: (decoupled from the repetition streams used by :class:`SweepSpec`).
CHURN_SEED_STREAM = 101

#: Stream indices for the adversary models' private generators, derived from
#: the run seed.  Distinct streams keep the channel, crash and Byzantine
#: draws independent of each other and of the scheduler/fault/churn streams.
CHANNEL_SEED_STREAM = 211
CRASH_SEED_STREAM = 223
BYZANTINE_SEED_STREAM = 227


@dataclass(frozen=True)
class RunSpec:
    """One unit of work for the sweep engine.

    Attributes
    ----------
    task:
        Name of the task in :data:`repro.runtime.tasks.TASKS` that executes
        this spec (``"protocol"``, ``"reference"``, ``"memory"``, ...).
    protocol:
        Name of the protocol in the :data:`repro.protocols.PROTOCOLS`
        registry that protocol-style tasks (``protocol``/``throughput``/
        ``churn``) execute; MDST-only tasks reject anything but the default
        ``"mdst"``.
    family, n, seed:
        The workload instance: graph family name (see
        :data:`repro.graphs.generators.GRAPH_FAMILIES`), target node count
        and generator seed.  ``seed`` also seeds the protocol run.
    scheduler, initial, max_rounds, stability_window, enable_reduction:
        Protocol configuration forwarded to :class:`repro.core.MDSTConfig`.
    fault_round, fault_fraction:
        When ``fault_round`` is set, a transient fault corrupting
        ``fault_fraction`` of the nodes is injected after that round
        (used by the self-stabilization experiments).
    churn_rate, churn_start, churn_events:
        When ``churn_rate > 0`` and ``churn_events > 0``, a deterministic
        connectivity-preserving topology churn plan
        (:func:`repro.sim.faults.random_churn_plan`, seeded from ``seed``)
        schedules ``churn_events`` node/edge changes, one every
        ``round(1 / churn_rate)`` rounds starting after ``churn_start``
        (used by the ``churn`` task and benchmark).
    loss_rate, dup_rate, reorder_rate:
        Channel-adversary intensities: per-send probabilities of message
        loss, duplication and out-of-order insertion.  Any non-zero rate
        installs a seeded :class:`~repro.sim.adversary.UnreliableChannelModel`.
    crash_count, crash_round, crash_recover:
        When ``crash_count > 0``, that many seeded-random nodes crash after
        ``crash_round``; with ``crash_recover`` set they recover (with
        total state loss) that many rounds later, otherwise the crash is
        permanent (crash-stop).
    byzantine_count, byzantine_start, byzantine_rounds:
        When ``byzantine_count > 0``, that many seeded-random nodes emit
        corrupted gossip every round of the ``byzantine_rounds``-round
        window opening after ``byzantine_start``.
    backend:
        Simulation kernel backend, ``"object"`` or ``"array"`` (flat numpy
        state columns with vectorized synchronous rounds, see
        :mod:`repro.sim.array_kernel`).  Results are byte-identical across
        backends; the field is seed-free and only changes how rounds are
        executed, but it is part of the cache key so per-backend timing
        rows never alias.
    graph_params:
        Per-family generator parameters as a sorted tuple of ``(key,
        value)`` pairs (e.g. ``(("p", 0.05),)`` for an Erdos-Renyi family),
        validated against :data:`repro.graphs.generators.FAMILY_PARAMS`
        before the generator runs.
    graph_file:
        When set, the workload comes from this edge-list file on disk
        (:func:`repro.graphs.io.read_edge_list`; gzip and SNAP-style
        headers accepted) instead of a generated family, and ``family``/
        ``n``/``graph_params`` are ignored.
    params:
        Task-specific extras as a sorted tuple of ``(key, value)`` pairs so
        the spec stays hashable; use :meth:`param` to read them.
    """

    task: str = "protocol"
    protocol: str = "mdst"
    family: str = "erdos_renyi_sparse"
    n: int = 16
    seed: int = 0
    scheduler: str = "synchronous"
    initial: str = "isolated"
    max_rounds: int = 5000
    stability_window: int = 5
    enable_reduction: bool = True
    fault_round: Optional[int] = None
    fault_fraction: float = 0.5
    churn_rate: float = 0.0
    churn_start: int = 50
    churn_events: int = 0
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    crash_count: int = 0
    crash_round: int = 50
    crash_recover: Optional[int] = None
    byzantine_count: int = 0
    byzantine_start: int = 10
    byzantine_rounds: int = 20
    backend: str = "object"
    graph_params: Tuple[Tuple[str, object], ...] = ()
    graph_file: Optional[str] = None
    params: Tuple[Tuple[str, object], ...] = ()

    # -- derived views ---------------------------------------------------------

    def build_graph(self):
        """Instantiate the workload graph ``(family, n, seed)``.

        Equivalent to ``WorkloadInstance(family, n, seed).build()``; the
        runtime layer goes straight to the generator registry so it stays
        below :mod:`repro.experiments` in the import graph.

        Three routes:

        * ``graph_file`` set: read the edge list from disk (``family``/
          ``n``/``graph_params`` are ignored; the actual node and edge
          counts land in the result rows).
        * Array-backend protocol run of a vectorized family: return the
          :class:`~repro.graphs.edge_array.EdgeArrayGraph` itself so the
          CSR-direct network build never materializes an ``nx.Graph``.
        * Everything else: the nx generator registry.
        """
        if self.graph_file:
            graph = read_edge_list(self.graph_file)
            graph.graph.setdefault("family", "file")
            return graph
        params = dict(self.graph_params)
        validate_graph_params(self.family, params)
        if (self.backend == "array"
                and self.task in ("protocol", "throughput")
                and self.family in FAST_FAMILIES):
            return make_fast_graph(self.family, self.n, seed=self.seed,
                                   **params)
        return make_graph(self.family, self.n, seed=self.seed,
                          params=params or None)

    @property
    def churn_enabled(self) -> bool:
        """Whether this spec schedules topology churn."""
        return self.churn_rate > 0 and self.churn_events > 0

    @property
    def churn_period(self) -> int:
        """Rounds between consecutive churn events (``round(1 / rate)``)."""
        if self.churn_rate <= 0:
            raise ConfigurationError("churn_period needs churn_rate > 0")
        return max(1, int(round(1.0 / self.churn_rate)))

    def build_churn_plan(self, graph) -> Optional[ChurnPlan]:
        """The spec's deterministic churn plan for ``graph`` (``None`` if
        churn is disabled).  Seeded from the run seed via an independent
        stream so churn never perturbs the scheduler/fault streams."""
        if not self.churn_enabled:
            return None
        return random_churn_plan(
            graph, events=self.churn_events, start_round=self.churn_start,
            period=self.churn_period,
            seed=derive_seed(self.seed, CHURN_SEED_STREAM))

    @property
    def adversary_enabled(self) -> bool:
        """Whether this spec configures any adversary model."""
        return (self.loss_rate > 0 or self.dup_rate > 0 or self.reorder_rate > 0
                or self.crash_count > 0 or self.byzantine_count > 0)

    def build_adversary(self) -> Optional[Adversary]:
        """The spec's :class:`~repro.sim.adversary.Adversary` (``None`` when
        the adversary axis is off).

        Each model's private generator is seeded from the run seed through
        an independent stream (:data:`CHANNEL_SEED_STREAM` and friends), so
        enabling one model never perturbs the others or the scheduler/
        fault/churn streams.  Build a fresh adversary per run: the models
        carry per-run counters and resolved victim sets.
        """
        if not self.adversary_enabled:
            return None
        channel_model = make_channel_model(
            loss=self.loss_rate, dup=self.dup_rate, reorder=self.reorder_rate,
            seed=derive_seed(self.seed, CHANNEL_SEED_STREAM))
        node_faults = None
        if self.crash_count > 0:
            node_faults = NodeFaultModel(
                crash_round=self.crash_round, count=self.crash_count,
                recover_after=self.crash_recover,
                seed=derive_seed(self.seed, CRASH_SEED_STREAM))
        byzantine = None
        if self.byzantine_count > 0:
            byzantine = ByzantineModel(
                count=self.byzantine_count, start_round=self.byzantine_start,
                rounds=self.byzantine_rounds,
                seed=derive_seed(self.seed, BYZANTINE_SEED_STREAM))
        return Adversary(channel_model=channel_model, node_faults=node_faults,
                         byzantine=byzantine)

    @property
    def label(self) -> str:
        protocol = "" if self.protocol == "mdst" else f"{self.protocol}:"
        adv = "-adv" if self.adversary_enabled else ""
        backend = "" if self.backend == "object" else f"-{self.backend}"
        return (f"{self.task}:{protocol}{self.family}-n{self.n}-s{self.seed}"
                f"-{self.scheduler}-{self.initial}{adv}{backend}")

    def param(self, key: str, default: object = None) -> object:
        """Read a task-specific parameter from :attr:`params`."""
        for name, value in self.params:
            if name == key:
                return value
        return default

    def with_params(self, **extras: object) -> "RunSpec":
        """A copy of this spec with additional task parameters merged in."""
        merged = dict(self.params)
        merged.update(extras)
        return replace(self, params=tuple(sorted(merged.items())))

    def mdst_config(self) -> MDSTConfig:
        """The :class:`~repro.core.MDSTConfig` equivalent of this spec.

        The ``node_weights`` task parameter (a tuple of ``(node, weight)``
        pairs, kept as a tuple so the spec stays hashable) configures the
        kernel's weighted-fair scheduler when ``scheduler="weighted"``.
        """
        weights = self.param("node_weights")
        return MDSTConfig(
            scheduler=self.scheduler,
            seed=self.seed,
            initial=self.initial,
            max_rounds=self.max_rounds,
            stability_window=self.stability_window,
            enable_reduction=self.enable_reduction,
            node_weights={int(v): int(w) for v, w in weights} if weights else None,
            backend=self.backend,
        )

    def protocol_run_config(self) -> ProtocolRunConfig:
        """The generic :class:`~repro.protocols.base.ProtocolRunConfig` of
        this spec, dispatching on :attr:`protocol`.

        The common fields are built once for every protocol; only the
        MDST-specific ``options`` fork on the protocol name (for
        ``"mdst"`` the result is equivalent to
        ``self.mdst_config().protocol_run_config()``, so specs keep
        driving the identical code path they always did).
        """
        weights = self.param("node_weights")
        config = ProtocolRunConfig(
            protocol=self.protocol,
            scheduler=self.scheduler,
            seed=self.seed,
            initial=self.initial,
            max_rounds=self.max_rounds,
            stability_window=self.stability_window,
            node_weights={int(v): int(w) for v, w in weights} if weights else None,
            backend=self.backend,
        )
        if self.protocol == "mdst":
            config.options["enable_reduction"] = self.enable_reduction
        return config

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "protocol": self.protocol,
            "family": self.family,
            "n": self.n,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "initial": self.initial,
            "max_rounds": self.max_rounds,
            "stability_window": self.stability_window,
            "enable_reduction": self.enable_reduction,
            "fault_round": self.fault_round,
            "fault_fraction": self.fault_fraction,
            "churn_rate": self.churn_rate,
            "churn_start": self.churn_start,
            "churn_events": self.churn_events,
            "loss_rate": self.loss_rate,
            "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "crash_count": self.crash_count,
            "crash_round": self.crash_round,
            "crash_recover": self.crash_recover,
            "byzantine_count": self.byzantine_count,
            "byzantine_start": self.byzantine_start,
            "byzantine_rounds": self.byzantine_rounds,
            "backend": self.backend,
            "graph_params": [list(item) for item in self.graph_params],
            "graph_file": self.graph_file,
            "params": [list(item) for item in self.params],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "RunSpec":
        known = {f.name for f in fields(RunSpec)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(f"unknown RunSpec fields: {sorted(unknown)}")
        payload = dict(data)
        params = payload.pop("params", ())
        graph_params = payload.pop("graph_params", ())
        spec = RunSpec(**payload)  # type: ignore[arg-type]
        return replace(spec, params=tuple((str(k), v) for k, v in params),
                       graph_params=tuple((str(k), v) for k, v in graph_params))


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of a spec, used as the on-disk cache key.

    The digest covers every configuration field (via canonical JSON with
    sorted keys) plus :data:`CACHE_SCHEMA_VERSION`, so *any* change to the
    run configuration -- or a bump of the schema version after a semantic
    change to the simulator -- invalidates the cached entry.
    """
    payload = spec.to_dict()
    payload["__schema__"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SweepSpec:
    """A matrix of runs:
    ``family x size x repetition x scheduler x initial x protocol``.

    Seeds: if :attr:`seeds` is given, repetition ``r`` uses
    ``seeds[r % len(seeds)]`` (mirroring
    :meth:`repro.experiments.config.ExperimentProfile.seed_for`); otherwise
    the seed of repetition ``r`` is ``derive_seed(master_seed, r)``, an
    independent 31-bit stream from :mod:`repro.sim.rng`.

    ``protocols`` multiplies the matrix across registry entries (see
    :data:`repro.protocols.PROTOCOLS`); the default single-``"mdst"`` axis
    expands to exactly the specs (and order) it always did.

    ``fault_round``/``fault_fraction``, the ``churn_*`` knobs and the
    adversary knobs (``loss_rate``/``dup_rate``/``reorder_rate``/
    ``crash_*``/``byzantine_*``) are forwarded verbatim to every expanded
    :class:`RunSpec`, so one sweep can put every protocol through the same
    transient-fault, topology-churn or adversary scenario.  ``backend``
    selects the simulation kernel and ``graph_params`` the per-family
    generator parameters for every expanded run.
    """

    families: Tuple[str, ...] = ("erdos_renyi_sparse",)
    sizes: Tuple[int, ...] = (16,)
    repetitions: int = 1
    master_seed: int = 0
    seeds: Optional[Tuple[int, ...]] = None
    schedulers: Tuple[str, ...] = ("synchronous",)
    initials: Tuple[str, ...] = ("isolated",)
    max_rounds: int = 5000
    task: str = "protocol"
    protocols: Tuple[str, ...] = ("mdst",)
    fault_round: Optional[int] = None
    fault_fraction: float = 0.5
    churn_rate: float = 0.0
    churn_start: int = 50
    churn_events: int = 0
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    crash_count: int = 0
    crash_round: int = 50
    crash_recover: Optional[int] = None
    byzantine_count: int = 0
    byzantine_start: int = 10
    byzantine_rounds: int = 20
    backend: str = "object"
    graph_params: Tuple[Tuple[str, object], ...] = ()

    def seed_for(self, repetition: int) -> int:
        if self.seeds:
            return self.seeds[repetition % len(self.seeds)]
        return derive_seed(self.master_seed, repetition)

    def expand(self) -> List[RunSpec]:
        """The ordered list of runs in the matrix.

        The order (repetition, family, size, scheduler, initial, protocol)
        is part of the engine's contract: results are always returned in
        expansion order regardless of worker count, which is what makes
        ``--workers N`` output byte-identical to the serial run.
        """
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if not self.families or not self.sizes:
            raise ConfigurationError("sweep needs at least one family and one size")
        if not self.protocols:
            raise ConfigurationError("sweep needs at least one protocol")
        specs: List[RunSpec] = []
        for rep in range(self.repetitions):
            seed = self.seed_for(rep)
            for family in self.families:
                for n in self.sizes:
                    for scheduler in self.schedulers:
                        for initial in self.initials:
                            for protocol in self.protocols:
                                specs.append(RunSpec(
                                    task=self.task,
                                    protocol=protocol,
                                    family=family,
                                    n=n,
                                    seed=seed,
                                    scheduler=scheduler,
                                    initial=initial,
                                    max_rounds=self.max_rounds,
                                    fault_round=self.fault_round,
                                    fault_fraction=self.fault_fraction,
                                    churn_rate=self.churn_rate,
                                    churn_start=self.churn_start,
                                    churn_events=self.churn_events,
                                    loss_rate=self.loss_rate,
                                    dup_rate=self.dup_rate,
                                    reorder_rate=self.reorder_rate,
                                    crash_count=self.crash_count,
                                    crash_round=self.crash_round,
                                    crash_recover=self.crash_recover,
                                    byzantine_count=self.byzantine_count,
                                    byzantine_start=self.byzantine_start,
                                    byzantine_rounds=self.byzantine_rounds,
                                    backend=self.backend,
                                    graph_params=self.graph_params,
                                ))
        return specs
