"""Parallel execution runtime: run specs, worker tasks, caching, sweeps, CLI.

This package is the batch-execution layer of the reproduction.  The design
splits "what to run" from "how to run it":

* :mod:`repro.runtime.spec` -- :class:`RunSpec` (one serializable unit of
  work) and :class:`SweepSpec` (a ``family x size x seed x scheduler x
  initial x protocol`` matrix with deterministic seed derivation);
* :mod:`repro.runtime.tasks` -- the registry of picklable task functions
  executed inside worker processes (protocol runs dispatching on the
  :data:`repro.protocols.PROTOCOLS` registry, the reference engine,
  memory accounting, and the E1-E8 composite measurements);
* :mod:`repro.runtime.cache` -- on-disk JSON result cache keyed by the
  spec hash, making repeated sweeps incremental;
* :mod:`repro.runtime.engine` -- :class:`SweepEngine`, fanning specs over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``workers=1`` is the
  serial fallback) and merging results back in deterministic order;
* :mod:`repro.runtime.cli` -- the ``repro`` command-line interface
  (``repro run | sweep | bench | report``).
"""

from .cache import CacheStats, ResultCache
from .engine import EngineStats, SweepEngine, default_workers, run_sweep
from .spec import CACHE_SCHEMA_VERSION, RunSpec, SweepSpec, spec_key
from .tasks import TASKS, RunOutcome, execute_spec, task_names

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "EngineStats",
    "ResultCache",
    "RunOutcome",
    "RunSpec",
    "SweepEngine",
    "SweepSpec",
    "TASKS",
    "default_workers",
    "execute_spec",
    "run_sweep",
    "spec_key",
    "task_names",
]
