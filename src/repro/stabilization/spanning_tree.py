"""Self-stabilizing spanning-tree module (§3.2.1 of the paper).

Each node maintains three variables -- the identifier of the root it
currently believes in (``root``), a parent pointer (``parent``) and its
distance to that root (``distance``) -- and gossips them to its neighbours
via periodic ``STInfo`` messages (the ``InfoMsg`` of the paper, restricted to
the spanning-tree fields).  Two correction rules drive stabilization:

``R1 (correction parent)``
    If a neighbour advertises a smaller root, adopt it (and that neighbour
    becomes the parent).  Ties are broken towards the smallest neighbour id,
    matching the paper's ``argmin`` choice.

``R2 (correction root)``
    If the local state is incoherent -- the parent is not a neighbour, the
    parent no longer advertises the same root, the node claims to be a root
    without using its own identifier, or the distance has grown past the
    bound ``n_upper`` -- the node resets and becomes its own root.

``R3 (distance repair)``
    If the state is otherwise coherent but the distance does not equal the
    parent's advertised distance plus one, only the distance is repaired.

The paper folds R3 into R2 (any incoherence triggers a full reset).  We keep
the gentler distance-repair rule, plus an explicit distance bound ``n_upper``
(an upper bound on the network size known to every node), because the
min-root rule alone cannot evict a *fake* root identifier that no live node
owns: such an identifier can otherwise chase its own tail around a cycle
forever (the classical count-to-infinity behaviour).  With the bound, the
distance of any region believing in a fake root grows by at least one per
traversal and exceeds ``n_upper`` after O(n) rounds, forcing a reset.  This
is the standard Dolev–Israeli–Moran-style refinement and is documented as an
engineering substitution in DESIGN.md.

The resulting tree is a BFS-like spanning tree rooted at the node with the
smallest identifier, exactly what the degree-reduction layer of the MDST
algorithm builds upon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Process
from ..types import NodeId

__all__ = ["STInfo", "TreeVars", "NeighborView", "SpanningTreeProcess",
           "spanning_tree_process_factory", "st_legitimacy"]


@dataclass(frozen=True)
class STInfo(Message):
    """Gossip message carrying the spanning-tree variables of the sender."""

    root: int
    parent: int
    distance: int


@dataclass
class TreeVars:
    """The three spanning-tree variables of one node."""

    root: int
    parent: int
    distance: int


@dataclass
class NeighborView:
    """Cached copy of a neighbour's spanning-tree variables (send/receive model)."""

    root: int
    parent: int
    distance: int
    heard: bool = False  # whether at least one gossip message has been received


class SpanningTreeProcess(Process):
    """Standalone self-stabilizing spanning-tree protocol.

    Parameters
    ----------
    node_id, neighbors:
        Standard :class:`~repro.sim.node.Process` arguments.
    n_upper:
        Upper bound on the network size, used to bound distances.  Defaults
        to a loose constant when not provided; experiments always provide the
        exact ``n`` (any upper bound preserves correctness, a tight one
        improves convergence time).
    """

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 n_upper: int | None = None):
        super().__init__(node_id, neighbors)
        self.n_upper = int(n_upper) if n_upper is not None else 1 << 16
        self.vars = TreeVars(root=node_id, parent=node_id, distance=0)
        self.view: Dict[NodeId, NeighborView] = {
            u: NeighborView(root=u, parent=u, distance=0) for u in self.neighbors
        }

    # -- predicates (local, §3.1) ----------------------------------------------

    def better_parent(self) -> bool:
        """``True`` when some neighbour advertises a strictly smaller root."""
        return any(view.heard and view.root < self.vars.root
                   for view in self.view.values())

    def coherent_parent(self) -> bool:
        """Parent is self or a neighbour advertising the same root.

        A root larger than the node's own identifier is always incoherent:
        the node itself would be a better root, so such a value can only come
        from a corrupted initial state and must trigger a reset.
        """
        v = self.vars
        if v.root > self.node_id:
            return False
        if v.parent == self.node_id:
            return v.root == self.node_id and v.distance == 0
        if v.parent not in self.view:
            return False
        pview = self.view[v.parent]
        return (not pview.heard) or pview.root == v.root

    def coherent_distance(self) -> bool:
        """Distance equals the parent's advertised distance plus one and is bounded."""
        v = self.vars
        if v.distance >= self.n_upper:
            return False
        if v.parent == self.node_id:
            return v.distance == 0
        pview = self.view.get(v.parent)
        if pview is None:
            return False
        return (not pview.heard) or v.distance == pview.distance + 1

    def new_root_candidate(self) -> bool:
        """Paper predicate: the local state is incoherent and needs a reset."""
        return not self.coherent_parent() or self.vars.distance >= self.n_upper

    def tree_stabilized(self) -> bool:
        """Paper predicate ``tree_stabilized(v)``."""
        return (not self.better_parent() and not self.new_root_candidate()
                and self.coherent_distance())

    # -- rules -----------------------------------------------------------------

    def _create_new_root(self) -> None:
        self.vars.root = self.node_id
        self.vars.parent = self.node_id
        self.vars.distance = 0

    def _change_parent_to(self, u: NodeId) -> None:
        view = self.view[u]
        self.vars.root = view.root
        self.vars.parent = u
        self.vars.distance = view.distance + 1

    def apply_rules(self) -> bool:
        """Apply R2, R1, R3 (in priority order).  Returns ``True`` on change."""
        changed = False
        if self.new_root_candidate():                                   # R2
            self._create_new_root()
            changed = True
        if not self.new_root_candidate() and self.better_parent():      # R1
            candidates = [u for u, view in self.view.items()
                          if view.heard and view.root < self.vars.root
                          and view.distance + 1 < self.n_upper]
            if candidates:
                best_root = min(self.view[u].root for u in candidates)
                best = min(u for u in candidates if self.view[u].root == best_root)
                self._change_parent_to(best)
                changed = True
        if not self.new_root_candidate() and not self.coherent_distance():  # R3
            pview = self.view.get(self.vars.parent)
            if self.vars.parent == self.node_id:
                self.vars.distance = 0
            elif pview is not None and pview.heard:
                self.vars.distance = pview.distance + 1
            changed = True
            if self.vars.distance >= self.n_upper:
                self._create_new_root()
        return changed

    # -- Process hooks -----------------------------------------------------------

    def on_timeout(self) -> None:
        self.apply_rules()
        info = STInfo(root=self.vars.root, parent=self.vars.parent,
                      distance=self.vars.distance)
        self.broadcast(info)

    def on_message(self, sender: NodeId, message: Message) -> None:
        if not isinstance(message, STInfo):
            return  # garbage / foreign message: ignore (and thereby flush)
        if sender not in self.view:
            return
        view = self.view[sender]
        view.root = message.root
        view.parent = message.parent
        view.distance = message.distance
        view.heard = True
        self.apply_rules()

    # -- dynamic topology (live neighbour-set deltas) ------------------------------

    def add_neighbor(self, u: NodeId) -> None:
        """A link to ``u`` appeared at runtime.

        The new neighbour starts as an unheard view (its defaults are never
        consulted before its first gossip message arrives); rules R1-R3
        pick the edge up through the normal correction machinery.
        """
        super().add_neighbor(u)
        self.view[u] = NeighborView(root=u, parent=u, distance=0)
        self.apply_rules()

    def remove_neighbor(self, u: NodeId) -> None:
        """The link to ``u`` died at runtime.

        Evicts the stale cached :class:`NeighborView` so ``u`` can never
        again win rule R1 or anchor a distance; if ``u`` was our parent the
        tree edge is gone, so we reset to our own root (rule R2's premise
        made explicit) and let R1 re-attach us through gossip.
        """
        super().remove_neighbor(u)
        lost_parent = self.vars.parent == u
        self.view.pop(u, None)
        if lost_parent:
            self._create_new_root()
        self.apply_rules()

    # -- self-stabilization support ----------------------------------------------

    def corrupt(self, rng: np.random.Generator) -> None:
        """Overwrite every protocol variable with arbitrary values."""
        ids = list(self.neighbors) + [self.node_id, int(rng.integers(-5, 100))]
        self.vars.root = int(rng.choice(ids))
        self.vars.parent = int(rng.choice(list(self.neighbors) + [self.node_id]))
        self.vars.distance = int(rng.integers(0, max(2, self.n_upper)))
        for view in self.view.values():
            view.root = int(rng.choice(ids))
            view.parent = int(rng.choice(ids))
            view.distance = int(rng.integers(0, max(2, self.n_upper)))
            view.heard = bool(rng.integers(0, 2))

    def state_bits(self, network_size: int) -> int:
        """O(δ log n): own variables plus one cached copy per neighbour."""
        import math
        idbits = max(1, math.ceil(math.log2(max(network_size, 2)))) + 1
        own = 3 * idbits
        per_neighbor = 3 * idbits + 1
        return own + per_neighbor * len(self.neighbors)

    def snapshot(self) -> Dict[str, object]:
        return {
            "root": self.vars.root,
            "parent": self.vars.parent,
            "distance": self.vars.distance,
        }


def spanning_tree_process_factory(n_upper: int | None = None):
    """Factory suitable for :class:`repro.sim.network.Network` construction."""
    def factory(node_id: NodeId, neighbors: Sequence[NodeId]) -> SpanningTreeProcess:
        return SpanningTreeProcess(node_id, neighbors, n_upper=n_upper)
    return factory


def st_legitimacy(network: Network, snapshots=None) -> bool:
    """Global legitimacy predicate of the standalone spanning-tree protocol.

    Holds when every node agrees on the smallest identifier as root, parent
    pointers form a spanning tree of the communication graph rooted at that
    node, and all distances are coherent.  A pure function of the per-node
    snapshots, so it is safe under the simulator's predicate cache; pass
    ``snapshots`` to reuse an already-computed mapping.
    """
    snaps = snapshots if snapshots is not None else network.snapshots()
    min_id = min(network.node_ids)
    parent: Dict[NodeId, NodeId] = {}
    distance: Dict[NodeId, int] = {}
    for v, snap in snaps.items():
        if snap.get("root") != min_id:
            return False
        parent[v] = snap.get("parent")  # type: ignore[assignment]
        distance[v] = snap.get("distance")  # type: ignore[assignment]
    if parent.get(min_id) != min_id or distance.get(min_id) != 0:
        return False
    for v, p in parent.items():
        if v == min_id:
            continue
        if p == v or not network.has_edge(v, p):
            return False
        if distance[v] != distance[p] + 1:
            return False
    # Reaching the root from every node (no cycles) -- distances being strictly
    # decreasing along parent pointers already guarantees it, but check anyway.
    for v in network.node_ids:
        cur, hops = v, 0
        while cur != min_id:
            cur = parent[cur]
            hops += 1
            if hops > len(network.node_ids):
                return False
    return True
