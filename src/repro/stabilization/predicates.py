"""Global configuration predicates (the specification side of Definition 1).

These functions examine a *global snapshot* of a network (the per-node
variable dictionaries returned by :meth:`repro.sim.network.Network.snapshots`)
and decide structural properties: does a unique root exist, do the parent
pointers form a spanning tree, are distances coherent, is the advertised
``dmax`` equal to the true tree degree.

They are used to build legitimacy predicates for the simulator and as oracle
checks in the test-suite.  They are *not* available to the nodes themselves
(nodes only see one-hop information); keeping them separate makes the
local/global distinction explicit.

All functions are pure functions of the snapshot mapping (plus static
topology), which is the contract the kernel's incremental verification
relies on: :meth:`repro.sim.network.Network.snapshots` is cached keyed on
the configuration version, and every function here accepts the cached
mapping via its ``snapshots`` parameter so a composite predicate traverses
the network exactly once per changed configuration.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..sim.network import Network
from ..types import Edge, NodeId, canonical_edge

__all__ = [
    "extract_parent_map",
    "tree_edges_from_snapshots",
    "has_unique_root",
    "parent_map_is_spanning_tree",
    "distances_coherent",
    "dmax_agrees_with_tree",
    "snapshot_tree_degree",
]


def extract_parent_map(snapshots: Mapping[NodeId, Mapping[str, object]]) -> Dict[NodeId, NodeId]:
    """Pull the ``parent`` field out of per-node snapshots."""
    return {v: int(snap.get("parent", v)) for v, snap in snapshots.items()}


def tree_edges_from_snapshots(network: Network,
                              snapshots: Optional[Mapping[NodeId, Mapping[str, object]]] = None
                              ) -> set[Edge]:
    """Tree edge set induced by parent pointers (only real graph edges count)."""
    snaps = snapshots if snapshots is not None else network.snapshots()
    edges: set[Edge] = set()
    for v, snap in snaps.items():
        p = int(snap.get("parent", v))
        if p != v and network.has_edge(v, p):
            edges.add(canonical_edge(v, p))
    return edges


def has_unique_root(snapshots: Mapping[NodeId, Mapping[str, object]]) -> bool:
    """All nodes advertise the same root, and exactly one node is self-parented."""
    roots = {snap.get("root") for snap in snapshots.values()}
    if len(roots) != 1:
        return False
    self_parented = [v for v, snap in snapshots.items() if snap.get("parent") == v]
    return len(self_parented) == 1


def parent_map_is_spanning_tree(network: Network,
                                snapshots: Optional[Mapping[NodeId, Mapping[str, object]]] = None
                                ) -> bool:
    """Parent pointers form a spanning tree of the communication graph."""
    snaps = snapshots if snapshots is not None else network.snapshots()
    parent = extract_parent_map(snaps)
    roots = [v for v, p in parent.items() if p == v]
    if len(roots) != 1:
        return False
    root = roots[0]
    n = len(network.node_ids)
    for v, p in parent.items():
        if v != root and not network.has_edge(v, p):
            return False
    for v in network.node_ids:
        cur, hops = v, 0
        while cur != root:
            cur = parent[cur]
            hops += 1
            if hops > n:
                return False
    return True


def distances_coherent(snapshots: Mapping[NodeId, Mapping[str, object]]) -> bool:
    """Every node's distance equals its parent's distance plus one (root: 0)."""
    for v, snap in snapshots.items():
        p = snap.get("parent")
        d = snap.get("distance")
        if p == v:
            if d != 0:
                return False
        else:
            pd = snapshots.get(p, {}).get("distance")  # type: ignore[arg-type]
            if pd is None or d != pd + 1:
                return False
    return True


def snapshot_tree_degree(network: Network,
                         snapshots: Optional[Mapping[NodeId, Mapping[str, object]]] = None
                         ) -> int:
    """Degree of the tree induced by the parent pointers in the snapshots."""
    edges = tree_edges_from_snapshots(network, snapshots)
    counts: Dict[NodeId, int] = {}
    for a, b in edges:
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    return max(counts.values()) if counts else 0


def dmax_agrees_with_tree(network: Network,
                          snapshots: Optional[Mapping[NodeId, Mapping[str, object]]] = None
                          ) -> bool:
    """Every node's ``dmax`` equals the true degree of the induced tree."""
    snaps = snapshots if snapshots is not None else network.snapshots()
    true_degree = snapshot_tree_degree(network, snaps)
    return all(snap.get("dmax") == true_degree for snap in snaps.values())
