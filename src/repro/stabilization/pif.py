"""Maximum-degree module: PIF-style aggregation over the spanning tree (§3.2.3).

The MDST algorithm needs every node to know the degree ``deg(T)`` of the
*current* spanning tree.  The paper computes it with a Propagation of
Information with Feedback (PIF) scheme: in the feedback phase each node
reports to its parent the maximum tree-degree seen in its subtree; in the
propagation phase the root disseminates the global maximum back down,
piggybacked on the ``InfoMsg`` gossip.

This module provides the aggregation as a reusable, protocol-agnostic core
(:class:`MaxDegreeAggregator`) plus a standalone demonstration protocol
(:class:`MaxDegreeProcess`) that runs the aggregation over a *fixed* tree
(supplied as parent pointers).  The full MDST node embeds the same
aggregation logic over its live, changing tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..sim.messages import Message
from ..sim.network import Network
from ..sim.node import Process
from ..types import NodeId

__all__ = ["MaxDegreeAggregator", "DegreeInfo", "MaxDegreeProcess",
           "max_degree_process_factory", "pif_legitimacy"]


class MaxDegreeAggregator:
    """Pure aggregation logic shared by the standalone and the MDST protocols.

    The aggregator is fed, for each neighbour, the neighbour's advertised
    ``(parent, deg, sub_max, dmax)`` values; it recomputes the local
    ``sub_max`` (max tree-degree over the node's subtree) and ``dmax``
    (this node's current estimate of ``deg(T)``).
    """

    @staticmethod
    def sub_max(own_degree: int, node_id: NodeId,
                neighbor_parent: Mapping[NodeId, NodeId],
                neighbor_sub_max: Mapping[NodeId, int]) -> int:
        """Feedback phase: combine children's reports with the local degree."""
        best = own_degree
        for u, p in neighbor_parent.items():
            if p == node_id:  # u claims to be a child of this node
                best = max(best, neighbor_sub_max.get(u, 0))
        return best

    @staticmethod
    def dmax(is_root: bool, own_sub_max: int, parent: NodeId,
             neighbor_dmax: Mapping[NodeId, int]) -> int:
        """Propagation phase: the root publishes ``sub_max``; others copy the parent."""
        if is_root:
            return own_sub_max
        return neighbor_dmax.get(parent, own_sub_max)


@dataclass(frozen=True)
class DegreeInfo(Message):
    """Gossip message of the standalone max-degree protocol."""

    parent: int
    degree: int
    sub_max: int
    dmax: int


class MaxDegreeProcess(Process):
    """Standalone max-degree computation over a fixed spanning tree.

    Parameters
    ----------
    parent_map:
        The fixed tree, as a ``node -> parent`` map (root self-parented).
        Only the entries for this node and its neighbours are consulted.
    """

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 parent_map: Mapping[NodeId, NodeId]):
        super().__init__(node_id, neighbors)
        # A node the fixed tree does not know (a late joiner under live
        # churn) starts self-parented: the root of its own one-node
        # fragment, invisible to the aggregation until gossip says more.
        self.parent: NodeId = parent_map.get(node_id, node_id)
        self.tree_neighbors = tuple(
            u for u in self.neighbors
            if self.parent == u or parent_map.get(u) == node_id)
        self.degree: int = len(self.tree_neighbors)
        self.sub_max: int = self.degree
        self.dmax: int = self.degree
        self.view_parent: Dict[NodeId, NodeId] = {u: parent_map.get(u, u) for u in neighbors}
        self.view_sub_max: Dict[NodeId, int] = {u: 0 for u in neighbors}
        self.view_dmax: Dict[NodeId, int] = {u: 0 for u in neighbors}

    def _recompute(self) -> None:
        self.sub_max = MaxDegreeAggregator.sub_max(
            self.degree, self.node_id, self.view_parent, self.view_sub_max)
        self.dmax = MaxDegreeAggregator.dmax(
            self.parent == self.node_id, self.sub_max, self.parent, self.view_dmax)

    def on_timeout(self) -> None:
        self._recompute()
        self.broadcast(DegreeInfo(parent=self.parent, degree=self.degree,
                                  sub_max=self.sub_max, dmax=self.dmax))

    def on_message(self, sender: NodeId, message: Message) -> None:
        if not isinstance(message, DegreeInfo) or sender not in self.view_parent:
            return
        self.view_parent[sender] = message.parent
        self.view_sub_max[sender] = message.sub_max
        self.view_dmax[sender] = message.dmax
        self._recompute()

    # -- dynamic topology (live neighbour-set deltas) --------------------------

    def add_neighbor(self, u: NodeId) -> None:
        """A link to ``u`` appeared at runtime.

        The newcomer is a non-tree neighbour until its gossip claims
        otherwise (``view_parent[u] = u``), so the aggregation ignores it
        until real ``DegreeInfo`` arrives.
        """
        super().add_neighbor(u)
        self.view_parent[u] = u
        self.view_sub_max[u] = 0
        self.view_dmax[u] = 0
        self._recompute()

    def remove_neighbor(self, u: NodeId) -> None:
        """The link to ``u`` died at runtime.

        Evicts the cached aggregation views so a dead subtree can never
        again inflate ``sub_max``; a lost tree edge shrinks the local tree
        degree, and losing the parent makes this node the root of its
        surviving fragment.
        """
        super().remove_neighbor(u)
        self.view_parent.pop(u, None)
        self.view_sub_max.pop(u, None)
        self.view_dmax.pop(u, None)
        if u in self.tree_neighbors:
            self.tree_neighbors = tuple(x for x in self.tree_neighbors if x != u)
            self.degree = len(self.tree_neighbors)
        if self.parent == u:
            self.parent = self.node_id
        self._recompute()

    # -- self-stabilization support --------------------------------------------

    def corrupt(self, rng: np.random.Generator) -> None:
        """Randomise the aggregation state (the tree itself stays fixed)."""
        hi = max(3, len(self.neighbors) + 2)
        self.sub_max = int(rng.integers(0, hi))
        self.dmax = int(rng.integers(0, hi))
        for u in self.neighbors:
            self.view_sub_max[u] = int(rng.integers(0, hi))
            self.view_dmax[u] = int(rng.integers(0, hi))

    def state_bits(self, network_size: int) -> int:
        import math
        idbits = max(1, math.ceil(math.log2(max(network_size, 2)))) + 1
        return 4 * idbits + 3 * idbits * len(self.neighbors)

    def snapshot(self) -> Dict[str, object]:
        return {"parent": self.parent, "degree": self.degree,
                "sub_max": self.sub_max, "dmax": self.dmax}


def max_degree_process_factory(parent_map: Mapping[NodeId, NodeId]):
    """Factory building :class:`MaxDegreeProcess` instances over ``parent_map``."""
    def factory(node_id: NodeId, neighbors: Sequence[NodeId]) -> MaxDegreeProcess:
        return MaxDegreeProcess(node_id, neighbors, parent_map)
    return factory


def pif_legitimacy(expected_dmax: int):
    """Legitimacy predicate factory: every node's ``dmax`` equals the true value."""
    def predicate(network: Network) -> bool:
        return all(snap.get("dmax") == expected_dmax
                   for snap in network.snapshots().values())
    return predicate
