"""Self-stabilizing building blocks: spanning tree, PIF max-degree, predicates."""

from .pif import (
    DegreeInfo,
    MaxDegreeAggregator,
    MaxDegreeProcess,
    max_degree_process_factory,
    pif_legitimacy,
)
from .predicates import (
    distances_coherent,
    dmax_agrees_with_tree,
    extract_parent_map,
    has_unique_root,
    parent_map_is_spanning_tree,
    snapshot_tree_degree,
    tree_edges_from_snapshots,
)
from .spanning_tree import (
    NeighborView,
    STInfo,
    SpanningTreeProcess,
    TreeVars,
    spanning_tree_process_factory,
    st_legitimacy,
)

__all__ = [name for name in dir() if not name.startswith("_")]
