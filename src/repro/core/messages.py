"""Protocol messages of the self-stabilizing MDST algorithm (§3.1 "Messages").

Seven message types are defined by the paper; this module implements them as
frozen dataclasses on top of the simulator's :class:`~repro.sim.messages.Message`.

* :class:`MInfo` -- the ``InfoMsg`` gossip carrying a node's variables.
* :class:`Search` -- the DFS token discovering a fundamental cycle.
* :class:`Remove` -- drives an improvement: locate and delete the target tree
  edge, then (re-used with ``reversing=True``) re-orient the part of the
  cycle that changed sides, ending with the new edge being adopted.
* :class:`Back` -- re-orients the already-traversed part of the cycle when the
  deleted edge's child side faces the search initiator (Figure 5, case (b)).
* :class:`Deblock` -- asks the subtree of a blocking node to look for a cycle
  through that node so its degree can be reduced.
* :class:`Reverse` -- point-to-point orientation fix used when a reversal
  meets an edge modified by a concurrent improvement.
* :class:`UpdateDist` -- distance refresh after a re-orientation.

Two notes on fidelity:

* ``Search`` carries a ``visited`` tuple in addition to the paper's ``path``:
  a distributed DFS needs to know which nodes were already explored in order
  to backtrack, and the paper explicitly forbids storing per-search state at
  nodes ("the path information is never stored at a node"), so the visited
  set must travel with the token.  The message stays O(n log n) bits, the
  bound claimed in §5.
* ``UpdateDist``/``Reverse`` are retained for fidelity but the implementation
  does not *depend* on them: the spanning-tree layer's distance-repair rule
  (R3) heals distances from gossip alone, which is simpler and strictly more
  robust under concurrent improvements (see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..sim.messages import Message, message_dataclass

__all__ = ["MInfo", "Search", "Remove", "Back", "Deblock", "Reverse", "UpdateDist"]


@message_dataclass
class MInfo(Message):
    """``InfoMsg``: periodic gossip of all protocol variables of the sender."""

    root: int
    parent: int
    distance: int
    degree: int          # deg_v: the sender's degree in the current tree
    sub_max: int         # feedback value of the PIF max-degree computation
    dmax: int            # the sender's estimate of deg(T)
    color: bool          # color_tree_v: local dmax-consistency flag


@message_dataclass
class Search(Message):
    """DFS token looking for the fundamental cycle of ``init_edge``.

    ``init_edge`` is ``(target, initiator)``: the initiator is the smaller-id
    endpoint of the non-tree edge, the target the other endpoint; the token
    walks tree edges until it reaches the target.  ``path`` is the DFS stack
    of ``(node, degree)`` pairs from the initiator to the sender of the
    current hop; ``visited`` lists every node the token has entered.
    ``idblock`` is ``None`` for a spontaneous search and the identifier of a
    blocking node when the search was triggered by a ``Deblock`` wave.
    """

    init_edge: Tuple[int, int]
    idblock: Optional[int]
    path: Tuple[Tuple[int, int], ...]
    visited: Tuple[int, ...]


@message_dataclass
class Remove(Message):
    """Improvement driver circulating along a fundamental cycle.

    ``init_edge`` is ``(action_node, initiator)`` -- the non-tree edge to be
    added.  ``target_edge`` is the tree edge to delete, ``deg_max`` the degree
    its to-be-reduced endpoint must still have for the swap to be valid.
    ``path`` is the full cycle node sequence ``(initiator, ..., action_node)``.
    ``reversing`` is ``False`` while the message is still looking for the
    target edge and ``True`` once it is re-orienting parents toward the
    action node.
    """

    init_edge: Tuple[int, int]
    deg_max: int
    target_edge: Tuple[int, int]
    path: Tuple[int, ...]
    reversing: bool = False


@message_dataclass
class Back(Message):
    """Re-orientation wave travelling back toward the initiator (Fig. 5(b))."""

    init_edge: Tuple[int, int]
    path: Tuple[int, ...]
    position: int        # index in ``path`` of the node this hop is addressed to


@message_dataclass
class Deblock(Message):
    """Request to reduce the degree of blocking node ``idblock``."""

    idblock: int


@message_dataclass
class Reverse(Message):
    """Point-to-point parent re-orientation up to ``target`` (Reverse_Aux)."""

    target: int


@message_dataclass
class UpdateDist(Message):
    """Distance refresh propagated down a re-oriented path."""

    target_edge: Tuple[int, int]
    dist: int
