"""The paper's primary contribution: the self-stabilizing MDST algorithm.

Public surface:

* :func:`run_mdst` / :class:`MDSTConfig` -- run the full message-passing
  protocol on a graph and obtain the resulting tree and statistics.
* :class:`MDSTNode` -- the per-node algorithm, usable directly with the
  simulator for custom set-ups.
* :class:`ReferenceMDST` -- the round-abstracted reference engine applying the
  same improvement rule centrally (oracle + large-scale sweeps).
* :mod:`repro.core.improvement` -- improving edges, blocking nodes and
  improvement-chain planning (Eq. 1 and the Deblock recursion as pure
  functions over trees).
* :mod:`repro.core.legitimacy` -- the legitimacy predicates of Definition 1.
"""

from .improvement import (
    Move,
    TreeIndex,
    apply_moves,
    blocking_nodes,
    improvement_possible,
    is_improving_edge,
    plan_improvement,
)
from .legitimacy import (
    current_tree_degree,
    current_tree_edges,
    degree_layer_coherent,
    make_mdst_legitimacy,
    mdst_legitimacy,
    reduction_finished,
    tree_coherent,
)
from .messages import Back, Deblock, MInfo, Remove, Reverse, Search, UpdateDist
from .node_algorithm import MDSTNode, mdst_node_factory
from .protocol import (
    MDSTConfig,
    MDSTResult,
    build_mdst_network,
    initialize_from_tree,
    initialize_isolated,
    run_mdst,
)
from .reference import ReferenceMDST, ReferenceResult, reduce_tree_degree
from .state import MDSTState, NeighborState

__all__ = [name for name in dir() if not name.startswith("_")]
