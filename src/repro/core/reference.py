"""Round-abstracted reference engine for the paper's improvement rule.

:class:`ReferenceMDST` applies exactly the same moves as the distributed
algorithm -- chains of deblocking swaps followed by the improvement of a
maximum-degree node, as computed by :func:`repro.core.improvement.plan_improvement`
-- but with a central scheduler and no message passing.  It serves two
purposes:

* **differential oracle**: the distributed protocol and the reference engine
  must reach trees of the same degree (tests compare them on many graphs);
* **scalable experiments**: the reference engine handles networks far larger
  than what the message-level simulation can process, which the complexity
  experiments (E2) use to extend their sweeps.

The engine also records the *phase* structure used by the paper's complexity
argument (Lemma 5): a phase ends whenever the tree degree decreases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import networkx as nx

from ..exceptions import ConvergenceError
from ..graphs.spanning import bfs_spanning_tree, tree_degree, tree_degrees
from ..graphs.validation import check_spanning_tree
from ..types import Edge, NodeId, canonical_edges
from .improvement import Move, TreeIndex, plan_improvement

__all__ = ["ReferenceResult", "ReferenceMDST", "reduce_tree_degree"]


@dataclass
class ReferenceResult:
    """Outcome of running the reference engine to its fixpoint."""

    tree_edges: set[Edge]
    initial_degree: int
    final_degree: int
    swaps: int
    chains: int
    phases: int
    degree_history: List[int] = field(default_factory=list)
    moves: List[Move] = field(default_factory=list)


class ReferenceMDST:
    """Centrally scheduled executor of the paper's improvement rule.

    Parameters
    ----------
    graph:
        The network.
    initial_tree:
        Starting spanning tree; defaults to the BFS tree rooted at the
        minimum identifier (the tree the distributed substrate builds).
    max_chains:
        Safety bound on the number of improvement chains (never reached on
        the experiment suite; prevents infinite loops on pathological input).
    """

    def __init__(self, graph: nx.Graph, initial_tree: Optional[Iterable[Edge]] = None,
                 max_chains: int = 100_000):
        self.graph = graph
        if initial_tree is None:
            initial_tree = bfs_spanning_tree(graph)
        self.tree_edges: set[Edge] = set(canonical_edges(initial_tree))
        check_spanning_tree(graph, self.tree_edges)
        self.max_chains = max_chains

    def run(self, record_moves: bool = False) -> ReferenceResult:
        """Apply improvement chains until none exists; return the result."""
        nodes = list(self.graph.nodes)
        initial_degree = tree_degree(nodes, self.tree_edges)
        degree_history = [initial_degree]
        all_moves: List[Move] = []
        swaps = 0
        chains = 0
        seen_states: set[frozenset[Edge]] = {frozenset(self.tree_edges)}
        while True:
            plan = plan_improvement(self.graph, self.tree_edges)
            if plan is None:
                break
            chains += 1
            if chains > self.max_chains:
                raise ConvergenceError(
                    f"reference engine exceeded {self.max_chains} improvement chains")
            index = TreeIndex(self.graph, self.tree_edges)
            for move in plan:
                index.apply(move)
                swaps += 1
                if record_moves:
                    all_moves.append(move)
            self.tree_edges = set(index.tree_edges)
            fingerprint = frozenset(self.tree_edges)
            if fingerprint in seen_states:
                # A repeated state would mean the planner allowed a
                # non-productive chain; stop rather than loop.
                degree_history.append(tree_degree(nodes, self.tree_edges))
                break
            seen_states.add(fingerprint)
            degree_history.append(tree_degree(nodes, self.tree_edges))
        check_spanning_tree(self.graph, self.tree_edges)
        final_degree = tree_degree(nodes, self.tree_edges)
        phases = sum(1 for a, b in zip(degree_history, degree_history[1:]) if b < a)
        return ReferenceResult(
            tree_edges=set(self.tree_edges),
            initial_degree=initial_degree,
            final_degree=final_degree,
            swaps=swaps,
            chains=chains,
            phases=phases,
            degree_history=degree_history,
            moves=all_moves,
        )


def reduce_tree_degree(graph: nx.Graph, initial_tree: Optional[Iterable[Edge]] = None
                       ) -> ReferenceResult:
    """Convenience wrapper: run the reference engine once and return the result."""
    return ReferenceMDST(graph, initial_tree=initial_tree).run()
