"""Legitimacy predicates of the MDST protocol (Definition 1 + §2 MDST spec).

A configuration is *legitimate* when

1. the parent pointers of all nodes form a spanning tree of the network,
   rooted at the node with the smallest identifier, with coherent distances
   (Lemmas 1-2);
2. every node's ``dmax`` equals the true degree of that tree (the maximum
   degree module has stabilized);
3. the tree is a fixpoint of the improvement rule: no direct improvement of a
   maximum-degree node and no deblocking chain leading to one exists
   (Theorem 2: such a tree has degree at most Δ* + 1).

The first two conditions are cheap; the third calls the chain planner of
:mod:`repro.core.improvement` and is therefore only evaluated when the first
two hold.

Kernel integration: every stage accepts the pre-computed per-node snapshot
mapping so a full evaluation traverses the network exactly once (the kernel
maintains :meth:`~repro.sim.network.Network.snapshots` incrementally from
its dirty-node set and returns read-only views, so predicates can neither
pay for unchanged nodes nor corrupt the shared cache).  The predicate built by :func:`make_mdst_legitimacy`
additionally memoizes the expensive condition 3 on the induced tree edge
set: the planner verdict is a pure function of ``(graph, tree_edges)``, and
during an execution the induced tree changes far more rarely than the
gossip-churned node states, so most rounds resolve the fixpoint test with a
set lookup.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Mapping, Optional

import networkx as nx

from ..sim.network import Network
from ..stabilization.predicates import (
    distances_coherent,
    dmax_agrees_with_tree,
    has_unique_root,
    parent_map_is_spanning_tree,
    snapshot_tree_degree,
    tree_edges_from_snapshots,
)
from ..types import Edge, NodeId
from .improvement import improvement_possible

__all__ = [
    "tree_coherent",
    "degree_layer_coherent",
    "reduction_finished",
    "mdst_legitimacy",
    "make_mdst_legitimacy",
    "current_tree_edges",
    "current_tree_degree",
]

Snapshots = Mapping[NodeId, Mapping[str, object]]

#: Size bound of the per-predicate tree-fixpoint memo (distinct trees seen
#: during one run; cleared wholesale when exceeded, which never happens in
#: the experiment suite).
_REDUCTION_MEMO_LIMIT = 512


def current_tree_edges(network: Network,
                       snapshots: Optional[Snapshots] = None) -> set[Edge]:
    """Tree edge set induced by the current parent pointers."""
    return tree_edges_from_snapshots(network, snapshots)


def current_tree_degree(network: Network,
                        snapshots: Optional[Snapshots] = None) -> int:
    """Degree of the currently induced tree (0 if no edges)."""
    return snapshot_tree_degree(network, snapshots)


def tree_coherent(network: Network, snapshots: Optional[Snapshots] = None) -> bool:
    """Condition 1: unique min-id root, spanning tree, coherent distances."""
    snaps = snapshots if snapshots is not None else network.snapshots()
    if not has_unique_root(snaps):
        return False
    min_id = min(network.node_ids)
    if any(snap.get("root") != min_id for snap in snaps.values()):
        return False
    if not parent_map_is_spanning_tree(network, snaps):
        return False
    return distances_coherent(snaps)


def degree_layer_coherent(network: Network,
                          snapshots: Optional[Snapshots] = None) -> bool:
    """Condition 2: every node's ``dmax`` equals the true tree degree."""
    return dmax_agrees_with_tree(network, snapshots)


def _reduction_fixpoint(network: Network, edges: "set[Edge]") -> bool:
    """Condition 3 core: ``edges`` spans the network and is an
    improvement-rule fixpoint.  The single home of the condition-3
    semantics; both :func:`reduction_finished` and the memoizing predicate
    of :func:`make_mdst_legitimacy` delegate here."""
    if len(edges) != len(network.node_ids) - 1:
        return False
    return not improvement_possible(network.graph, edges)


def reduction_finished(network: Network,
                       snapshots: Optional[Snapshots] = None) -> bool:
    """Condition 3: the induced tree admits no further improvement chain."""
    return _reduction_fixpoint(network, current_tree_edges(network, snapshots))


def mdst_legitimacy(network: Network) -> bool:
    """Full legitimacy predicate (conditions 1-3, evaluated lazily)."""
    snaps = network.snapshots()
    if not tree_coherent(network, snaps):
        return False
    if not degree_layer_coherent(network, snaps):
        return False
    return reduction_finished(network, snaps)


def make_mdst_legitimacy(require_reduction: bool = True,
                         require_degree_layer: bool = True
                         ) -> Callable[[Network], bool]:
    """Factory producing restricted legitimacy predicates for ablations.

    ``require_reduction=False`` yields the predicate of the spanning-tree +
    max-degree layers only (used to time the substrate in isolation).

    The returned predicate is a pure function of the network's per-node
    snapshots (and the live graph), so it is safe to wrap in the
    simulator's :class:`~repro.sim.monitors.PredicateCache`; internally it
    also memoizes the improvement-rule fixpoint test per induced tree edge
    set, which skips the chain planner whenever the tree shape was already
    judged -- the verdicts themselves are unchanged.  The memo is held per
    graph (weakly, so graphs are not kept alive), making one predicate
    instance safe to reuse across networks; memo entries additionally key
    on the network's :attr:`~repro.sim.network.Network.topology_version`,
    because under live churn the same graph *object* mutates in place and a
    fixpoint verdict for one topology says nothing about the next.
    """
    memo_by_graph: "weakref.WeakKeyDictionary[nx.Graph, Dict[tuple, bool]]" = \
        weakref.WeakKeyDictionary()

    def predicate(network: Network) -> bool:
        snaps = network.snapshots()
        if not tree_coherent(network, snaps):
            return False
        if require_degree_layer and not degree_layer_coherent(network, snaps):
            return False
        if require_reduction:
            edges = current_tree_edges(network, snaps)
            reduction_memo = memo_by_graph.setdefault(network.graph, {})
            key = (network.topology_version, frozenset(edges))
            verdict = reduction_memo.get(key)
            if verdict is None:
                if len(reduction_memo) >= _REDUCTION_MEMO_LIMIT:
                    reduction_memo.clear()
                verdict = _reduction_fixpoint(network, edges)
                reduction_memo[key] = verdict
            if not verdict:
                return False
        return True
    return predicate
