"""Legitimacy predicates of the MDST protocol (Definition 1 + §2 MDST spec).

A configuration is *legitimate* when

1. the parent pointers of all nodes form a spanning tree of the network,
   rooted at the node with the smallest identifier, with coherent distances
   (Lemmas 1-2);
2. every node's ``dmax`` equals the true degree of that tree (the maximum
   degree module has stabilized);
3. the tree is a fixpoint of the improvement rule: no direct improvement of a
   maximum-degree node and no deblocking chain leading to one exists
   (Theorem 2: such a tree has degree at most Δ* + 1).

The first two conditions are cheap; the third calls the chain planner of
:mod:`repro.core.improvement` and is therefore only evaluated when the first
two hold (the simulator calls the predicate once per round).
"""

from __future__ import annotations

from typing import Callable, Optional

import networkx as nx

from ..sim.network import Network
from ..stabilization.predicates import (
    distances_coherent,
    dmax_agrees_with_tree,
    has_unique_root,
    parent_map_is_spanning_tree,
    tree_edges_from_snapshots,
)
from ..types import Edge
from .improvement import improvement_possible

__all__ = [
    "tree_coherent",
    "degree_layer_coherent",
    "reduction_finished",
    "mdst_legitimacy",
    "make_mdst_legitimacy",
    "current_tree_edges",
    "current_tree_degree",
]


def current_tree_edges(network: Network) -> set[Edge]:
    """Tree edge set induced by the current parent pointers."""
    return tree_edges_from_snapshots(network)


def current_tree_degree(network: Network) -> int:
    """Degree of the currently induced tree (0 if no edges)."""
    edges = current_tree_edges(network)
    counts: dict[int, int] = {}
    for a, b in edges:
        counts[a] = counts.get(a, 0) + 1
        counts[b] = counts.get(b, 0) + 1
    return max(counts.values()) if counts else 0


def tree_coherent(network: Network) -> bool:
    """Condition 1: unique min-id root, spanning tree, coherent distances."""
    snaps = network.snapshots()
    if not has_unique_root(snaps):
        return False
    min_id = min(network.node_ids)
    if any(snap.get("root") != min_id for snap in snaps.values()):
        return False
    if not parent_map_is_spanning_tree(network, snaps):
        return False
    return distances_coherent(snaps)


def degree_layer_coherent(network: Network) -> bool:
    """Condition 2: every node's ``dmax`` equals the true tree degree."""
    return dmax_agrees_with_tree(network)


def reduction_finished(network: Network) -> bool:
    """Condition 3: the induced tree admits no further improvement chain."""
    edges = current_tree_edges(network)
    if len(edges) != len(network.node_ids) - 1:
        return False
    return not improvement_possible(network.graph, edges)


def mdst_legitimacy(network: Network) -> bool:
    """Full legitimacy predicate (conditions 1-3, evaluated lazily)."""
    if not tree_coherent(network):
        return False
    if not degree_layer_coherent(network):
        return False
    return reduction_finished(network)


def make_mdst_legitimacy(require_reduction: bool = True,
                         require_degree_layer: bool = True
                         ) -> Callable[[Network], bool]:
    """Factory producing restricted legitimacy predicates for ablations.

    ``require_reduction=False`` yields the predicate of the spanning-tree +
    max-degree layers only (used to time the substrate in isolation).
    """
    def predicate(network: Network) -> bool:
        if not tree_coherent(network):
            return False
        if require_degree_layer and not degree_layer_coherent(network):
            return False
        if require_reduction and not reduction_finished(network):
            return False
        return True
    return predicate
