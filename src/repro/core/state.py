"""Per-node protocol state of the MDST algorithm (§3.1 "Variables").

Every node keeps

* the spanning-tree variables ``root``, ``parent``, ``distance``;
* the degree bookkeeping ``dmax`` (estimate of ``deg(T)``), ``sub_max``
  (PIF feedback value: maximum tree degree within the node's subtree) and
  ``color`` (the ``color_tree`` consistency flag);
* one cached :class:`NeighborState` per neighbour, refreshed from ``MInfo``
  gossip -- this is the send/receive atomicity model: a node computes only on
  its own variables plus these cached copies.

The tree membership of an edge (``edge_status`` in the paper) and the node's
own tree degree (``deg_v``) are *derived*: an edge ``{v, u}`` is a tree edge
iff ``parent_v = u`` or the cached copy of ``parent_u`` equals ``v``.
Deriving instead of storing removes a whole class of inconsistencies the
paper has to repair explicitly.

Both classes are *slotted* plain classes rather than dataclasses: there are
O(m) :class:`NeighborState` instances in a simulation and every gossip
receipt reads and writes most of their fields, so the fixed attribute layout
(no per-instance ``__dict__``) measurably lowers the per-step constant.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from ..types import NodeId

__all__ = ["NeighborState", "MDSTState"]


class NeighborState:
    """Cached copy of one neighbour's gossiped variables."""

    __slots__ = ("root", "parent", "distance", "degree", "sub_max", "dmax",
                 "color", "heard")

    def __init__(self, root: int = 0, parent: int = 0, distance: int = 0,
                 degree: int = 0, sub_max: int = 0, dmax: int = 0,
                 color: bool = True, heard: bool = False):
        self.root = root
        self.parent = parent
        self.distance = distance
        self.degree = degree
        self.sub_max = sub_max
        self.dmax = dmax
        self.color = color
        self.heard = heard

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"NeighborState(root={self.root}, parent={self.parent}, "
                f"distance={self.distance}, degree={self.degree}, "
                f"sub_max={self.sub_max}, dmax={self.dmax}, "
                f"color={self.color}, heard={self.heard})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NeighborState):
            return NotImplemented
        return (self.root == other.root and self.parent == other.parent
                and self.distance == other.distance
                and self.degree == other.degree
                and self.sub_max == other.sub_max and self.dmax == other.dmax
                and self.color == other.color and self.heard == other.heard)


class MDSTState:
    """All protocol variables owned by one node."""

    __slots__ = ("node_id", "neighbors", "n_upper", "root", "parent",
                 "distance", "sub_max", "dmax", "color", "view")

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 n_upper: int, root: int = 0, parent: int = 0,
                 distance: int = 0, sub_max: int = 0, dmax: int = 0,
                 color: bool = True,
                 view: Optional[Dict[NodeId, NeighborState]] = None):
        self.node_id = node_id
        self.neighbors = neighbors
        self.n_upper = n_upper
        self.root = root
        self.parent = parent
        self.distance = distance
        self.sub_max = sub_max
        self.dmax = dmax
        self.color = color
        if root == 0 and parent == 0 and node_id != 0:
            # default construction: start as own root (legal but arbitrary)
            self.root = node_id
            self.parent = node_id
        self.view = view if view else {u: NeighborState() for u in neighbors}

    # -- derived quantities -----------------------------------------------------

    def is_tree_edge(self, u: NodeId) -> bool:
        """``edge_status_v[u]`` derived from parent pointers (own + cached)."""
        view = self.view.get(u)
        if view is None:
            return False
        if self.parent == u:
            return True
        return view.heard and view.parent == self.node_id

    def tree_neighbors(self) -> list[NodeId]:
        """Neighbours connected to this node by a tree edge."""
        me = self.node_id
        parent = self.parent
        return [u for u, nv in self.view.items()
                if parent == u or (nv.heard and nv.parent == me)]

    def children(self) -> list[NodeId]:
        """Neighbours whose cached parent pointer designates this node."""
        me = self.node_id
        return [u for u, nv in self.view.items()
                if nv.heard and nv.parent == me]

    @property
    def degree(self) -> int:
        """``deg_v``: this node's degree in the current tree."""
        me = self.node_id
        parent = self.parent
        deg = 0
        for u, nv in self.view.items():
            if parent == u or (nv.heard and nv.parent == me):
                deg += 1
        return deg

    def non_tree_neighbors(self) -> list[NodeId]:
        """Neighbours joined to this node by a non-tree edge."""
        me = self.node_id
        parent = self.parent
        return [u for u, nv in self.view.items()
                if not (parent == u or (nv.heard and nv.parent == me))]

    # -- dynamic topology -------------------------------------------------------

    def neighbor_added(self, neighbors: Sequence[NodeId], u: NodeId) -> None:
        """A link to ``u`` appeared: adopt the new neighbour sequence and
        start a blank (unheard) cached view -- the edge is a non-tree edge
        until gossip establishes otherwise."""
        self.neighbors = neighbors
        self.view[u] = NeighborState()

    def neighbor_removed(self, neighbors: Sequence[NodeId], u: NodeId) -> None:
        """The link to ``u`` died: adopt the shrunk neighbour sequence and
        evict the stale cached view so no rule ever reads it again."""
        self.neighbors = neighbors
        self.view.pop(u, None)

    # -- corruption / accounting ---------------------------------------------------

    def corrupt(self, rng: np.random.Generator) -> None:
        """Overwrite every variable (own and cached) with arbitrary values."""
        pool = list(self.neighbors) + [self.node_id, int(rng.integers(-5, self.n_upper + 5))]
        self.root = int(rng.choice(pool))
        self.parent = int(rng.choice(list(self.neighbors) + [self.node_id]))
        self.distance = int(rng.integers(0, max(2, self.n_upper)))
        self.sub_max = int(rng.integers(0, max(2, self.n_upper)))
        self.dmax = int(rng.integers(0, max(2, self.n_upper)))
        self.color = bool(rng.integers(0, 2))
        for view in self.view.values():
            view.root = int(rng.choice(pool))
            view.parent = int(rng.choice(pool))
            view.distance = int(rng.integers(0, max(2, self.n_upper)))
            view.degree = int(rng.integers(0, max(2, self.n_upper)))
            view.sub_max = int(rng.integers(0, max(2, self.n_upper)))
            view.dmax = int(rng.integers(0, max(2, self.n_upper)))
            view.color = bool(rng.integers(0, 2))
            view.heard = bool(rng.integers(0, 2))

    def state_bits(self, network_size: int) -> int:
        """Memory footprint in bits: O(δ log n) in the send/receive model."""
        idbits = max(1, math.ceil(math.log2(max(network_size, 2)))) + 1
        own = 5 * idbits + 1                       # root, parent, distance, sub_max, dmax, color
        per_neighbor = 6 * idbits + 2              # cached copy + color + heard
        return own + per_neighbor * len(self.neighbors)

    def snapshot(self) -> Dict[str, object]:
        """Protocol variables exposed to global checks and traces."""
        return {
            "root": self.root,
            "parent": self.parent,
            "distance": self.distance,
            "degree": self.degree,
            "sub_max": self.sub_max,
            "dmax": self.dmax,
            "color": self.color,
        }
