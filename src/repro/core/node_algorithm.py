"""The self-stabilizing MDST algorithm at a single node (Figures 1-3).

The :class:`MDSTNode` composes the four modules described in §3.2 of the
paper:

1. **Spanning-tree module** -- rules R1 (adopt a smaller root) and R2 (reset
   on incoherence), plus the gentle distance-repair rule R3 and the distance
   bound ``n_upper`` discussed in ``repro.stabilization.spanning_tree``.
2. **Maximum-degree module** -- the PIF aggregation (``sub_max`` up the tree,
   ``dmax`` down the tree) piggybacked on the ``MInfo`` gossip, and the
   ``color`` flag marking local ``dmax`` consistency.
3. **Fundamental-cycle detection** -- for each non-tree edge whose smaller
   endpoint is this node, a DFS ``Search`` token walks tree edges until it
   reaches the other endpoint; the token carries the cycle path and the
   degrees of its nodes.
4. **Degree reduction** -- ``Action_on_Cycle`` evaluates the improvement
   condition (Eq. 1) when a search completes; ``Improve`` launches a
   ``Remove`` message along the cycle which deletes the chosen tree edge,
   re-orients the cycle segment that switched sides (``Remove`` with
   ``reversing=True`` or ``Back``) and finally adopts the new edge;
   ``Deblock`` floods a request to reduce the degree of a blocking node.

Choreography of an improvement (interpretation of Figures 2 and 5)
------------------------------------------------------------------
Let ``e = {x, y}`` be the non-tree edge (``y`` initiated the search, ``x`` ran
``Action_on_Cycle``), ``P = [y, n1, ..., nk, x]`` the cycle and ``{w, z}`` the
tree edge to delete.  ``x`` sends ``Remove`` to ``y`` across ``e``; the message
travels along ``P``.  When it reaches the first endpoint of ``{w, z}`` the
guard is re-checked (degree unchanged, edge still in the tree); on failure the
message is dropped and nothing has changed.  On success the deletion is
performed by the *child* endpoint ``c`` (the one whose parent is the other),
because tree membership is derived from parent pointers.  Two cases follow:

* the child side faces ``x``: the ``Remove`` continues with
  ``reversing=True``; every node up to ``x`` re-points its parent to the next
  node of ``P`` and ``x`` finally adopts ``parent_x = y`` (the paper's
  ``source_remove`` branch);
* the child side faces ``y``: a ``Back`` message retraces the already
  traversed prefix of ``P``; every node re-points its parent to the previous
  node of ``P`` and ``y`` finally adopts ``parent_y = x``.

Distances along the re-oriented segment are repaired by the spanning-tree
layer's rule R3 from subsequent gossip (the ``UpdateDist`` message of the
paper is therefore not required for correctness; see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..sim.messages import Message
from ..sim.node import Process
from ..types import NodeId
from .messages import Back, Deblock, MInfo, Remove, Reverse, Search, UpdateDist
from .state import MDSTState, NeighborState

__all__ = ["MDSTNode", "mdst_node_factory"]


class MDSTNode(Process):
    """One processor running the full self-stabilizing MDST algorithm.

    Parameters
    ----------
    node_id, neighbors:
        Standard :class:`~repro.sim.node.Process` arguments.
    n_upper:
        Upper bound on the network size (distance bound of the tree layer).
    search_period:
        A node initiates at most one spontaneous cycle search every
        ``search_period`` of its own timeout steps (throttles the DFS load).
    deblock_cooldown:
        Minimum number of own steps between two processings of a ``Deblock``
        wave for the same blocking node (throttles flooding).
    enable_reduction:
        When ``False`` the node only runs the spanning-tree and max-degree
        layers (used by ablation benchmarks).
    """

    __slots__ = ("n_upper", "search_period", "deblock_cooldown",
                 "enable_reduction", "_jitter", "s", "_search_cursor",
                 "_timeout_count", "_deblock_seen", "stats",
                 "_gossip_sig", "_gossip_msg")

    def __init__(self, node_id: NodeId, neighbors: Sequence[NodeId],
                 n_upper: int | None = None,
                 search_period: int = 3,
                 deblock_cooldown: int = 30,
                 enable_reduction: bool = True):
        super().__init__(node_id, neighbors)
        self.n_upper = int(n_upper) if n_upper is not None else 1 << 16
        self.search_period = max(1, int(search_period))
        self.deblock_cooldown = max(1, int(deblock_cooldown))
        self.enable_reduction = enable_reduction
        # Per-node deterministic jitter stream used to decide when to start a
        # spontaneous cycle search.  A perfectly synchronous daemon would
        # otherwise keep symmetric nodes in lockstep and concurrent
        # improvements could invalidate each other forever; the asynchronous
        # model of the paper provides this asymmetry for free, the jitter
        # reintroduces it under the synchronous scheduler (see DESIGN.md).
        self._jitter = np.random.default_rng((node_id * 2654435761 + 97) % (2**31 - 1))
        self.s = self._make_state()
        self.s.root = node_id
        self.s.parent = node_id
        self.s.distance = 0
        # Round-robin pointer over the node's non-tree edges for search initiation.
        self._search_cursor = 0
        self._timeout_count = 0
        self._deblock_seen: Dict[int, int] = {}
        # Interned gossip payload: the (immutable) MInfo of the last gossip
        # and the variable tuple it was built from.  While the gossiped
        # variables are unchanged the same message object is re-broadcast,
        # avoiding one frozen-dataclass allocation (and one size-accounting
        # pass) per node per round in stable phases.
        self._gossip_sig: Optional[Tuple[int, int, int, int, int, int, bool]] = None
        self._gossip_msg: Optional[MInfo] = None
        # Counters exposed to the analysis layer (not protocol state).
        self.stats = {
            "searches_initiated": 0,
            "actions_on_cycle": 0,
            "improvements_started": 0,
            "removals_performed": 0,
            "removals_aborted": 0,
            "deblocks_broadcast": 0,
            "attachments": 0,
        }

    def _make_state(self) -> MDSTState:
        """State-storage hook: backends override to supply column-backed
        state without first paying for a throwaway per-object one."""
        return MDSTState(node_id=self.node_id, neighbors=self.neighbors,
                         n_upper=self.n_upper)

    # ======================================================================
    # Spanning-tree layer (rules R1 / R2 / R3)
    # ======================================================================

    def _better_parent(self) -> bool:
        root = self.s.root
        for v in self.s.view.values():
            if v.heard and v.root < root:
                return True
        return False

    def _coherent_parent(self) -> bool:
        st = self.s
        if st.root > self.node_id:
            # our own identifier would be a better root: corrupted value
            return False
        if st.parent == self.node_id:
            return st.root == self.node_id and st.distance == 0
        if st.parent not in st.view:
            return False
        pv = st.view[st.parent]
        return (not pv.heard) or pv.root == st.root

    def _coherent_distance(self) -> bool:
        st = self.s
        if st.distance >= self.n_upper:
            return False
        if st.parent == self.node_id:
            return st.distance == 0
        pv = st.view.get(st.parent)
        if pv is None:
            return False
        return (not pv.heard) or st.distance == pv.distance + 1

    def _new_root_candidate(self) -> bool:
        return not self._coherent_parent() or self.s.distance >= self.n_upper

    def tree_stabilized(self) -> bool:
        """Paper predicate ``tree_stabilized(v)``."""
        return (not self._better_parent() and not self._new_root_candidate()
                and self._coherent_distance())

    def _create_new_root(self) -> None:
        self.s.root = self.node_id
        self.s.parent = self.node_id
        self.s.distance = 0

    def _apply_tree_rules(self) -> None:
        st = self.s
        if self._new_root_candidate():                                   # R2
            self._create_new_root()
        if not self._new_root_candidate() and self._better_parent():     # R1
            candidates = [u for u, v in st.view.items()
                          if v.heard and v.root < st.root and v.distance + 1 < self.n_upper]
            if candidates:
                best_root = min(st.view[u].root for u in candidates)
                best = min(u for u in candidates if st.view[u].root == best_root)
                st.root = st.view[best].root
                st.parent = best
                st.distance = st.view[best].distance + 1
        if not self._new_root_candidate() and not self._coherent_distance():  # R3
            if st.parent == self.node_id:
                st.distance = 0
            else:
                pv = st.view.get(st.parent)
                if pv is not None and pv.heard:
                    st.distance = pv.distance + 1
            if st.distance >= self.n_upper:
                self._create_new_root()

    # ======================================================================
    # Maximum-degree layer (PIF aggregation + color)
    # ======================================================================

    def _update_degree_layer(self) -> None:
        # One fused pass over the neighbour views computes the node's tree
        # degree and the maximum ``sub_max`` among its children (the two
        # quantities the PIF feedback aggregates); semantics are identical
        # to deriving them separately, just without the intermediate lists.
        st = self.s
        me = self.node_id
        parent = st.parent
        degree = 0
        child_max: Optional[int] = None
        for u, nv in st.view.items():
            if nv.heard and nv.parent == me:
                degree += 1
                if child_max is None or nv.sub_max > child_max:
                    child_max = nv.sub_max
            elif parent == u:
                degree += 1
        st.sub_max = degree if child_max is None or degree > child_max else child_max
        if parent == me:
            st.dmax = st.sub_max
        else:
            pv = st.view.get(parent)
            st.dmax = pv.dmax if pv is not None and pv.heard else st.sub_max
        st.color = self._degree_stabilized()

    def _degree_stabilized(self) -> bool:
        """Paper predicate ``degree_stabilized(v)``: neighbourhood agrees on dmax."""
        dmax = self.s.dmax
        for v in self.s.view.values():
            if v.heard and v.dmax != dmax:
                return False
        return True

    def _color_stabilized(self) -> bool:
        """Paper predicate ``color_stabilized(v)``."""
        color = self.s.color
        for v in self.s.view.values():
            if v.heard and v.color != color:
                return False
        return True

    def locally_stabilized(self) -> bool:
        """Paper predicate ``locally_stabilized(v)`` gating the reduction layer."""
        return (self.tree_stabilized() and self.s.color
                and self._degree_stabilized() and self._color_stabilized())

    # ======================================================================
    # Gossip
    # ======================================================================

    def _refresh(self) -> None:
        """Re-evaluate all layers after any state or view change."""
        self._apply_tree_rules()
        self._update_degree_layer()

    def _gossip(self) -> None:
        st = self.s
        sig = (st.root, st.parent, st.distance, st.degree, st.sub_max,
               st.dmax, st.color)
        msg = self._gossip_msg
        if msg is None or sig != self._gossip_sig:
            msg = MInfo(root=sig[0], parent=sig[1], distance=sig[2],
                        degree=sig[3], sub_max=sig[4], dmax=sig[5],
                        color=sig[6])
            self._gossip_sig = sig
            self._gossip_msg = msg
        self.broadcast(msg)

    def on_timeout(self) -> None:
        self._timeout_count += 1
        self._refresh()
        self._gossip()
        if self.enable_reduction:
            self._maybe_initiate_search()

    def on_message(self, sender: NodeId, message: Message) -> None:
        if sender not in self.s.view:
            return
        if isinstance(message, MInfo):
            self._handle_info(sender, message)
        elif not self.enable_reduction:
            return
        elif isinstance(message, Search):
            self._handle_search(sender, message)
        elif isinstance(message, Remove):
            self._handle_remove(sender, message)
        elif isinstance(message, Back):
            self._handle_back(sender, message)
        elif isinstance(message, Deblock):
            self._handle_deblock(sender, message)
        elif isinstance(message, Reverse):
            self._handle_reverse(sender, message)
        elif isinstance(message, UpdateDist):
            self._handle_update_dist(sender, message)
        # anything else (garbage) is ignored and thereby flushed

    def _handle_info(self, sender: NodeId, msg: MInfo) -> None:
        view = self.s.view[sender]
        view.root = msg.root
        view.parent = msg.parent
        view.distance = msg.distance
        view.degree = msg.degree
        view.sub_max = msg.sub_max
        view.dmax = msg.dmax
        view.color = msg.color
        view.heard = True
        self._refresh()

    # ======================================================================
    # Fundamental-cycle detection (Figure 3)
    # ======================================================================

    def _maybe_initiate_search(self) -> None:
        """Spontaneously start a cycle search for one of our non-tree edges.

        On average one search every ``search_period`` timeouts, with per-node
        jitter so symmetric nodes do not stay synchronized forever.
        """
        if self._jitter.random() >= 1.0 / self.search_period:
            return
        if not self.locally_stabilized() or self.s.dmax < 3:
            return
        self._initiate_searches(idblock=None, limit=1)

    def _initiate_searches(self, idblock: Optional[int], limit: int | None = None) -> None:
        """Start DFS searches for non-tree edges whose initiator is this node.

        The paper makes the smaller-identifier endpoint of every non-tree edge
        responsible for discovering its fundamental cycle.
        """
        st = self.s
        candidates = [u for u in st.non_tree_neighbors()
                      if self.node_id < u and st.view[u].heard]
        if not candidates:
            return
        tree_nbrs = st.tree_neighbors()
        if not tree_nbrs:
            return
        started = 0
        order = candidates[self._search_cursor % len(candidates):] + \
            candidates[:self._search_cursor % len(candidates)]
        for target in order:
            if limit is not None and started >= limit:
                break
            first_hop = target if target in tree_nbrs else min(tree_nbrs)
            if first_hop == target:
                # degenerate: the "non-tree" neighbour became a tree neighbour
                continue
            msg = Search(init_edge=(target, self.node_id), idblock=idblock,
                         path=((self.node_id, st.degree),),
                         visited=(self.node_id,))
            self.send(first_hop, msg)
            self.stats["searches_initiated"] += 1
            started += 1
        self._search_cursor += started if started else 1

    def _handle_search(self, sender: NodeId, msg: Search) -> None:
        if not self.locally_stabilized():
            return  # the reduction layer is frozen until the neighbourhood settles
        target, initiator = msg.init_edge
        st = self.s
        if self.node_id == target:
            # The DFS token reached the other endpoint of the non-tree edge.
            if initiator not in st.view or st.is_tree_edge(initiator):
                return
            if not st.view[initiator].heard:
                return
            self.stats["actions_on_cycle"] += 1
            self._action_on_cycle(msg.idblock, initiator, msg.path, sender)
            return
        if self.node_id == initiator and len(msg.visited) > 1:
            # Token came back to the initiator without finding the target
            # through this branch; treat like any other node (backtrack logic
            # below handles it) -- falling through is intentional.
            pass
        visited = set(msg.visited)
        visited.add(self.node_id)
        tree_nbrs = st.tree_neighbors()
        candidates = [u for u in tree_nbrs if u not in visited]
        if candidates:
            nxt = target if target in candidates else min(candidates)
            new_path = msg.path + ((self.node_id, st.degree),)
            self.send(nxt, Search(init_edge=msg.init_edge, idblock=msg.idblock,
                                  path=new_path, visited=tuple(sorted(visited))))
            return
        # Dead end: backtrack to the previous node on the DFS stack.
        if not msg.path:
            return
        prev_node = msg.path[-1][0]
        if prev_node == self.node_id:
            if len(msg.path) < 2:
                return
            prev_node = msg.path[-2][0]
            new_path = msg.path[:-2]
        else:
            new_path = msg.path[:-1]
        if prev_node not in st.view:
            return
        self.send(prev_node, Search(init_edge=msg.init_edge, idblock=msg.idblock,
                                    path=new_path, visited=tuple(sorted(visited))))

    # ======================================================================
    # Action on cycle / Improve / Deblock (Figure 1)
    # ======================================================================

    def _action_on_cycle(self, idblock: Optional[int], initiator: NodeId,
                         path: Tuple[Tuple[int, int], ...], sender: NodeId) -> None:
        """Decide what to do with a freshly discovered fundamental cycle."""
        st = self.s
        if not path:
            return
        path_nodes = [p for p, _ in path]
        path_degs = {p: d for p, d in path}
        deg_self = st.degree
        deg_init = st.view[initiator].degree
        endpoint_max = max(deg_self, deg_init)
        if idblock is None:
            d_path = max(path_degs.values())
            if st.dmax != d_path:
                return  # the cycle does not contain a maximum-degree node
            if endpoint_max == st.dmax - 1:
                self._deblock(initiator, sender)
            elif endpoint_max < st.dmax - 1:
                interior = [p for p in path_nodes
                            if p != initiator and path_degs[p] == d_path]
                if not interior:
                    return
                w = min(interior)
                z = self._cycle_neighbor_of(w, path_nodes)
                if z is None:
                    return
                self._improve(initiator, path_degs[w], (w, z), path_nodes)
        else:
            if idblock not in path_nodes or idblock == initiator:
                return
            if path_degs[idblock] != st.dmax - 1:
                return  # the blocking node already lost a degree: stale request
            if endpoint_max == st.dmax - 1:
                self._deblock(initiator, sender)
            elif endpoint_max < st.dmax - 1:
                z = self._cycle_neighbor_of(idblock, path_nodes)
                if z is None:
                    return
                self._improve(initiator, path_degs[idblock], (idblock, z), path_nodes)

    def _cycle_neighbor_of(self, w: NodeId, path_nodes: List[NodeId]) -> Optional[NodeId]:
        """Pick the cycle edge incident to ``w``: its neighbour along the cycle.

        The cycle order is ``path_nodes + [self]``; the neighbour with the
        smaller identifier is chosen, matching the reference planner.
        """
        full = list(path_nodes) + [self.node_id]
        try:
            pos = full.index(w)
        except ValueError:
            return None
        options = []
        if pos > 0:
            options.append(full[pos - 1])
        if pos < len(full) - 1:
            options.append(full[pos + 1])
        return min(options) if options else None

    def _improve(self, initiator: NodeId, deg_max: int, target_edge: Tuple[int, int],
                 path_nodes: List[NodeId]) -> None:
        """Launch the ``Remove`` message implementing the edge swap."""
        st = self.s
        full_path = tuple(path_nodes) + (self.node_id,)
        msg = Remove(init_edge=(self.node_id, initiator), deg_max=deg_max,
                     target_edge=tuple(target_edge), path=full_path, reversing=False)
        self.stats["improvements_started"] += 1
        # Special case: the target edge is incident to this very node.
        w, z = target_edge
        if self.node_id in (w, z):
            self._execute_remove_at_endpoint(msg, arrived_from=initiator)
            return
        self.send(initiator, msg)

    def _deblock(self, initiator: NodeId, sender: NodeId) -> None:
        """Procedure ``Deblock(y, s)`` of Figure 1."""
        st = self.s
        deg_self = st.degree
        deg_init = st.view[initiator].degree
        if deg_self >= deg_init:
            self._broadcast_deblock(self.node_id, exclude=sender)
        if deg_init >= deg_self:
            self.send(initiator, Deblock(idblock=initiator))

    def _broadcast_deblock(self, idblock: int, exclude: NodeId | None) -> None:
        """Procedure ``Broadcast(idblock, s)``: flood + start searches."""
        last = self._deblock_seen.get(idblock)
        if last is not None and self.steps_taken - last < self.deblock_cooldown:
            return
        self._deblock_seen[idblock] = self.steps_taken
        self.stats["deblocks_broadcast"] += 1
        for u in self.s.tree_neighbors():
            if u != exclude:
                self.send(u, Deblock(idblock=idblock))
        self._initiate_searches(idblock=idblock, limit=2)

    def _handle_deblock(self, sender: NodeId, msg: Deblock) -> None:
        if not self.locally_stabilized():
            return
        self._broadcast_deblock(msg.idblock, exclude=sender)

    # ======================================================================
    # Remove / Back: executing the swap (Figure 2)
    # ======================================================================

    def _handle_remove(self, sender: NodeId, msg: Remove) -> None:
        path = list(msg.path)
        if self.node_id not in path:
            return
        idx = path.index(self.node_id)
        if msg.reversing:
            self._continue_reversal(msg, idx)
            return
        w, z = msg.target_edge
        if self.node_id in (w, z):
            self._execute_remove_at_endpoint(msg, arrived_from=sender)
            return
        # Not yet at the target edge: forward along the cycle toward the action node.
        if idx + 1 < len(path):
            nxt = path[idx + 1]
            if nxt in self.s.view:
                self.send(nxt, msg)

    def _execute_remove_at_endpoint(self, msg: Remove, arrived_from: NodeId) -> None:
        """Guard-check and perform the deletion of the target edge."""
        st = self.s
        path = list(msg.path)
        w, z = msg.target_edge
        other = z if self.node_id == w else w
        if other not in st.view:
            self.stats["removals_aborted"] += 1
            return
        # Guard (target_remove): the edge must still be a tree edge and the
        # degree of one of its endpoints must still equal deg_max.
        if not st.is_tree_edge(other):
            self.stats["removals_aborted"] += 1
            return
        if st.degree != msg.deg_max and st.view[other].degree != msg.deg_max:
            self.stats["removals_aborted"] += 1
            return
        idx = path.index(self.node_id)
        if other not in path:
            self.stats["removals_aborted"] += 1
            return
        other_idx = path.index(other)
        action_node, initiator = msg.init_edge
        if st.parent == other:
            # This node is the child of the removed edge: the cycle segment on
            # *this* side of the removed edge switches over to hang from the
            # new edge.  Which side that is depends on where ``other`` sits.
            self.stats["removals_performed"] += 1
            self.s.color = not self.s.color
            if other_idx == idx + 1:
                # Our side is the initiator side (path[0..idx]): re-orient it
                # backwards with a Back wave; the initiator finally attaches
                # to the action node (Figure 5, case (b)).
                if idx == 0:
                    self._attach(action_node)
                    return
                new_parent = path[idx - 1]
                self._repoint(new_parent)
                self.send(new_parent, Back(init_edge=msg.init_edge, path=msg.path,
                                           position=idx - 1))
            else:
                # Our side is the action-node side (path[idx..end]); this only
                # happens when the action node handled the Remove locally.
                if idx == len(path) - 1:
                    self._attach(initiator)
                    return
                new_parent = path[idx + 1]
                self._repoint(new_parent)
                self.send(new_parent, Remove(init_edge=msg.init_edge,
                                             deg_max=msg.deg_max,
                                             target_edge=msg.target_edge,
                                             path=msg.path, reversing=True))
        else:
            other_view = st.view[other]
            if not (other_view.heard and other_view.parent == self.node_id):
                # Neither endpoint considers the other its parent: the edge
                # has concurrently stopped being a tree edge -- abort.
                self.stats["removals_aborted"] += 1
                return
            # The other endpoint is the child: its side of the cycle switches.
            self.stats["removals_performed"] += 1
            self.s.color = not self.s.color
            if other_idx == idx + 1:
                # Child side faces the action node: forward the Remove with
                # reversing=True; each node re-points to the next one and the
                # action node attaches to the initiator (source_remove branch).
                self.send(other, Remove(init_edge=msg.init_edge, deg_max=msg.deg_max,
                                        target_edge=msg.target_edge, path=msg.path,
                                        reversing=True))
            else:
                # Child side faces the initiator: start a Back wave at the
                # child; it re-points backwards and the initiator finally
                # attaches to the action node.
                self.send(other, Back(init_edge=msg.init_edge, path=msg.path,
                                      position=other_idx))

    def _continue_reversal(self, msg: Remove, idx: int) -> None:
        """Handle ``Remove`` with ``reversing=True``: re-point and forward."""
        path = list(msg.path)
        action_node, initiator = msg.init_edge
        if self.node_id == action_node or idx == len(path) - 1:
            # Reached the action node: adopt the new (previously non-tree) edge.
            self._attach(initiator)
            return
        nxt = path[idx + 1]
        if nxt not in self.s.view:
            return
        self._repoint(nxt)
        self.send(nxt, msg)

    def _handle_back(self, sender: NodeId, msg: Back) -> None:
        path = list(msg.path)
        if msg.position < 0 or msg.position >= len(path):
            return
        if path[msg.position] != self.node_id:
            return
        action_node, initiator = msg.init_edge
        if msg.position == 0 or self.node_id == initiator:
            self._attach(action_node)
            return
        new_parent = path[msg.position - 1]
        if new_parent not in self.s.view:
            return
        self._repoint(new_parent)
        self.send(new_parent, Back(init_edge=msg.init_edge, path=msg.path,
                                   position=msg.position - 1))

    def _handle_reverse(self, sender: NodeId, msg: Reverse) -> None:
        """``Reverse`` (Reverse_Aux): re-point toward the sender up to ``target``."""
        if msg.target == self.node_id:
            return
        old_parent = self.s.parent
        self._repoint(sender)
        if old_parent != self.node_id and old_parent in self.s.view:
            self.send(old_parent, Reverse(target=msg.target))

    def _handle_update_dist(self, sender: NodeId, msg: UpdateDist) -> None:
        """``UpdateDist``: adopt the announced distance if the sender is our parent."""
        if self.s.parent == sender:
            self.s.distance = msg.dist + 1
            for child in self.s.children():
                self.send(child, UpdateDist(target_edge=msg.target_edge,
                                            dist=self.s.distance))

    # -- local mutations --------------------------------------------------------

    def _repoint(self, new_parent: NodeId) -> None:
        """Change the parent pointer as part of a cycle re-orientation."""
        st = self.s
        st.parent = new_parent
        pv = st.view.get(new_parent)
        if pv is not None and pv.heard:
            st.root = min(st.root, pv.root)
            st.distance = min(pv.distance + 1, self.n_upper - 1)
        self._update_degree_layer()
        self._gossip()

    def _attach(self, new_parent: NodeId) -> None:
        """Adopt the new non-tree edge at the end of an improvement."""
        self.stats["attachments"] += 1
        self.s.color = not self.s.color
        self._repoint(new_parent)
        for child in self.s.children():
            self.send(child, UpdateDist(target_edge=(self.node_id, new_parent),
                                        dist=self.s.distance))

    # ======================================================================
    # Dynamic topology (live neighbour-set deltas)
    # ======================================================================

    def add_neighbor(self, u: NodeId) -> None:
        """A link to ``u`` appeared at runtime.

        The new neighbour starts as an unheard non-tree edge; the next
        timeout gossips our variables across it and subsequent searches may
        discover the fundamental cycles it creates.
        """
        super().add_neighbor(u)
        self.s.neighbor_added(self.neighbors, u)
        self._refresh()

    def remove_neighbor(self, u: NodeId) -> None:
        """The link to ``u`` died at runtime.

        Evicts the stale cached :class:`~repro.core.state.NeighborState`;
        if ``u`` was our parent the tree edge is gone, so we re-enter the
        correction phase as a fresh root (rule R2's premise -- an incoherent
        parent pointer -- made explicit) and let R1 re-attach us to the
        surviving tree through gossip.
        """
        super().remove_neighbor(u)
        lost_parent = self.s.parent == u
        self.s.neighbor_removed(self.neighbors, u)
        if lost_parent:
            self._create_new_root()
        self._refresh()

    # ======================================================================
    # Self-stabilization support / introspection
    # ======================================================================

    def corrupt(self, rng: np.random.Generator) -> None:
        self.s.corrupt(rng)
        self._search_cursor = int(rng.integers(0, 8))
        self._deblock_seen.clear()

    def state_bits(self, network_size: int) -> int:
        return self.s.state_bits(network_size)

    def snapshot(self) -> Dict[str, object]:
        return self.s.snapshot()


def mdst_node_factory(n_upper: int | None = None, search_period: int = 3,
                      deblock_cooldown: int = 30, enable_reduction: bool = True):
    """Factory suitable for :class:`repro.sim.network.Network` construction."""
    def factory(node_id: NodeId, neighbors: Sequence[NodeId]) -> MDSTNode:
        return MDSTNode(node_id, neighbors, n_upper=n_upper,
                        search_period=search_period,
                        deblock_cooldown=deblock_cooldown,
                        enable_reduction=enable_reduction)
    return factory
