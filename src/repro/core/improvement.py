"""Improvement logic: improving edges, blocking nodes, deblock chains.

This module captures, as *pure functions over a tree*, the improvement rule
at the heart of the paper (inherited from Fürer & Raghavachari):

* an **improving edge** ``e = {u, v}`` (non-tree) for a tree ``T`` of degree
  ``k`` is one whose fundamental cycle ``C_e`` contains a node ``w`` distinct
  from ``u`` and ``v`` with ``deg_T(w) = k`` and such that
  ``deg_T(w) >= max(deg_T(u), deg_T(v)) + 2``  (Eq. 1);
* a **blocking node** for ``C_e`` is an endpoint of ``e`` with degree
  ``k - 1``: adding ``e`` would promote it to degree ``k``;
* a blocking node ``w`` can be **deblocked** by first performing a swap that
  reduces ``deg_T(w)`` by one, using another non-tree edge whose fundamental
  cycle passes through ``w`` and whose endpoints are themselves of degree at
  most ``k - 2`` (or recursively deblockable).

:func:`plan_improvement` searches for a complete *chain* of swaps -- zero or
more deblocking swaps followed by one direct improvement of a maximum-degree
node -- simulating each swap while planning so the chain is consistent.  The
chain formulation guarantees progress: each executed chain strictly decreases
the number of maximum-degree nodes without ever creating a new one, which is
exactly the argument behind the paper's Lemmas 3-4.

The same machinery doubles as the *global legitimacy check*: a configuration
whose tree admits no chain is a fixpoint of the algorithm, and by the paper's
Theorem 2 (via Fürer–Raghavachari's Theorem 1) its degree is at most Δ*+1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..exceptions import GraphError, NotASpanningTreeError
from ..types import Edge, NodeId, canonical_edge, canonical_edges

__all__ = [
    "TreeIndex",
    "Move",
    "is_improving_edge",
    "blocking_nodes",
    "plan_improvement",
    "improvement_possible",
    "apply_moves",
]


@dataclass(frozen=True)
class Move:
    """A single swap: insert ``add`` into the tree and delete ``remove``.

    ``target`` is the node whose degree the swap is meant to decrease (a
    maximum-degree node for a direct improvement, a blocking node for a
    deblocking swap); ``kind`` is ``"improve"`` or ``"deblock"``.
    """

    add: Edge
    remove: Edge
    target: NodeId
    kind: str = "improve"


class TreeIndex:
    """Mutable index of a spanning tree supporting cycle queries and swaps.

    The index keeps tree adjacency and degrees incrementally up to date so
    that the planning search (which simulates candidate swaps) stays cheap.
    """

    def __init__(self, graph: nx.Graph, tree_edges: Iterable[Edge]):
        self.graph = graph
        self.nodes: List[NodeId] = sorted(graph.nodes)
        self.tree_edges: set[Edge] = set(canonical_edges(tree_edges))
        if len(self.tree_edges) != len(self.nodes) - 1:
            raise NotASpanningTreeError(
                f"expected {len(self.nodes) - 1} tree edges, got {len(self.tree_edges)}")
        self.adj: Dict[NodeId, set[NodeId]] = {v: set() for v in self.nodes}
        for u, v in self.tree_edges:
            if not graph.has_edge(u, v):
                raise NotASpanningTreeError(f"tree edge {(u, v)} is not a graph edge")
            self.adj[u].add(v)
            self.adj[v].add(u)
        self.degree: Dict[NodeId, int] = {v: len(self.adj[v]) for v in self.nodes}

    # -- queries -----------------------------------------------------------------

    def copy(self) -> "TreeIndex":
        """Cheap copy used by the planning search to simulate swaps."""
        clone = object.__new__(TreeIndex)
        clone.graph = self.graph
        clone.nodes = self.nodes
        clone.tree_edges = set(self.tree_edges)
        clone.adj = {v: set(nbrs) for v, nbrs in self.adj.items()}
        clone.degree = dict(self.degree)
        return clone

    def tree_degree(self) -> int:
        """Maximum node degree of the current tree."""
        return max(self.degree.values()) if self.degree else 0

    def max_degree_nodes(self) -> List[NodeId]:
        """Nodes whose tree degree equals the tree degree."""
        k = self.tree_degree()
        return [v for v in self.nodes if self.degree[v] == k]

    def non_tree_edges(self) -> List[Edge]:
        """Graph edges not currently in the tree, sorted canonically."""
        graph_edges = {canonical_edge(u, v) for u, v in self.graph.edges}
        return sorted(graph_edges - self.tree_edges)

    def cycle_path(self, u: NodeId, v: NodeId) -> List[NodeId]:
        """Tree path from ``u`` to ``v`` (the fundamental cycle of ``{u, v}``)."""
        if u == v:
            return [u]
        prev: Dict[NodeId, NodeId] = {u: u}
        stack = [u]
        while stack:
            x = stack.pop()
            if x == v:
                break
            for y in self.adj[x]:
                if y not in prev:
                    prev[y] = x
                    stack.append(y)
        if v not in prev:
            raise NotASpanningTreeError(f"nodes {u} and {v} are not tree-connected")
        path = [v]
        while path[-1] != u:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    # -- mutation ------------------------------------------------------------------

    def apply(self, move: Move) -> None:
        """Apply a swap, updating adjacency and degrees incrementally."""
        add = canonical_edge(*move.add)
        remove = canonical_edge(*move.remove)
        if remove not in self.tree_edges:
            raise NotASpanningTreeError(f"cannot remove non-tree edge {remove}")
        if add in self.tree_edges:
            raise NotASpanningTreeError(f"cannot add existing tree edge {add}")
        if not self.graph.has_edge(*add):
            raise GraphError(f"cannot add non-graph edge {add}")
        ru, rv = remove
        self.tree_edges.remove(remove)
        self.adj[ru].discard(rv)
        self.adj[rv].discard(ru)
        self.degree[ru] -= 1
        self.degree[rv] -= 1
        au, av = add
        self.tree_edges.add(add)
        self.adj[au].add(av)
        self.adj[av].add(au)
        self.degree[au] += 1
        self.degree[av] += 1


# ---------------------------------------------------------------------------
# Elementary predicates (Eq. 1, blocking nodes)
# ---------------------------------------------------------------------------

def is_improving_edge(index: TreeIndex, edge: Edge) -> bool:
    """Check Eq. 1: the fundamental cycle of ``edge`` contains a node ``w``
    (distinct from the endpoints) of maximum tree degree ``k`` with
    ``k >= max(deg(u), deg(v)) + 2``."""
    u, v = canonical_edge(*edge)
    if canonical_edge(u, v) in index.tree_edges:
        return False
    k = index.tree_degree()
    path = index.cycle_path(u, v)
    interior = [w for w in path if w not in (u, v)]
    if not any(index.degree[w] == k for w in interior):
        return False
    return k >= max(index.degree[u], index.degree[v]) + 2


def blocking_nodes(index: TreeIndex, edge: Edge) -> List[NodeId]:
    """Endpoints of ``edge`` that are blocking (degree ``k - 1``) for its cycle."""
    u, v = canonical_edge(*edge)
    k = index.tree_degree()
    return [x for x in (u, v) if index.degree[x] == k - 1]


# ---------------------------------------------------------------------------
# Chain planning
# ---------------------------------------------------------------------------

def _pick_cycle_edge_incident_to(index: TreeIndex, path: Sequence[NodeId],
                                 w: NodeId) -> Edge:
    """Tree edge of the cycle ``path`` incident to ``w`` (smallest neighbour id)."""
    pos = list(path).index(w)
    candidates = []
    if pos > 0:
        candidates.append(path[pos - 1])
    if pos < len(path) - 1:
        candidates.append(path[pos + 1])
    z = min(candidates)
    return canonical_edge(w, z)


def _plan_deblock(index: TreeIndex, w: NodeId, k: int,
                  stack: FrozenSet[NodeId], budget: List[int]) -> Optional[List[Move]]:
    """Plan a chain of swaps that reduces ``deg(w)`` by one.

    ``w`` currently has degree ``k - 1``.  We look for a non-tree edge whose
    fundamental cycle passes through ``w`` and whose endpoints either already
    have degree <= ``k - 2`` or can themselves be deblocked (recursively,
    with ``stack`` preventing cycles in the recursion).  All swaps are
    simulated on ``index`` by the caller via the returned chain.
    """
    if w in stack or budget[0] <= 0:
        return None
    budget[0] -= 1
    stack = stack | {w}
    for edge in index.non_tree_edges():
        a, b = edge
        if w in (a, b):
            continue  # the cycle must pass *through* w as an interior node
        path = index.cycle_path(a, b)
        if w not in path:
            continue
        chain = _plan_endpoints(index, (a, b), k, stack, budget)
        if chain is None:
            continue
        # Simulate the sub-chain, then verify the deblocking swap is still valid.
        sim = index.copy()
        for move in chain:
            sim.apply(move)
        if sim.degree[w] != k - 1:
            # w's degree already changed as a side effect -- good enough.
            return chain
        if max(sim.degree[a], sim.degree[b]) > k - 2:
            continue
        path_now = sim.cycle_path(a, b)
        if w not in path_now:
            continue
        remove = _pick_cycle_edge_incident_to(sim, path_now, w)
        return chain + [Move(add=canonical_edge(a, b), remove=remove,
                             target=w, kind="deblock")]
    return None


def _plan_endpoints(index: TreeIndex, edge: Edge, k: int,
                    stack: FrozenSet[NodeId], budget: List[int]) -> Optional[List[Move]]:
    """Plan swaps making both endpoints of ``edge`` have degree <= ``k - 2``.

    Returns ``None`` when impossible, otherwise a (possibly empty) chain.
    """
    chain: List[Move] = []
    sim = index
    for x in canonical_edge(*edge):
        deg = sim.degree[x]
        if chain:
            # Recompute degree on a simulated copy including the chain so far.
            tmp = index.copy()
            for move in chain:
                tmp.apply(move)
            sim = tmp
            deg = sim.degree[x]
        if deg <= k - 2:
            continue
        if deg >= k:
            return None
        sub = _plan_deblock(sim, x, k, stack, budget)
        if sub is None:
            return None
        chain.extend(sub)
    return chain


def plan_improvement(graph: nx.Graph, tree_edges: Iterable[Edge],
                     max_plan_nodes: int = 2000) -> Optional[List[Move]]:
    """Find a chain of swaps ending in the improvement of a maximum-degree node.

    Returns ``None`` when the tree is a fixpoint of the paper's improvement
    rule (no direct improvement and no deblock chain leading to one), which by
    Theorem 2 certifies ``deg(T) <= Δ* + 1``.

    ``max_plan_nodes`` bounds the total recursion effort of the planning
    search (a safety valve for pathological instances; the bound is never hit
    in the experiment suite).
    """
    index = TreeIndex(graph, tree_edges)
    k = index.tree_degree()
    if k <= 2:
        return None  # a path/star on <=3 nodes cannot be improved below degree 2
    budget = [max_plan_nodes]
    for edge in index.non_tree_edges():
        u, v = edge
        path = index.cycle_path(u, v)
        interior = [w for w in path if w not in (u, v)]
        if not any(index.degree[w] == k for w in interior):
            continue
        if max(index.degree[u], index.degree[v]) >= k:
            continue  # an endpoint already has maximum degree: never improvable
        chain = _plan_endpoints(index, edge, k, frozenset(), budget)
        if chain is None:
            continue
        sim = index.copy()
        for move in chain:
            sim.apply(move)
        if max(sim.degree[u], sim.degree[v]) > k - 2:
            continue
        path_now = sim.cycle_path(u, v)
        max_now = [w for w in path_now if w not in (u, v) and sim.degree[w] == k]
        if not max_now:
            # The chain already reduced every max-degree node on this cycle --
            # that is progress in itself; report the chain if non-empty.
            if chain:
                return chain
            continue
        w = min(max_now)
        remove = _pick_cycle_edge_incident_to(sim, path_now, w)
        return chain + [Move(add=canonical_edge(u, v), remove=remove,
                             target=w, kind="improve")]
    return None


def improvement_possible(graph: nx.Graph, tree_edges: Iterable[Edge]) -> bool:
    """``True`` iff the paper's improvement rule can still make progress."""
    return plan_improvement(graph, tree_edges) is not None


def apply_moves(graph: nx.Graph, tree_edges: Iterable[Edge],
                moves: Sequence[Move]) -> set[Edge]:
    """Apply a chain of moves to a tree edge set and return the new edge set."""
    index = TreeIndex(graph, tree_edges)
    for move in moves:
        index.apply(move)
    return set(index.tree_edges)
