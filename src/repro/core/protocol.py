"""High-level driver for the self-stabilizing MDST protocol.

This module is the main entry point of the library for most users::

    import networkx as nx
    from repro.core import run_mdst, MDSTConfig

    graph = nx.random_geometric_graph(40, 0.3, seed=1)
    result = run_mdst(graph, MDSTConfig(seed=1, max_rounds=3000))
    print(result.tree_degree, result.converged)

It builds a simulated network whose every node runs
:class:`~repro.core.node_algorithm.MDSTNode`, prepares the requested initial
configuration (a coherent tree, fully corrupted state, or every node alone),
runs the simulator under the chosen scheduler until the legitimacy predicate
stabilizes, and packages the outcome.

Execution is delegated to the protocol-agnostic engine
(:func:`repro.protocols.runner.run_protocol`) through the registry's MDST
adapter (:class:`repro.protocols.mdst.MDSTProtocol`): :func:`run_mdst` is
the MDST-flavoured view -- :class:`MDSTConfig` in, :class:`MDSTResult`
out -- of the one generic code path every registered protocol shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.spanning import (
    bfs_spanning_tree,
    parent_map_from_edges,
    random_spanning_tree,
    tree_degrees,
)
from ..graphs.validation import check_network
from ..protocols.base import ProtocolRunConfig
from ..protocols.runner import run_protocol
from ..sim.faults import ChurnPlan, FaultPlan, corrupt_channels, corrupt_states
from ..sim.network import Network
from ..sim.simulator import SimulationReport
from ..sim.trace import TraceRecorder
from ..types import Edge, NodeId, RunResult, canonical_edges
from .node_algorithm import MDSTNode, mdst_node_factory

__all__ = ["MDSTConfig", "MDSTResult", "build_mdst_network", "initialize_from_tree",
           "initialize_isolated", "run_mdst"]

#: Recognised initial-configuration policies for :attr:`MDSTConfig.initial`.
#:
#: ``"bfs_tree"``
#:     Install a coherent configuration describing the BFS spanning tree of
#:     the network (see :func:`initialize_from_tree`): the spanning-tree and
#:     max-degree layers start already stabilized, so the run isolates the
#:     degree-reduction phase.  Used by E4/E7/E8 and recovery scenarios.
#: ``"random_tree"``
#:     Same, but for a uniformly random spanning tree (seeded from
#:     :attr:`MDSTConfig.seed`) -- coherent but typically far from optimal.
#: ``"isolated"``
#:     A clean cold start: every node is its own root with empty channels
#:     and no knowledge of its neighbours.  This is a *reachable* initial
#:     state (a just-booted network), not an adversarial one.
#: ``"corrupted"``
#:     The paper's arbitrary initial configuration: every variable of every
#:     node is randomised and a fraction
#:     (:attr:`MDSTConfig.corrupt_channel_fraction`) of the channels is
#:     pre-loaded with garbage messages.  Convergence from here is the
#:     self-stabilization claim proper (Definition 1, experiment E5).
INITIAL_POLICIES = ("bfs_tree", "random_tree", "isolated", "corrupted")


@dataclass
class MDSTConfig:
    """Configuration of one protocol run.

    Attributes
    ----------
    scheduler:
        ``"synchronous"``, ``"random"``, ``"adversarial"`` or
        ``"weighted"`` (per-node step weights, see ``node_weights``).
    seed:
        Master seed for the scheduler, fault injection and random trees.
    initial:
        Initial configuration policy: ``"bfs_tree"`` (coherent BFS tree --
        isolates the degree-reduction phase), ``"random_tree"`` (coherent but
        arbitrary tree), ``"isolated"`` (every node its own root, empty
        channels -- a clean cold start) or ``"corrupted"`` (every variable of
        every node randomised and garbage pre-loaded on channels -- the
        paper's arbitrary initial configuration).
    corrupt_channel_fraction:
        With ``initial="corrupted"``, fraction of channels pre-loaded with
        garbage messages.
    search_period, deblock_cooldown:
        Throttling knobs of :class:`~repro.core.node_algorithm.MDSTNode`.
    enable_reduction:
        Disable to run only the substrate layers (ablation).
    stability_window:
        Consecutive legitimate rounds required to declare convergence.
    max_rounds:
        Round budget.
    keep_trace_events:
        Record the full event log (memory-heavy; used by examples).
    slow_links, max_delay:
        Parameters of the adversarial scheduler.
    node_weights:
        Per-node step weights for the ``"weighted"`` scheduler (hot-hub
        stress scenarios); nodes not listed default to weight 1.
    n_upper:
        Explicit upper bound on the network size (the distance bound of the
        spanning-tree layer).  Defaults to ``n + 1`` of the input graph;
        runs that expect node *joins* (a churn plan with ``add_node``
        events) must pass headroom here, because a legitimate tree of the
        grown network can have distances beyond the original bound.
    backend:
        Simulation kernel backend: ``"object"`` (one process object per
        node, the historical kernel) or ``"array"`` (flat numpy columns
        plus a vectorized synchronous round --
        :mod:`repro.sim.array_kernel`).  The backends are byte-identical
        in results; ``"array"`` is the large-``n`` fast path but rejects
        live topology churn and adversary models.
    """

    scheduler: str = "synchronous"
    seed: Optional[int] = None
    initial: str = "isolated"
    corrupt_channel_fraction: float = 0.5
    search_period: int = 3
    deblock_cooldown: int = 30
    enable_reduction: bool = True
    stability_window: int = 5
    max_rounds: int = 5000
    extra_rounds_after_convergence: int = 0
    keep_trace_events: bool = False
    slow_links: Sequence[Tuple[NodeId, NodeId]] = field(default_factory=tuple)
    max_delay: int = 4
    node_weights: Optional[Dict[NodeId, int]] = None
    n_upper: Optional[int] = None
    backend: str = "object"

    def validate(self) -> None:
        if self.initial not in INITIAL_POLICIES:
            raise ConfigurationError(
                f"initial must be one of {INITIAL_POLICIES}, got {self.initial!r}")
        if self.backend not in ("object", "array"):
            raise ConfigurationError(
                f"backend must be 'object' or 'array', got {self.backend!r}")
        if self.max_rounds < 1:
            raise ConfigurationError("max_rounds must be >= 1")
        if self.stability_window < 1:
            raise ConfigurationError("stability_window must be >= 1")
        if self.n_upper is not None and self.n_upper < 2:
            raise ConfigurationError("n_upper must be >= 2")

    def protocol_run_config(self) -> ProtocolRunConfig:
        """This configuration as a generic :class:`ProtocolRunConfig`.

        The MDST-specific knobs (``search_period``, ``deblock_cooldown``,
        ``enable_reduction``) travel in ``options`` and are interpreted by
        the registry's MDST adapter.
        """
        return ProtocolRunConfig(
            protocol="mdst",
            scheduler=self.scheduler,
            seed=self.seed,
            initial=self.initial,
            corrupt_channel_fraction=self.corrupt_channel_fraction,
            stability_window=self.stability_window,
            max_rounds=self.max_rounds,
            extra_rounds_after_convergence=self.extra_rounds_after_convergence,
            keep_trace_events=self.keep_trace_events,
            slow_links=self.slow_links,
            max_delay=self.max_delay,
            node_weights=self.node_weights,
            n_upper=self.n_upper,
            backend=self.backend,
            options={
                "search_period": self.search_period,
                "deblock_cooldown": self.deblock_cooldown,
                "enable_reduction": self.enable_reduction,
            },
        )


@dataclass
class MDSTResult:
    """Outcome of :func:`run_mdst`.

    ``final_graph`` is populated only for churned runs: the communication
    graph as it stood when the run ended (the graph the final tree must
    span), which generally differs from the input graph.
    """

    run: RunResult
    report: SimulationReport
    trace: Optional[TraceRecorder]
    tree_edges: set[Edge]
    node_stats: Dict[NodeId, Dict[str, int]]
    final_graph: Optional[nx.Graph] = None

    @property
    def converged(self) -> bool:
        return self.run.converged

    @property
    def tree_degree(self) -> int:
        return self.run.tree_degree

    @property
    def rounds(self) -> int:
        return self.run.rounds


def build_mdst_network(graph: nx.Graph, config: Optional[MDSTConfig] = None) -> Network:
    """Build a :class:`~repro.sim.network.Network` of MDST nodes over ``graph``."""
    config = config or MDSTConfig()
    config.validate()
    check_network(graph)
    factory = mdst_node_factory(
        n_upper=config.n_upper or graph.number_of_nodes() + 1,
        search_period=config.search_period,
        deblock_cooldown=config.deblock_cooldown,
        enable_reduction=config.enable_reduction,
    )
    return Network(graph, factory)


def initialize_from_tree(network: Network, tree_edges: Iterable[Edge]) -> None:
    """Install a coherent configuration describing the given spanning tree.

    Every node's ``root``/``parent``/``distance`` is set consistently with the
    tree (rooted at the minimum identifier) and the cached neighbour views are
    pre-filled, so the spanning-tree layer starts already stabilized and only
    the degree-reduction layer has work to do.
    """
    edges = set(canonical_edges(tree_edges))
    parent = parent_map_from_edges(network.node_ids, edges)
    root = min(network.node_ids)
    # distances from the parent map
    distance: Dict[NodeId, int] = {root: 0}
    pending = [v for v in network.node_ids if v != root]
    while pending:
        progressed = False
        rest = []
        for v in pending:
            if parent[v] in distance:
                distance[v] = distance[parent[v]] + 1
                progressed = True
            else:
                rest.append(v)
        pending = rest
        if not progressed:  # pragma: no cover - parent_map_from_edges guarantees progress
            raise ConfigurationError("could not orient the provided tree")
    degrees = tree_degrees(network.node_ids, edges)
    dmax = max(degrees.values()) if degrees else 0
    for v in network.node_ids:
        proc = network.processes[v]
        if not isinstance(proc, MDSTNode):
            raise ConfigurationError("initialize_from_tree requires MDSTNode processes")
        st = proc.s
        st.root = root
        st.parent = parent[v] if parent[v] != v else v
        st.distance = distance[v]
        st.sub_max = dmax
        st.dmax = dmax
        st.color = True
        for u in proc.neighbors:
            view = st.view[u]
            view.root = root
            view.parent = parent[u] if parent[u] != u else u
            view.distance = distance[u]
            view.degree = degrees[u]
            view.sub_max = dmax
            view.dmax = dmax
            view.color = True
            view.heard = True
    network.note_state_write()


def initialize_isolated(network: Network) -> None:
    """Every node starts alone: own root, no tree edges, empty views."""
    fast = getattr(network, "initialize_isolated_columns", None)
    if fast is not None:
        # Column-backed networks reset their shared arrays in one pass
        # (and, on the CSR-direct build path, without materializing any
        # per-node process at all).
        fast()
        return
    for v in network.node_ids:
        proc = network.processes[v]
        if not isinstance(proc, MDSTNode):
            raise ConfigurationError("initialize_isolated requires MDSTNode processes")
        st = proc.s
        st.root = v
        st.parent = v
        st.distance = 0
        st.sub_max = 0
        st.dmax = 0
        st.color = True
        for u in proc.neighbors:
            view = st.view[u]
            view.heard = False
    network.note_state_write()


def _prepare_initial(network: Network, config: MDSTConfig,
                     rng: np.random.Generator) -> None:
    if config.initial == "bfs_tree":
        initialize_from_tree(network, bfs_spanning_tree(network.graph))
    elif config.initial == "random_tree":
        seed = int(rng.integers(0, 2**31 - 1))
        initialize_from_tree(network, random_spanning_tree(network.graph, seed=seed))
    elif config.initial == "isolated":
        initialize_isolated(network)
    elif config.initial == "corrupted":
        corrupt_states(network, rng, fraction=1.0)
        if config.corrupt_channel_fraction > 0:
            corrupt_channels(network, rng, fraction=config.corrupt_channel_fraction)
    else:  # pragma: no cover - validate() already rejects unknown policies
        raise ConfigurationError(f"unknown initial policy {config.initial!r}")


def run_mdst(graph: nx.Graph, config: Optional[MDSTConfig] = None,
             initial_tree: Optional[Iterable[Edge]] = None,
             fault_plan: Optional[FaultPlan] = None,
             churn_plan: Optional[ChurnPlan] = None) -> MDSTResult:
    """Run the self-stabilizing MDST protocol on ``graph`` to convergence.

    Parameters
    ----------
    graph:
        Undirected connected network.
    config:
        Run configuration (defaults to :class:`MDSTConfig` defaults).
    initial_tree:
        Explicit initial spanning tree (overrides ``config.initial``).
    fault_plan:
        Optional schedule of mid-run transient faults.
    churn_plan:
        Optional schedule of live topology changes; convergence is then
        judged against the *mutated* graph (the legitimacy predicate reads
        the live network).  Runs expecting node joins should also pass
        :attr:`MDSTConfig.n_upper` headroom.

    Returns
    -------
    MDSTResult
        Convergence flag, round/step/message counts, final tree and per-node
        protocol statistics.

    Notes
    -----
    This is a thin wrapper over the generic
    :func:`repro.protocols.runner.run_protocol` with ``protocol="mdst"``;
    both entry points execute the identical code path.
    """
    config = config or MDSTConfig()
    config.validate()
    result = run_protocol(graph, config.protocol_run_config(),
                          initial_tree=initial_tree,
                          fault_plan=fault_plan, churn_plan=churn_plan)
    return MDSTResult(run=result.run, report=result.report, trace=result.trace,
                      tree_edges=result.tree_edges,
                      node_stats=result.node_stats,
                      final_graph=result.final_graph)
