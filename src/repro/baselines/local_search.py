"""Centralized local search baseline: direct improvements only.

This is the ablation of the paper's algorithm that *never deblocks*: it keeps
swapping an improving edge (Eq. 1) for a cycle edge incident to a
maximum-degree node and stops as soon as no such direct improvement exists.
Because it cannot reduce blocking nodes, it may terminate with a tree whose
degree exceeds Δ* + 1; the ablation benchmark (E1/E6) quantifies how often
and by how much, which is precisely the value added by the Deblock machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import networkx as nx

from ..exceptions import ConvergenceError
from ..graphs.spanning import bfs_spanning_tree
from ..graphs.validation import check_spanning_tree
from ..types import Edge, canonical_edge, canonical_edges
from ..core.improvement import Move, TreeIndex

__all__ = ["LocalSearchResult", "greedy_local_search"]


@dataclass
class LocalSearchResult:
    """Outcome of the direct-improvements-only local search."""

    tree_edges: set[Edge]
    initial_degree: int
    final_degree: int
    swaps: int
    degree_history: List[int] = field(default_factory=list)


def _find_direct_improvement(index: TreeIndex) -> Optional[Move]:
    k = index.tree_degree()
    if k <= 2:
        return None
    for edge in index.non_tree_edges():
        u, v = edge
        if max(index.degree[u], index.degree[v]) > k - 2:
            continue
        path = index.cycle_path(u, v)
        witnesses = [w for w in path if w not in (u, v) and index.degree[w] == k]
        if not witnesses:
            continue
        w = min(witnesses)
        pos = path.index(w)
        options = []
        if pos > 0:
            options.append(path[pos - 1])
        if pos < len(path) - 1:
            options.append(path[pos + 1])
        return Move(add=edge, remove=canonical_edge(w, min(options)), target=w,
                    kind="improve")
    return None


def greedy_local_search(graph: nx.Graph, initial_tree: Optional[Iterable[Edge]] = None,
                        max_swaps: int = 100_000) -> LocalSearchResult:
    """Apply direct improvements until none remains."""
    if initial_tree is None:
        initial_tree = bfs_spanning_tree(graph)
    tree = set(canonical_edges(initial_tree))
    check_spanning_tree(graph, tree)
    index = TreeIndex(graph, tree)
    initial_degree = index.tree_degree()
    history = [initial_degree]
    swaps = 0
    while True:
        move = _find_direct_improvement(index)
        if move is None:
            break
        index.apply(move)
        swaps += 1
        history.append(index.tree_degree())
        if swaps > max_swaps:
            raise ConvergenceError(f"local search exceeded {max_swaps} swaps")
    final_edges = set(index.tree_edges)
    check_spanning_tree(graph, final_edges)
    return LocalSearchResult(tree_edges=final_edges, initial_degree=initial_degree,
                             final_degree=index.tree_degree(), swaps=swaps,
                             degree_history=history)
