"""Naive spanning-tree baselines (BFS, DFS, MST, random).

These are the trees a system would get "for free" from standard primitives;
experiment E6 compares their maximum degree against the MDST algorithm's,
reproducing the paper's motivation (§1): generic trees concentrate load on
few high-degree nodes, which is exactly what the MDST construction avoids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

import networkx as nx

from ..graphs.spanning import (
    bfs_spanning_tree,
    dfs_spanning_tree,
    minimum_spanning_tree,
    random_spanning_tree,
    tree_degree,
    tree_degrees,
)
from ..types import Edge

__all__ = ["TreeBaselineResult", "SIMPLE_TREE_BASELINES", "evaluate_simple_trees",
           "baseline_tree"]


@dataclass(frozen=True)
class TreeBaselineResult:
    """Degree statistics of one baseline spanning tree."""

    name: str
    tree_edges: frozenset[Edge]
    degree: int
    mean_degree: float
    leaves: int

    @staticmethod
    def from_edges(name: str, graph: nx.Graph, edges: Iterable[Edge]) -> "TreeBaselineResult":
        edges = frozenset(edges)
        degrees = tree_degrees(graph.nodes, edges)
        values = list(degrees.values())
        return TreeBaselineResult(
            name=name,
            tree_edges=edges,
            degree=max(values) if values else 0,
            mean_degree=sum(values) / len(values) if values else 0.0,
            leaves=sum(1 for d in values if d == 1),
        )


#: Registry of simple baselines: name -> callable(graph, seed) -> edge set.
SIMPLE_TREE_BASELINES: Dict[str, Callable[[nx.Graph, Optional[int]], set[Edge]]] = {
    "bfs": lambda g, seed=None: bfs_spanning_tree(g),
    "dfs": lambda g, seed=None: dfs_spanning_tree(g),
    "mst": lambda g, seed=None: minimum_spanning_tree(g),
    "random": lambda g, seed=None: random_spanning_tree(g, seed=seed),
}


def baseline_tree(name: str, graph: nx.Graph, seed: Optional[int] = None) -> set[Edge]:
    """Build the named baseline spanning tree."""
    try:
        factory = SIMPLE_TREE_BASELINES[name]
    except KeyError as exc:
        raise KeyError(f"unknown simple-tree baseline {name!r}; "
                       f"known: {sorted(SIMPLE_TREE_BASELINES)}") from exc
    return factory(graph, seed)


def evaluate_simple_trees(graph: nx.Graph, seed: Optional[int] = None
                          ) -> Dict[str, TreeBaselineResult]:
    """Build and evaluate every simple baseline on ``graph``."""
    results: Dict[str, TreeBaselineResult] = {}
    for name in sorted(SIMPLE_TREE_BASELINES):
        edges = baseline_tree(name, graph, seed=seed)
        results[name] = TreeBaselineResult.from_edges(name, graph, edges)
    return results
