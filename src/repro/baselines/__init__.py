"""Baseline algorithms the paper is measured against.

* :mod:`repro.baselines.exact` -- exact Δ* (small instances, backtracking);
* :mod:`repro.baselines.fuerer_raghavachari` -- the sequential Δ*+1
  approximation the paper distributes;
* :mod:`repro.baselines.local_search` -- direct improvements only (no
  Deblock), the natural ablation;
* :mod:`repro.baselines.simple_trees` -- BFS / DFS / MST / random trees;
* :mod:`repro.baselines.blin_butelle` -- serialized-improvement cost model
  standing in for the Blin–Butelle distributed algorithm.
"""

from .blin_butelle import SerializationCostModel, serialized_vs_concurrent_cost
from .exact import exact_mdst_degree, exact_mdst_tree, has_degree_bounded_spanning_tree
from .fuerer_raghavachari import FRResult, forest_components_without, fuerer_raghavachari
from .local_search import LocalSearchResult, greedy_local_search
from .simple_trees import (
    SIMPLE_TREE_BASELINES,
    TreeBaselineResult,
    baseline_tree,
    evaluate_simple_trees,
)

__all__ = [name for name in dir() if not name.startswith("_")]
