"""Exact minimum-degree spanning tree solver (small instances).

Computing Δ* is NP-hard (reduction from Hamiltonian path), so no polynomial
algorithm exists; this module provides an exact solver for the *small*
instances used to verify the Δ*+1 guarantee (experiment E1).  The solver
answers the decision problem "does a spanning tree of maximum degree <= k
exist?" by backtracking over edges with three prunings:

* degree caps (never exceed ``k`` at any node);
* acyclicity (union-find over the chosen edges);
* connectivity look-ahead (the chosen edges plus the still-undecided edges
  must connect the graph, otherwise the branch is hopeless).

Δ* is then found by increasing ``k`` from the structural lower bound
(:func:`repro.graphs.properties.mdst_lower_bound`) until the decision problem
becomes feasible.  A work budget guards against accidental use on instances
that are too large; exceeding it raises :class:`ExactSolverBudgetError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..exceptions import ExactSolverBudgetError, GraphError, NotConnectedError
from ..graphs.properties import mdst_lower_bound
from ..types import Edge, NodeId, canonical_edge

__all__ = ["has_degree_bounded_spanning_tree", "exact_mdst_degree", "exact_mdst_tree"]


class _UnionFind:
    __slots__ = ("parent", "rank")

    def __init__(self, nodes):
        self.parent = {v: v for v in nodes}
        self.rank = {v: 0 for v in nodes}

    def find(self, x):
        while self.parent[x] != x:
            self.parent[x] = self.parent[self.parent[x]]
            x = self.parent[x]
        return x

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.rank[ra] < self.rank[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        if self.rank[ra] == self.rank[rb]:
            self.rank[ra] += 1
        return True

    def snapshot(self) -> Tuple[Dict, Dict]:
        return dict(self.parent), dict(self.rank)

    def restore(self, snap: Tuple[Dict, Dict]) -> None:
        self.parent, self.rank = dict(snap[0]), dict(snap[1])


def _connectivity_possible(graph: nx.Graph, chosen: List[Edge],
                           remaining: List[Edge]) -> bool:
    """Can ``chosen`` + some subset of ``remaining`` still span the graph?"""
    uf = _UnionFind(graph.nodes)
    comps = graph.number_of_nodes()
    for u, v in chosen:
        if uf.union(u, v):
            comps -= 1
    for u, v in remaining:
        if uf.union(u, v):
            comps -= 1
    return comps == 1


def has_degree_bounded_spanning_tree(graph: nx.Graph, k: int,
                                     budget: int = 2_000_000
                                     ) -> Optional[set[Edge]]:
    """Return a spanning tree of maximum degree <= ``k``, or ``None``.

    Raises :class:`ExactSolverBudgetError` when the backtracking search
    exceeds ``budget`` recursive steps.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise GraphError("graph is empty")
    if not nx.is_connected(graph):
        raise NotConnectedError("graph must be connected")
    if n == 1:
        return set()
    if k < 1:
        return None
    # Order edges so that edges incident to low-degree vertices come first:
    # those are the scarce resources and deciding them early prunes faster.
    graph_degree = dict(graph.degree())
    edges = sorted((canonical_edge(u, v) for u, v in graph.edges),
                   key=lambda e: (min(graph_degree[e[0]], graph_degree[e[1]]),
                                  e))
    steps = [0]

    degree: Dict[NodeId, int] = {v: 0 for v in graph.nodes}
    uf = _UnionFind(graph.nodes)
    chosen: List[Edge] = []

    def backtrack(idx: int, picked: int) -> bool:
        steps[0] += 1
        if steps[0] > budget:
            raise ExactSolverBudgetError(
                f"exact solver exceeded its budget of {budget} steps")
        if picked == n - 1:
            return True
        if idx >= len(edges):
            return False
        remaining = edges[idx:]
        if picked + len(remaining) < n - 1:
            return False
        if not _connectivity_possible(graph, chosen, remaining):
            return False
        u, v = edges[idx]
        # Branch 1: include the edge (if degree caps and acyclicity allow).
        if degree[u] < k and degree[v] < k and uf.find(u) != uf.find(v):
            snap = uf.snapshot()
            uf.union(u, v)
            degree[u] += 1
            degree[v] += 1
            chosen.append((u, v))
            if backtrack(idx + 1, picked + 1):
                return True
            chosen.pop()
            degree[u] -= 1
            degree[v] -= 1
            uf.restore(snap)
        # Branch 2: exclude the edge.
        return backtrack(idx + 1, picked)

    if backtrack(0, 0):
        return set(chosen)
    return None


def exact_mdst_degree(graph: nx.Graph, budget: int = 2_000_000) -> int:
    """Δ*: the minimum possible maximum degree over all spanning trees."""
    n = graph.number_of_nodes()
    if n <= 1:
        return 0
    if n == 2:
        return 1
    lo = mdst_lower_bound(graph)
    for k in range(lo, n):
        if has_degree_bounded_spanning_tree(graph, k, budget=budget) is not None:
            return k
    return n - 1  # pragma: no cover - a star tree of degree n-1 always exists


def exact_mdst_tree(graph: nx.Graph, budget: int = 2_000_000) -> set[Edge]:
    """An actual minimum-degree spanning tree (edge set)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return set()
    lo = mdst_lower_bound(graph) if n > 2 else 1
    for k in range(max(lo, 1), n):
        tree = has_degree_bounded_spanning_tree(graph, k, budget=budget)
        if tree is not None:
            return tree
    raise GraphError("no spanning tree found (graph disconnected?)")  # pragma: no cover
