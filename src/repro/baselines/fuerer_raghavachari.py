"""Sequential Fürer–Raghavachari Δ*+1 approximation (references [8, 9]).

The algorithm this paper distributes: starting from an arbitrary spanning
tree ``T``, repeat

1. let ``Δ = deg(T)``; mark every vertex of degree ``Δ`` or ``Δ - 1`` as
   *bad* and remove the bad vertices from ``T``, leaving a forest ``F``;
2. if some non-tree edge ``{u, v}`` joins two different components of ``F``,
   its fundamental cycle contains a bad vertex ``w``; swap ``{u, v}`` with a
   cycle edge incident to ``w`` (reducing ``deg(w)`` by one) and go to 1;
3. otherwise stop: by Theorem 1 of the paper, ``deg(T) <= Δ* + 1``.

Swaps that reduce a degree-``Δ`` vertex are preferred over swaps that reduce
a degree-``Δ-1`` vertex (the latter are the "deblocking" swaps).  The loop is
bounded by an iteration budget and a repeated-state guard; neither triggers
on the experiment suite, they exist so that a hypothetical pathological input
fails loudly instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from ..exceptions import ConvergenceError
from ..graphs.spanning import bfs_spanning_tree, tree_degree
from ..graphs.validation import check_spanning_tree
from ..types import Edge, NodeId, canonical_edge, canonical_edges
from ..core.improvement import TreeIndex

__all__ = ["FRResult", "fuerer_raghavachari", "forest_components_without"]


@dataclass
class FRResult:
    """Outcome of the sequential Fürer–Raghavachari algorithm."""

    tree_edges: set[Edge]
    initial_degree: int
    final_degree: int
    swaps: int
    improvement_swaps: int
    deblock_swaps: int
    degree_history: List[int] = field(default_factory=list)


def forest_components_without(index: TreeIndex, removed: set[NodeId]) -> Dict[NodeId, int]:
    """Component labels of the forest obtained by deleting ``removed`` nodes.

    Returns a mapping ``node -> component id`` for the surviving nodes.
    """
    label: Dict[NodeId, int] = {}
    current = 0
    for start in index.nodes:
        if start in removed or start in label:
            continue
        stack = [start]
        label[start] = current
        while stack:
            x = stack.pop()
            for y in index.adj[x]:
                if y in removed or y in label:
                    continue
                label[y] = current
                stack.append(y)
        current += 1
    return label


def _find_swap(index: TreeIndex) -> Optional[Tuple[Edge, Edge, str]]:
    """Find the next Fürer–Raghavachari swap, preferring direct improvements."""
    k = index.tree_degree()
    if k <= 2:
        return None
    bad = {v for v in index.nodes if index.degree[v] >= k - 1}
    components = forest_components_without(index, bad)
    best: Optional[Tuple[Edge, Edge, str]] = None
    for edge in index.non_tree_edges():
        u, v = edge
        if u in bad or v in bad:
            continue
        if components.get(u) == components.get(v):
            continue
        path = index.cycle_path(u, v)
        witnesses = [w for w in path if w not in (u, v) and index.degree[w] >= k - 1]
        if not witnesses:
            continue
        max_witnesses = [w for w in witnesses if index.degree[w] == k]
        if max_witnesses:
            w = min(max_witnesses)
            remove = _incident_cycle_edge(path, w)
            return (edge, remove, "improve")
        if best is None:
            w = min(witnesses)
            remove = _incident_cycle_edge(path, w)
            best = (edge, remove, "deblock")
    return best


def _incident_cycle_edge(path: List[NodeId], w: NodeId) -> Edge:
    pos = path.index(w)
    options = []
    if pos > 0:
        options.append(path[pos - 1])
    if pos < len(path) - 1:
        options.append(path[pos + 1])
    return canonical_edge(w, min(options))


def fuerer_raghavachari(graph: nx.Graph, initial_tree: Optional[Iterable[Edge]] = None,
                        max_swaps: int = 200_000) -> FRResult:
    """Run the sequential Fürer–Raghavachari algorithm on ``graph``.

    Parameters
    ----------
    initial_tree:
        Starting spanning tree (defaults to the BFS tree rooted at the
        smallest identifier).
    max_swaps:
        Safety bound on the total number of swaps.
    """
    if initial_tree is None:
        initial_tree = bfs_spanning_tree(graph)
    tree = set(canonical_edges(initial_tree))
    check_spanning_tree(graph, tree)
    index = TreeIndex(graph, tree)
    initial_degree = index.tree_degree()
    history = [initial_degree]
    swaps = 0
    improvement_swaps = 0
    deblock_swaps = 0
    seen: set[frozenset[Edge]] = {frozenset(index.tree_edges)}
    while True:
        found = _find_swap(index)
        if found is None:
            break
        add, remove, kind = found
        from ..core.improvement import Move
        index.apply(Move(add=add, remove=remove, target=-1, kind=kind))
        swaps += 1
        if kind == "improve":
            improvement_swaps += 1
        else:
            deblock_swaps += 1
        if swaps > max_swaps:
            raise ConvergenceError(f"Fürer–Raghavachari exceeded {max_swaps} swaps")
        fingerprint = frozenset(index.tree_edges)
        if fingerprint in seen:
            break  # repeated state: stop instead of cycling
        seen.add(fingerprint)
        history.append(index.tree_degree())
    final_edges = set(index.tree_edges)
    check_spanning_tree(graph, final_edges)
    return FRResult(
        tree_edges=final_edges,
        initial_degree=initial_degree,
        final_degree=index.tree_degree(),
        swaps=swaps,
        improvement_swaps=improvement_swaps,
        deblock_swaps=deblock_swaps,
        degree_history=history,
    )
