"""Serialized-improvement baseline modelling Blin–Butelle-style execution.

The paper contrasts itself with the (non-self-stabilizing) distributed MDST
algorithm of Blin & Butelle [3]: that algorithm maintains fragment membership
information and performs improvements *one at a time*, whereas the paper's
fundamental-cycle approach can decrease the degree of every maximum-degree
node simultaneously.

Reproducing the full fragment protocol of [3] is out of scope (and not needed
for any claim of this paper); what the comparison experiments need is the
*serialization cost model*.  This module therefore provides an abstract
round-cost model on top of the reference engine:

* both executions perform the same improvement chains (computed by
  :class:`repro.core.reference.ReferenceMDST`);
* the **serialized** execution charges the rounds of each improvement
  (≈ the length of the fundamental cycle it traverses, for the search plus
  the removal/reversal walk) *sequentially*;
* the **concurrent** execution charges, within each degree level, only the
  maximum cost over the improvements of that level, modelling the paper's
  simultaneous reductions.

The substitution is documented in DESIGN.md; experiment E7 uses both costs
and additionally measures the real message-passing protocol for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

import networkx as nx

from ..core.improvement import TreeIndex
from ..core.reference import ReferenceMDST
from ..graphs.spanning import bfs_spanning_tree
from ..types import Edge, canonical_edges

__all__ = ["SerializationCostModel", "serialized_vs_concurrent_cost"]


@dataclass
class SerializationCostModel:
    """Round-cost comparison between serialized and concurrent improvements."""

    final_degree: int
    swaps: int
    swap_cycle_lengths: List[int] = field(default_factory=list)
    serialized_rounds: int = 0
    concurrent_rounds: int = 0

    @property
    def speedup(self) -> float:
        """Serialized rounds / concurrent rounds (>= 1 when concurrency helps)."""
        if self.concurrent_rounds == 0:
            return 1.0
        return self.serialized_rounds / self.concurrent_rounds


def serialized_vs_concurrent_cost(graph: nx.Graph,
                                  initial_tree: Optional[Iterable[Edge]] = None
                                  ) -> SerializationCostModel:
    """Estimate serialized vs concurrent improvement costs on ``graph``.

    Both executions apply the improvement chains found by the reference
    engine starting from the same tree; only the way their per-swap costs are
    charged differs (sum vs per-level maximum).
    """
    if initial_tree is None:
        initial_tree = bfs_spanning_tree(graph)
    initial = set(canonical_edges(initial_tree))
    engine = ReferenceMDST(graph, initial_tree=initial)
    result = engine.run(record_moves=True)

    # Recompute the cycle length of every swap by replaying the moves.
    index = TreeIndex(graph, initial)
    cycle_lengths: List[int] = []
    level_of_swap: List[int] = []
    for move in result.moves:
        u, v = move.add
        path = index.cycle_path(u, v)
        cycle_lengths.append(len(path) + 1)
        level_of_swap.append(index.tree_degree())
        index.apply(move)

    serialized = sum(2 * length for length in cycle_lengths)
    # Concurrent model: swaps performed while the tree degree is at the same
    # level run in parallel; the level costs its most expensive swap.
    concurrent = 0
    by_level: dict[int, int] = {}
    for level, length in zip(level_of_swap, cycle_lengths):
        by_level[level] = max(by_level.get(level, 0), 2 * length)
    concurrent = sum(by_level.values())

    return SerializationCostModel(
        final_degree=result.final_degree,
        swaps=result.swaps,
        swap_cycle_lengths=cycle_lengths,
        serialized_rounds=serialized,
        concurrent_rounds=concurrent,
    )
