#!/usr/bin/env python3
"""Play-by-play of one degree improvement (Figures 4 and 5 of the paper).

The script runs the protocol on a small hub-and-ring network with full event
tracing and prints, round by round, the message types in flight -- making the
Cycle_Search -> Action_on_Cycle -> Improve -> Remove/Back pipeline of
Figure 4 visible, together with the evolution of the tree degree.

Run with::

    python examples/degree_reduction_trace.py
"""

from __future__ import annotations

from collections import Counter

from repro.core import MDSTConfig, build_mdst_network, initialize_from_tree
from repro.core.legitimacy import current_tree_degree, mdst_legitimacy
from repro.graphs import bfs_spanning_tree, hard_hub_graph, tree_degree
from repro.sim import Simulator, SynchronousScheduler, TraceRecorder


def main() -> None:
    graph = hard_hub_graph(8)  # hub 0 of degree 8, its neighbours form a ring
    tree = bfs_spanning_tree(graph)
    print(f"network: hub-and-ring, n={graph.number_of_nodes()}, "
          f"m={graph.number_of_edges()}")
    print(f"initial tree degree (BFS star at the hub): "
          f"{tree_degree(graph.nodes, tree)}\n")

    config = MDSTConfig(seed=3, search_period=2)
    network = build_mdst_network(graph, config)
    initialize_from_tree(network, tree)
    trace = TraceRecorder(keep_events=True, network_size=graph.number_of_nodes())
    simulator = Simulator(network, scheduler=SynchronousScheduler(),
                          legitimacy=mdst_legitimacy, stability_window=4,
                          trace=trace)

    previous_degree = current_tree_degree(network)
    print(f"{'round':>5} | {'deg(T)':>6} | protocol messages delivered this round")
    print("-" * 72)
    for _ in range(200):
        simulator.step_round()
        events = [e for e in trace.events if e.round_index == simulator.rounds_executed - 1
                  and e.kind == "deliver" and e.message_type != "MInfo"]
        counts = Counter(e.message_type for e in events)
        degree = current_tree_degree(network)
        marker = "  <-- degree reduced" if degree < previous_degree else ""
        if counts or marker:
            summary = ", ".join(f"{name} x{count}" for name, count in sorted(counts.items()))
            print(f"{simulator.rounds_executed:>5} | {degree:>6} | {summary}{marker}")
        previous_degree = degree
        if simulator.monitor is not None and simulator.monitor.converged:
            break

    print("-" * 72)
    print(f"converged after {simulator.rounds_executed} rounds; "
          f"final tree degree = {current_tree_degree(network)} "
          f"(optimal is 2, the ring through all hub neighbours)")
    print("\nper-node reduction statistics:")
    for v in network.node_ids:
        stats = network.processes[v].stats
        if stats["removals_performed"] or stats["attachments"]:
            print(f"  node {v}: removals={stats['removals_performed']}, "
                  f"attachments={stats['attachments']}, "
                  f"searches={stats['searches_initiated']}")


if __name__ == "__main__":
    main()
