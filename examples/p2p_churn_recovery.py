#!/usr/bin/env python3
"""Peer-to-peer scenario: fairness of relay load and recovery under churn.

The paper's second motivation (§1) is peer-to-peer overlays: a node relaying
traffic for many others sacrifices its own bandwidth, so overlays whose trees
have low maximum degree are "fairer" and give peers less incentive to cheat.

This example builds a scale-free peer graph (Barabási–Albert, i.e. with a few
natural super-peers), constructs the MDST overlay, and then simulates churn:
a batch of peers resets with arbitrary state while the overlay is live.  The
self-stabilizing protocol re-converges without any global restart, and the
relay load stays balanced.

Run with::

    python examples/p2p_churn_recovery.py
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.baselines import evaluate_simple_trees
from repro.core import MDSTConfig, run_mdst
from repro.graphs import make_graph, tree_degrees
from repro.sim import FaultPlan


def gini(values: list[int]) -> float:
    """Gini coefficient of a load distribution (0 = perfectly even)."""
    values = sorted(values)
    n = len(values)
    total = sum(values)
    if total == 0:
        return 0.0
    cum = 0.0
    for i, v in enumerate(values, start=1):
        cum += i * v
    return (2 * cum) / (n * total) - (n + 1) / n


def main() -> None:
    graph = make_graph("barabasi_albert", 20, seed=11)
    print(f"peer graph: {graph.number_of_nodes()} peers, "
          f"{graph.number_of_edges()} connections")

    # Overlay candidates: the trees generic P2P systems use vs the MDST overlay.
    rows = []
    for name, baseline in evaluate_simple_trees(graph, seed=11).items():
        degrees = list(tree_degrees(graph.nodes, baseline.tree_edges).values())
        rows.append({"overlay": name, "max relay degree": max(degrees),
                     "relay-load gini": round(gini(degrees), 3)})

    result = run_mdst(graph, MDSTConfig(seed=11, initial="isolated", max_rounds=5000))
    mdst_degrees = list(tree_degrees(graph.nodes, result.tree_edges).values())
    rows.append({"overlay": "self-stabilizing MDST",
                 "max relay degree": max(mdst_degrees),
                 "relay-load gini": round(gini(mdst_degrees), 3)})
    print()
    print(format_table(rows, title="relay load fairness by overlay"))
    print(f"\nMDST overlay converged: {result.converged} "
          f"(round {result.run.extra['convergence_round']}, "
          f"{result.run.messages} messages)")

    # Churn: 40% of the peers restart with arbitrary state at round 1200,
    # and again at round 2000 -- the overlay must re-stabilize both times.
    plan = (FaultPlan()
            .add(round_index=1200, node_fraction=0.4, channel_fraction=0.1)
            .add(round_index=2000, node_fraction=0.4, channel_fraction=0.1))
    churn = run_mdst(graph, MDSTConfig(seed=11, initial="bfs_tree", max_rounds=6000),
                     fault_plan=plan)
    print(f"under churn (two 40% reset waves): converged={churn.converged}, "
          f"final max relay degree={churn.tree_degree}, "
          f"re-stabilized at round {churn.run.extra['convergence_round']}")


if __name__ == "__main__":
    main()
