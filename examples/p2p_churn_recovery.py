#!/usr/bin/env python3
"""Peer-to-peer scenario: fairness of relay load and recovery under real churn.

The paper's second motivation (§1) is peer-to-peer overlays: a node relaying
traffic for many others sacrifices its own bandwidth, so overlays whose trees
have low maximum degree are "fairer" and give peers less incentive to cheat.

This example builds a scale-free peer graph (Barabási–Albert, i.e. with a few
natural super-peers), constructs the MDST overlay, and then subjects it to
*real* churn: peers actually leave the network (taking their links and any
in-flight traffic with them), new peers join and link up, and connections
appear and die -- all through the live topology APIs, not by resetting state
on a frozen graph.  The self-stabilizing protocol re-converges without any
global restart to a minimum-degree tree *of the mutated network*, and the
relay load stays balanced.

Run with::

    python examples/p2p_churn_recovery.py
"""

from __future__ import annotations

from repro.analysis import format_table, gini
from repro.baselines import evaluate_simple_trees
from repro.core import MDSTConfig, run_mdst
from repro.graphs import make_graph, tree_degrees
from repro.sim import ChurnPlan


def main() -> None:
    graph = make_graph("barabasi_albert", 20, seed=11)
    print(f"peer graph: {graph.number_of_nodes()} peers, "
          f"{graph.number_of_edges()} connections")

    # Overlay candidates: the trees generic P2P systems use vs the MDST overlay.
    rows = []
    for name, baseline in evaluate_simple_trees(graph, seed=11).items():
        degrees = list(tree_degrees(graph.nodes, baseline.tree_edges).values())
        rows.append({"overlay": name, "max relay degree": max(degrees),
                     "relay-load gini": round(gini(degrees), 3)})

    result = run_mdst(graph, MDSTConfig(seed=11, initial="isolated", max_rounds=5000))
    mdst_degrees = list(tree_degrees(graph.nodes, result.tree_edges).values())
    rows.append({"overlay": "self-stabilizing MDST",
                 "max relay degree": max(mdst_degrees),
                 "relay-load gini": round(gini(mdst_degrees), 3)})
    print()
    print(format_table(rows, title="relay load fairness by overlay"))
    print(f"\nMDST overlay converged: {result.converged} "
          f"(round {result.run.extra['convergence_round']}, "
          f"{result.run.messages} messages)")

    # Real churn: two peers leave (links and in-flight messages die with
    # them), two fresh peers join and link to survivors, and one direct
    # connection appears while another drops.  The overlay must re-converge
    # to a minimum-degree tree of the *mutated* peer graph.
    leavers = sorted(graph.nodes, key=graph.degree)[:2]        # two leaf-ish peers
    survivors = [v for v in sorted(graph.nodes) if v not in leavers]
    new_a, new_b = max(graph.nodes) + 1, max(graph.nodes) + 2
    plan = (ChurnPlan()
            .remove_node(400, leavers[0])
            .add_node(600, new_a, survivors[:2])
            .remove_node(800, leavers[1])
            .add_node(1000, new_b, [new_a, survivors[2]])
            .add_edge(1200, new_b, survivors[3])
            .remove_edge(1400, survivors[0], survivors[1]))
    churn = run_mdst(
        graph,
        MDSTConfig(seed=11, initial="bfs_tree", max_rounds=8000,
                   n_upper=graph.number_of_nodes() + 3),
        churn_plan=plan)

    extra = churn.run.extra
    print(f"\nunder churn (2 leaves, 2 joins, 1 link up, 1 link down):")
    print(f"  events applied={extra['churn_applied']}, "
          f"skipped={extra['churn_skipped']}, "
          f"in-flight messages dropped={extra['dropped_messages']}")
    print(f"  peers {graph.number_of_nodes()} -> {extra['final_n']}, "
          f"connections {graph.number_of_edges()} -> {extra['final_m']}")
    final_degrees = list(tree_degrees(churn.final_graph.nodes,
                                      churn.tree_edges).values())
    print(f"  re-converged={churn.converged} at round "
          f"{extra['convergence_round']} (last event at round "
          f"{max(extra['churn_rounds'])})")
    print(f"  final overlay: max relay degree={max(final_degrees)}, "
          f"relay-load gini={round(gini(final_degrees), 3)}")


if __name__ == "__main__":
    main()
