#!/usr/bin/env python3
"""Quickstart: build a network, run the self-stabilizing MDST protocol, and
compare the resulting tree against the trees you would get for free.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import evaluate_tree, format_table
from repro.baselines import evaluate_simple_trees, exact_mdst_degree
from repro.core import MDSTConfig, run_mdst
from repro.graphs import make_graph, summarize


def main() -> None:
    # A wheel network: one hub connected to a ring of 11 nodes.  The "free"
    # BFS tree is the star around the hub (degree 11); the optimum is 2.
    graph = make_graph("wheel", 12)
    print("network:", summarize(graph).as_dict())

    # Run the full message-passing protocol: every node starts isolated
    # (own root, empty channels) and the system self-organises.
    result = run_mdst(graph, MDSTConfig(seed=1, initial="isolated", max_rounds=3000))
    print(f"\nconverged      : {result.converged}")
    print(f"rounds         : {result.run.extra['convergence_round']}")
    print(f"messages       : {result.run.messages}")
    print(f"tree degree    : {result.tree_degree}")

    # Compare against the exact optimum (small instance) and naive trees.
    optimal = exact_mdst_degree(graph)
    quality = evaluate_tree(graph, result.tree_edges, optimal_degree=optimal)
    print(f"optimal degree : {optimal}  (algorithm guarantees <= {optimal + 1})")
    print(f"within one?    : {quality.within_one_of_optimal}")

    rows = []
    for name, baseline in evaluate_simple_trees(graph, seed=1).items():
        rows.append({"tree": name, "max degree": baseline.degree,
                     "leaves": baseline.leaves})
    rows.append({"tree": "self-stabilizing MDST", "max degree": quality.degree,
                 "leaves": quality.leaves})
    print()
    print(format_table(rows, title="maximum degree by construction"))


if __name__ == "__main__":
    main()
