#!/usr/bin/env python3
"""Ad-hoc / sensor network scenario (the paper's §1 motivation).

A random geometric graph models radio connectivity of sensors scattered in
the unit square.  A communication overlay built as a BFS tree concentrates
relay load on a few high-degree nodes -- the first nodes to exhaust their
battery and the prime targets of attacks.  The MDST overlay spreads the load:
its maximum degree is within one of the best achievable.

The script is the canonical "pick a protocol by name" example of the
unified protocol registry: the same sensor field is driven through every
layer of the paper's composition -- the spanning-tree substrate, the PIF
max-degree aggregation and the full MDST algorithm -- by looking the
protocols up in :data:`repro.protocols.PROTOCOLS` and handing them to the
one generic :func:`repro.protocols.run_protocol` engine.

It closes with a transient fault (half the sensors corrupted) injected into
the stabilized MDST overlay and shows the protocol re-converging, which is
the operational benefit of self-stabilization for unattended deployments.

Run with::

    python examples/sensor_network_overlay.py
"""

from __future__ import annotations

from repro.analysis import degree_histogram_of_tree, format_table
from repro.graphs import bfs_spanning_tree, make_graph, tree_degree
from repro.protocols import PROTOCOLS, ProtocolRunConfig, run_protocol
from repro.sim import FaultPlan


def main() -> None:
    graph = make_graph("random_geometric", 18, seed=7)
    print(f"sensor field: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} radio links")

    bfs = bfs_spanning_tree(graph)
    print(f"BFS overlay maximum degree : {tree_degree(graph.nodes, bfs)}")
    print()

    # Every layer of the paper's composition, picked from the registry by
    # name and run through the one generic engine.
    rows = []
    results = {}
    for name in ("spanning_tree", "pif_max_degree", "mdst"):
        adapter = PROTOCOLS[name]
        config = ProtocolRunConfig(protocol=name, seed=7, initial="isolated",
                                   max_rounds=4000)
        result = run_protocol(graph, config)
        results[name] = result
        rows.append({
            "protocol": name,
            "what it stabilizes": adapter.description.split(" (")[0],
            "converged": result.converged,
            "round": result.run.extra["convergence_round"],
            "messages": result.run.messages,
            "tree degree": result.tree_degree,
        })
    print(format_table(rows, title="one sensor field, every protocol layer"))

    mdst = results["mdst"]
    substrate = results["spanning_tree"]
    print(f"\nsubstrate tree degree {substrate.tree_degree} -> "
          f"MDST overlay degree {mdst.tree_degree} "
          f"(the degree-reduction layer's whole point)")

    rows = []
    bfs_hist = degree_histogram_of_tree(graph, bfs)
    mdst_hist = degree_histogram_of_tree(graph, mdst.tree_edges)
    for degree in sorted(set(bfs_hist) | set(mdst_hist)):
        rows.append({"tree degree": degree,
                     "BFS overlay nodes": bfs_hist.get(degree, 0),
                     "MDST overlay nodes": mdst_hist.get(degree, 0)})
    print()
    print(format_table(rows, title="relay-load distribution (nodes per tree degree)"))

    # Transient fault: half the sensors reboot with arbitrary memory contents.
    plan = FaultPlan().add(round_index=1000, node_fraction=0.5, channel_fraction=0.2)
    recovery = run_protocol(
        graph,
        ProtocolRunConfig(protocol="mdst", seed=7, initial="bfs_tree",
                          max_rounds=4000),
        fault_plan=plan)
    print(f"\nafter a transient fault at round 1000: converged={recovery.converged}, "
          f"final degree={recovery.tree_degree} "
          f"(stabilized again at round {recovery.run.extra['convergence_round']})")


if __name__ == "__main__":
    main()
