#!/usr/bin/env python3
"""Ad-hoc / sensor network scenario (the paper's §1 motivation).

A random geometric graph models radio connectivity of sensors scattered in
the unit square.  A communication overlay built as a BFS tree concentrates
relay load on a few high-degree nodes -- the first nodes to exhaust their
battery and the prime targets of attacks.  The MDST overlay spreads the load:
its maximum degree is within one of the best achievable.

The script also injects a transient fault (half the nodes corrupted) once the
overlay has stabilized and shows the protocol re-converging, which is the
operational benefit of self-stabilization for unattended sensor deployments.

Run with::

    python examples/sensor_network_overlay.py
"""

from __future__ import annotations

from repro.analysis import degree_histogram_of_tree, format_table
from repro.core import MDSTConfig, run_mdst
from repro.graphs import bfs_spanning_tree, make_graph, tree_degree
from repro.sim import FaultPlan


def main() -> None:
    graph = make_graph("random_geometric", 18, seed=7)
    print(f"sensor field: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} radio links")

    bfs = bfs_spanning_tree(graph)
    print(f"BFS overlay maximum degree : {tree_degree(graph.nodes, bfs)}")

    result = run_mdst(graph, MDSTConfig(seed=7, initial="isolated", max_rounds=4000))
    print(f"MDST overlay maximum degree: {result.tree_degree} "
          f"(converged={result.converged}, "
          f"round {result.run.extra['convergence_round']})")

    rows = []
    bfs_hist = degree_histogram_of_tree(graph, bfs)
    mdst_hist = degree_histogram_of_tree(graph, result.tree_edges)
    for degree in sorted(set(bfs_hist) | set(mdst_hist)):
        rows.append({"tree degree": degree,
                     "BFS overlay nodes": bfs_hist.get(degree, 0),
                     "MDST overlay nodes": mdst_hist.get(degree, 0)})
    print()
    print(format_table(rows, title="relay-load distribution (nodes per tree degree)"))

    # Transient fault: half the sensors reboot with arbitrary memory contents.
    plan = FaultPlan().add(round_index=1000, node_fraction=0.5, channel_fraction=0.2)
    recovery = run_mdst(graph, MDSTConfig(seed=7, initial="bfs_tree", max_rounds=4000),
                        fault_plan=plan)
    print(f"\nafter a transient fault at round 1000: converged={recovery.converged}, "
          f"final degree={recovery.tree_degree} "
          f"(stabilized again at round {recovery.run.extra['convergence_round']})")


if __name__ == "__main__":
    main()
