"""Dynamic-topology subsystem: network mutation APIs, churn plans, recovery.

Three layers under test:

* **Kernel** -- ``Network.add_node/remove_node/add_edge/remove_edge`` keep
  every incremental structure consistent: graph/adjacency/channel agreement,
  pending and outbox counters, dropped-message accounting, dirty-set and
  snapshot-cache invalidation, version and topology-version bumps, and
  process neighbour sets.
* **Plans** -- :class:`ChurnPlan` scheduling, the connectivity guard,
  determinism of :func:`random_churn_plan`, and composition with
  :class:`FaultPlan` inside the simulator.
* **Protocol** -- :class:`MDSTNode` handles neighbour-set deltas (stale
  view eviction, correction-phase re-entry) and re-converges after churn to
  a tree that ``make_mdst_legitimacy`` accepts for the *mutated* graph, on
  the three families named by the acceptance criteria.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core.legitimacy import make_mdst_legitimacy
from repro.core.protocol import MDSTConfig, build_mdst_network, run_mdst
from repro.exceptions import ProtocolError, SimulationError
from repro.graphs import make_graph
from repro.graphs.validation import check_spanning_tree
from repro.sim import (ChurnEvent, ChurnPlan, FaultPlan, PredicateCache,
                       SynchronousScheduler, random_churn_plan)
from repro.sim.scheduler import RoundStats


def build_net(family: str, n: int, seed: int):
    graph = make_graph(family, n, seed=seed)
    return build_mdst_network(graph, MDSTConfig(seed=seed))


def assert_consistent(net) -> None:
    """Every incremental structure agrees with the graph ground truth."""
    assert net.n == net.graph.number_of_nodes()
    assert net.m == net.graph.number_of_edges()
    assert net.node_ids == sorted(net.graph.nodes)
    assert set(net.processes) == set(net.node_ids)
    for v in net.node_ids:
        expected = tuple(sorted(net.graph.neighbors(v)))
        assert net.adjacency[v] == expected
        assert net.processes[v].neighbors == expected
        assert net.processes[v]._neighbor_set == frozenset(expected)
        assert sorted(net.processes[v].s.view) == list(expected)
    expected_channels = {(u, v) for a, b in net.graph.edges
                         for u, v in ((a, b), (b, a))}
    assert set(net.channels) == expected_channels
    assert net.pending_messages() == sum(len(c) for c in net.channels.values())
    # snapshot caches serve exactly the live node set
    assert set(net.snapshots()) == set(net.node_ids)
    assert [v for v, _ in net.snapshot_key()] == net.node_ids


class TestNetworkMutation:
    def test_add_edge_updates_everything(self):
        net = build_net("cycle", 6, 0)
        tv, cv = net.topology_version, net.version
        net.add_edge(0, 3)
        assert net.has_edge(0, 3) and net.has_edge(3, 0)
        assert net.topology_version == tv + 1 and net.version > cv
        assert_consistent(net)

    def test_remove_edge_drops_in_flight_messages(self):
        net = build_net("wheel", 8, 0)
        sched = SynchronousScheduler()
        sched.run_round(net)                 # fills channels with gossip
        u, v = 0, net.adjacency[0][0]
        pending = len(net.channel(u, v)) + len(net.channel(v, u))
        assert pending > 0
        net.remove_edge(u, v)
        assert net.dropped_messages == pending
        assert not net.has_edge(u, v)
        assert_consistent(net)

    def test_add_node_joins_with_working_channels(self):
        net = build_net("cycle", 5, 0)
        proc = net.add_node(7, [0, 2])
        assert proc is net.processes[7]
        assert net.node_ids == [0, 1, 2, 3, 4, 7]
        assert_consistent(net)
        # the newcomer can actually communicate
        sched = SynchronousScheduler()
        sched.run_round(net)
        assert net.processes[7].steps_taken > 0

    def test_remove_node_releases_all_state(self):
        net = build_net("wheel", 8, 1)
        sched = SynchronousScheduler()
        sched.run_round(net)
        net.set_node_enabled(3, False)
        net.remove_node(3)
        assert 3 not in net.processes and 3 not in net.adjacency
        assert net.node_enabled(3) is False or 3 not in net._disabled  # released
        assert_consistent(net)
        # quiescence counter survives: drain everything and check ground truth
        for _ in range(500):
            deliveries = net.enabled_deliveries()
            if not deliveries:
                break
            src, dst, _ = deliveries[0]
            SynchronousScheduler._deliver_one(net, src, dst, None, RoundStats())
        assert net.is_quiescent() == (
            net.pending_messages() == 0
            and all(len(p.outbox) == 0 for p in net.processes.values()))

    def test_caller_graph_is_never_mutated(self):
        graph = make_graph("cycle", 6, seed=0)
        edges_before = set(graph.edges)
        net = build_mdst_network(graph, MDSTConfig(seed=0))
        net.add_edge(0, 3)
        net.remove_node(5)
        assert set(graph.edges) == edges_before
        assert graph.number_of_nodes() == 6

    def test_mutation_errors(self):
        net = build_net("cycle", 5, 0)
        with pytest.raises(SimulationError):
            net.add_edge(0, 1)               # already exists
        with pytest.raises(SimulationError):
            net.add_edge(0, 0)               # self-loop
        with pytest.raises(SimulationError):
            net.add_edge(0, 99)              # unknown endpoint
        with pytest.raises(SimulationError):
            net.remove_edge(0, 2)            # not an edge
        with pytest.raises(SimulationError):
            net.add_node(3, [0])             # id taken
        with pytest.raises(SimulationError):
            net.add_node(9, [99])            # unknown attach point
        with pytest.raises(SimulationError):
            net.remove_node(42)              # unknown node

    def test_removed_last_node_rejected(self):
        graph = nx.path_graph(2)
        net = build_mdst_network(graph, MDSTConfig())
        net.remove_node(1)
        with pytest.raises(SimulationError):
            net.remove_node(0)

    def test_removed_channel_stats_are_retired_not_lost(self):
        net = build_net("wheel", 8, 0)
        sched = SynchronousScheduler()
        sched.run_round(net)
        max_bits = net.max_channel_message_bits()
        sent = net.total_messages_sent()
        assert max_bits > 0 and sent > 0
        for u in list(net.adjacency[0]):     # node 0 is the wheel hub
            if len(net.adjacency[0]) == 1:
                break
            probe = net.graph.copy()
            probe.remove_edge(0, u)
            if nx.is_connected(probe):
                net.remove_edge(0, u)
        assert net.max_channel_message_bits() >= max_bits
        assert net.total_messages_sent() == sent

    def test_channel_size_model_follows_node_churn(self):
        net = build_net("cycle", 6, 0)
        net.add_node(10, [0, 3])
        sizes = {c._network_size for c in net.channels.values()}
        assert sizes == {7}
        net.remove_node(10)
        assert {c._network_size for c in net.channels.values()} == {6}

    def test_channel_order_stays_unique_through_churn(self):
        net = build_net("cycle", 6, 0)
        net.remove_edge(0, 1)
        net.add_edge(0, 3)
        net.add_edge(0, 1)
        orders = list(net._channel_order.values())
        assert len(orders) == len(set(orders))
        # pending_channels keeps a stable deterministic order
        net.processes[0].on_timeout()
        net.flush_outbox(0)
        keys = [c.endpoints for c in net.pending_channels()]
        assert keys == sorted(keys, key=net._channel_order.__getitem__)


class TestProcessNeighborDeltas:
    def test_process_level_guards(self):
        net = build_net("cycle", 5, 0)
        proc = net.processes[0]
        with pytest.raises(ProtocolError):
            proc.add_neighbor(0)
        with pytest.raises(ProtocolError):
            proc.add_neighbor(1)             # already a neighbour
        with pytest.raises(ProtocolError):
            proc.remove_neighbor(2)          # not a neighbour

    def test_lost_parent_reenters_correction_phase(self):
        net = build_net("cycle", 6, 0)
        sched = SynchronousScheduler()
        for _ in range(30):
            sched.run_round(net)
        child = next(v for v in net.node_ids
                     if net.processes[v].s.parent != v)
        parent = net.processes[child].s.parent
        net.remove_edge(child, parent)
        st = net.processes[child].s
        assert parent not in st.view          # stale view evicted
        assert st.parent != parent            # no pointer to the dead link
        # fresh-root re-entry (possibly already re-attached by _refresh)
        assert st.parent == child or st.parent in st.view

    def test_new_neighbor_starts_unheard(self):
        net = build_net("cycle", 6, 0)
        net.add_edge(0, 3)
        assert net.processes[0].s.view[3].heard is False
        assert net.processes[3].s.view[0].heard is False

    def test_send_to_removed_neighbor_raises(self):
        net = build_net("cycle", 5, 0)
        net.add_edge(0, 2)
        net.remove_edge(0, 2)
        from repro.core.messages import MInfo
        msg = MInfo(root=0, parent=0, distance=0, degree=0, sub_max=0,
                    dmax=0, color=True)
        with pytest.raises(ProtocolError):
            net.processes[0].send(2, msg)


class TestPredicateTopologyInvalidation:
    def test_cache_reevaluates_after_silent_topology_change(self):
        """Adding a non-tree edge changes no snapshot, yet can flip the
        legitimacy verdict -- the cache must not serve the stale one."""
        net = build_net("cycle", 6, 0)
        sched = SynchronousScheduler()
        legit = make_mdst_legitimacy()
        cache = PredicateCache(legit)
        for _ in range(60):
            sched.run_round(net)
            if cache(net):
                break
        assert cache(net) is True
        key_before = net.snapshot_key()
        evals_before = cache.evaluations
        net.add_edge(0, 3)                   # silent for snapshots...
        assert net.snapshot_key() == key_before
        verdict = cache(net)
        assert cache.evaluations == evals_before + 1   # ...not for the cache
        assert verdict == legit(net)

    def test_reduction_memo_not_stale_across_mutation(self):
        """Same tree edge set, mutated graph: the memoized fixpoint verdict
        must be recomputed, not replayed."""
        net = build_net("two_hub", 8, 0)
        sched = SynchronousScheduler()
        legit = make_mdst_legitimacy()
        for _ in range(400):
            sched.run_round(net)
            if legit(net):
                break
        assert legit(net) is True
        # remove a non-tree edge: tree unchanged, graph smaller -- verdict
        # must still be computed against the new graph without crashing
        from repro.core.legitimacy import current_tree_edges
        tree = current_tree_edges(net)
        non_tree = next((u, v) for (u, v) in
                        ((min(a, b), max(a, b)) for a, b in net.graph.edges)
                        if (u, v) not in tree)
        probe = net.graph.copy()
        probe.remove_edge(*non_tree)
        if nx.is_connected(probe):
            net.remove_edge(*non_tree)
            assert isinstance(legit(net), bool)


class TestChurnPlan:
    def test_fluent_construction_and_scheduling(self):
        plan = (ChurnPlan()
                .add_edge(5, 0, 2)
                .remove_edge(9, 1, 3)
                .add_node(9, 42, [0])
                .remove_node(12, 4))
        assert plan.last_round == 12
        assert [e.kind for e in plan.pending_at(9)] == ["remove_edge", "add_node"]
        assert plan.pending_at(7) == []

    def test_event_validation(self):
        with pytest.raises(Exception):
            ChurnEvent(1, "explode")
        with pytest.raises(Exception):
            ChurnEvent(1, "add_node")        # missing node
        with pytest.raises(Exception):
            ChurnEvent(1, "remove_edge")     # missing edge

    def test_guard_skips_disconnecting_removals(self):
        graph = nx.path_graph(4)             # every edge is a bridge
        net = build_mdst_network(graph, MDSTConfig())
        plan = ChurnPlan().remove_edge(1, 1, 2).remove_node(1, 0)
        # node 0 is a leaf: removing it keeps the path connected
        applied = plan.apply_due(net, 1)
        assert [e.kind for e in applied] == ["remove_node"]
        assert len(plan.skipped) == 1
        assert "disconnect" in plan.skipped[0][1]
        assert_consistent(net)

    def test_guard_skips_stale_events(self):
        net = build_net("cycle", 6, 0)
        plan = (ChurnPlan()
                .remove_node(1, 3)
                .remove_node(2, 3)           # already gone by round 2
                .add_edge(3, 0, 2))
        plan.apply_due(net, 1)
        plan.apply_due(net, 2)
        plan.apply_due(net, 3)
        assert len(plan.applied) == 2
        assert len(plan.skipped) == 1
        assert "no longer present" in plan.skipped[0][1]

    def test_unguarded_plan_may_disconnect(self):
        graph = nx.path_graph(4)
        net = build_mdst_network(graph, MDSTConfig())
        plan = ChurnPlan(guard_connectivity=False).remove_edge(1, 1, 2)
        assert plan.apply_due(net, 1)
        assert not nx.is_connected(net.graph)

    def test_random_plan_is_deterministic_and_applies_cleanly(self):
        graph = make_graph("erdos_renyi_sparse", 14, seed=5)
        p1 = random_churn_plan(graph, events=8, start_round=10, period=5, seed=3)
        p2 = random_churn_plan(graph, events=8, start_round=10, period=5, seed=3)
        assert p1.events == p2.events
        assert len(p1.events) == 8
        p3 = random_churn_plan(graph, events=8, start_round=10, period=5, seed=4)
        assert p1.events != p3.events
        # generated against an evolving working copy: applies without skips
        net = build_mdst_network(graph, MDSTConfig(seed=5))
        for event in p1.events:
            assert p1.apply_event(net, event), p1.skipped
        assert_consistent(net)
        assert nx.is_connected(net.graph)


CHURN_FAMILIES = ("erdos_renyi_sparse", "random_geometric", "barabasi_albert")


class TestChurnRecovery:
    """Acceptance criteria: re-convergence to a legitimate MDST of the
    mutated graph on the three named families."""

    @pytest.mark.parametrize("family", CHURN_FAMILIES)
    def test_reconverges_to_legitimate_tree_of_mutated_graph(self, family):
        graph = make_graph(family, 14, seed=7)
        plan = random_churn_plan(graph, events=5, start_round=60, period=20,
                                 seed=21)
        config = MDSTConfig(seed=7, max_rounds=6000,
                            n_upper=graph.number_of_nodes() + 5 + 1)
        result = run_mdst(graph, config, churn_plan=plan)
        assert result.converged, (family, result.rounds)
        assert result.run.extra["churn_applied"] == 5
        final = result.final_graph
        assert final is not None
        assert final.number_of_nodes() == result.run.extra["final_n"]
        # the final tree spans the mutated graph...
        check_spanning_tree(final, result.tree_edges)
        # ...and convergence never predates the last topology event (the
        # first legitimate observation is of the post-churn configuration)
        assert (result.run.extra["convergence_round"]
                >= max(result.run.extra["churn_rounds"]))

    def test_reused_plan_counts_per_run_not_cumulatively(self):
        graph = make_graph("erdos_renyi_sparse", 10, seed=2)
        leaf = next(v for v in sorted(graph.nodes)
                    if v not in set(nx.articulation_points(graph))
                    and v != min(graph.nodes))
        plan = ChurnPlan().remove_node(30, leaf)
        config = MDSTConfig(seed=2, max_rounds=5000)
        first = run_mdst(graph, config, churn_plan=plan)
        second = run_mdst(graph, config, churn_plan=plan)
        assert first.run.extra["churn_applied"] == 1
        assert second.run.extra["churn_applied"] == 1   # not 2

    def test_composes_with_fault_plan(self):
        graph = make_graph("erdos_renyi_sparse", 12, seed=9)
        churn = ChurnPlan().remove_node(40, max(graph.nodes))
        faults = FaultPlan().add(round_index=40, node_fraction=0.5)
        config = MDSTConfig(seed=9, max_rounds=6000)
        result = run_mdst(graph, config, fault_plan=faults, churn_plan=churn)
        assert result.converged
        assert result.run.extra["churn_applied"] == 1
        assert result.run.extra["final_n"] == graph.number_of_nodes() - 1
        check_spanning_tree(result.final_graph, result.tree_edges)

    def test_min_id_node_departure_recovers(self):
        """Losing the root (the minimum identifier) is the hardest leave:
        every node must abandon the ghost root and re-elect."""
        graph = make_graph("erdos_renyi_sparse", 12, seed=3)
        if set(nx.articulation_points(graph)) & {min(graph.nodes)}:
            pytest.skip("min node is an articulation point for this seed")
        churn = ChurnPlan().remove_node(50, min(graph.nodes))
        config = MDSTConfig(seed=3, max_rounds=6000)
        result = run_mdst(graph, config, churn_plan=churn)
        assert result.converged
        assert result.run.extra["churn_applied"] == 1
        check_spanning_tree(result.final_graph, result.tree_edges)
        # the tree must exclude the departed node entirely
        assert all(min(graph.nodes) not in edge for edge in result.tree_edges)
