"""Tests for the experiment harness (profiles, workloads, E1-E8 definitions).

The experiment functions are exercised on a deliberately tiny profile so the
suite stays fast; the benchmarks run the regular ``quick`` profile.
"""

from __future__ import annotations

import pytest

from repro.analysis import ExperimentReport
from repro.experiments import (
    ExperimentProfile,
    QUICK_PROFILE,
    WorkloadInstance,
    baseline_workload,
    experiment_e1_degree_quality,
    experiment_e3_memory,
    experiment_e6_baselines,
    experiment_e7_simultaneous_reduction,
    experiment_e8_improvement_cost,
    get_profile,
    hub_workload,
    quality_workload,
    run_protocol_on,
    run_reference_on,
    scaling_workload,
    stabilization_workload,
)
from repro.core import MDSTConfig

TINY = ExperimentProfile(
    name="tiny",
    protocol_sizes=(8,),
    reference_sizes=(12,),
    exact_sizes=(6,),
    repetitions=1,
    max_rounds=1500,
    seeds=(5,),
    schedulers=("synchronous",),
)


class TestProfilesAndWorkloads:
    def test_get_profile(self):
        assert get_profile("quick") is QUICK_PROFILE
        with pytest.raises(KeyError):
            get_profile("nope")

    def test_seed_for_wraps(self):
        assert TINY.seed_for(0) == TINY.seed_for(1) == 5

    def test_workload_instance_builds_graph(self):
        inst = WorkloadInstance("wheel", 8, 1)
        g = inst.build()
        assert g.number_of_nodes() == 8
        assert "wheel" in inst.label

    @pytest.mark.parametrize("factory", [quality_workload, scaling_workload,
                                         stabilization_workload, baseline_workload])
    def test_workloads_nonempty_and_buildable(self, factory):
        instances = factory(TINY)
        assert instances
        g = instances[0].build()
        assert g.number_of_nodes() >= 2

    def test_hub_workload_sizes(self):
        instances = hub_workload(TINY, hub_counts=(2, 3))
        assert {i.n for i in instances} == {10, 15}


class TestRunner:
    def test_run_protocol_on_produces_record(self):
        inst = WorkloadInstance("wheel", 7, 3)
        run = run_protocol_on(inst, MDSTConfig(seed=3, initial="bfs_tree",
                                               max_rounds=1500))
        record = run.record
        assert record.nodes == 7
        assert record.converged
        assert record.tree_degree <= 3

    def test_run_reference_on(self):
        inst = WorkloadInstance("complete", 10, 1)
        graph, result = run_reference_on(inst)
        assert graph.number_of_nodes() == 10
        assert result.final_degree == 2


class TestExperimentDefinitions:
    def test_e1_rows_and_within_one(self):
        report = experiment_e1_degree_quality(TINY, use_protocol=False)
        assert isinstance(report, ExperimentReport)
        assert report.rows
        flags = [r["within_one"] for r in report.rows if "within_one" in r]
        assert flags and all(flags)

    def test_e3_memory_within_bound(self):
        report = experiment_e3_memory(TINY)
        assert report.rows
        assert all(r["state_within_bound"] for r in report.rows)

    def test_e6_mdst_beats_or_matches_bfs(self):
        report = experiment_e6_baselines(TINY)
        assert report.rows
        assert all(r["mdst_degree"] <= r["bfs_degree"] for r in report.rows)

    def test_e7_speedup_at_least_one(self):
        report = experiment_e7_simultaneous_reduction(TINY, hub_counts=(2,))
        assert report.rows
        assert all(r["speedup"] >= 1.0 for r in report.rows)

    def test_e8_rows_have_message_counts(self):
        report = experiment_e8_improvement_cost(TINY, cycle_lengths=(5,))
        assert report.rows
        row = report.rows[0]
        assert row["final_degree"] <= row["initial_degree"]
        assert row["search_messages"] >= 0
