"""Property, determinism and equivalence tests for the construction fast path.

Covers the vectorized edge-array generators (:mod:`repro.graphs.fast_generators`),
the :class:`~repro.graphs.edge_array.EdgeArrayGraph` container, and the
CSR-direct array-network build:

* hypothesis properties -- every fast family produces a connected simple
  graph with no self-loops, in canonical edge-array form, for arbitrary
  (n, seed);
* determinism -- same seed means byte-identical edge arrays, in-process
  and across subprocesses with different ``PYTHONHASHSEED`` values (the
  generators must not depend on hash iteration order);
* heavy-tail sanity -- ``powerlaw_cm`` with a lower exponent grows a
  visibly heavier degree tail;
* CSR-direct equivalence -- running a protocol from an
  :class:`EdgeArrayGraph` directly (CSR-direct build) matches running it
  from the materialized nx graph, field for field;
* breadth -- each *new* family (``powerlaw_cm``, ``small_world_fast``,
  ``kronecker``) converges under every registered protocol on
  ``backend="array"``.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphs.edge_array import (
    EdgeArrayGraph,
    canonical_edge_arrays,
    connect_components,
    union_find_labels,
)
from repro.graphs.fast_generators import (
    FAST_FAMILIES,
    fast_family_names,
    make_fast_graph,
)
from repro.protocols.base import ProtocolRunConfig
from repro.protocols.registry import PROTOCOLS
from repro.protocols.runner import run_protocol

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

#: The families this PR adds (the other three are fast rewrites of
#: existing nx families).
NEW_FAMILIES = ("powerlaw_cm", "small_world_fast", "kronecker")


def _edge_digest(g: EdgeArrayGraph) -> str:
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(g.edges_u).tobytes())
    h.update(np.ascontiguousarray(g.edges_v).tobytes())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# Hypothesis properties: connected, simple, no self-loops, canonical
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("family", fast_family_names())
class TestGeneratorProperties:

    # lower bound 8: above every registry lambda's minimum-size clamp
    @SETTINGS
    @given(n=st.integers(8, 80), seed=st.integers(0, 2**31 - 1))
    def test_connected_simple_canonical(self, family, n, seed):
        g = make_fast_graph(family, n, seed=seed)
        assert g.n == n
        u, v = g.edges_u, g.edges_v
        # no self-loops, endpoints in range, u < v within each edge
        assert (u < v).all()
        assert u.size == 0 or (0 <= int(u.min()) and int(v.max()) < n)
        # simple: the linearized (u, v) keys are strictly increasing,
        # which also pins the canonical lexicographic edge order
        key = u * np.int64(n) + v
        assert (np.diff(key) > 0).all()
        # connected, via the same vectorized union-find the repair uses
        assert bool((union_find_labels(n, u, v) == 0).all())
        # nx materialization agrees on the basic counts
        gx = g.to_networkx()
        assert gx.number_of_nodes() == n
        assert gx.number_of_edges() == g.number_of_edges()

    @SETTINGS
    @given(n=st.integers(4, 60), seed=st.integers(0, 2**31 - 1))
    def test_same_seed_is_byte_identical(self, family, n, seed):
        a = make_fast_graph(family, n, seed=seed)
        b = make_fast_graph(family, n, seed=seed)
        assert np.array_equal(a.edges_u, b.edges_u)
        assert np.array_equal(a.edges_v, b.edges_v)


# ---------------------------------------------------------------------------
# Container primitives
# ---------------------------------------------------------------------------

class TestEdgeArrayPrimitives:

    def test_canonical_orders_dedups_and_drops_loops(self):
        u = np.array([3, 1, 2, 2, 0, 1])
        v = np.array([1, 3, 2, 0, 1, 3])
        cu, cv = canonical_edge_arrays(5, u, v)
        assert list(zip(cu.tolist(), cv.tolist())) == [(0, 1), (0, 2), (1, 3)]

    def test_connect_components_chains_representatives(self):
        # two components {0,1} and {2,3}: repair links their minima
        u = np.array([0, 2])
        v = np.array([1, 3])
        ru, rv = connect_components(4, u, v)
        labels = union_find_labels(4, ru, rv)
        assert bool((labels == 0).all())

    def test_validate_rejects_disconnected(self):
        from repro.exceptions import GraphError
        with pytest.raises(GraphError, match="not connected"):
            EdgeArrayGraph(4, np.array([0]), np.array([1]))


# ---------------------------------------------------------------------------
# Hash-seed independence (subprocess)
# ---------------------------------------------------------------------------

_DIGEST_SCRIPT = """
import hashlib, json, sys
import numpy as np
from repro.graphs.fast_generators import fast_family_names, make_fast_graph
out = {}
for family in fast_family_names():
    g = make_fast_graph(family, 300, seed=7)
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(g.edges_u).tobytes())
    h.update(np.ascontiguousarray(g.edges_v).tobytes())
    out[family] = h.hexdigest()
print(json.dumps(out))
"""


def _digests_under_hashseed(hashseed: str) -> dict:
    import repro
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src_dir, env.get("PYTHONPATH", "")) if p)
    proc = subprocess.run([sys.executable, "-c", _DIGEST_SCRIPT],
                          capture_output=True, text=True, env=env, check=True)
    return json.loads(proc.stdout)


def test_edge_arrays_independent_of_hash_seed():
    """Same seed gives byte-identical arrays across PYTHONHASHSEED values."""
    first = _digests_under_hashseed("0")
    second = _digests_under_hashseed("424242")
    assert first == second
    # and both match this process
    local = {family: _edge_digest(make_fast_graph(family, 300, seed=7))
             for family in fast_family_names()}
    assert local == first


# ---------------------------------------------------------------------------
# Heavy-tail sanity for the configuration model
# ---------------------------------------------------------------------------

class TestPowerlawTail:

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_lower_exponent_grows_heavier_tail(self, seed):
        heavy = make_fast_graph("powerlaw_cm", 3000, seed=seed, exponent=2.2)
        light = make_fast_graph("powerlaw_cm", 3000, seed=seed, exponent=3.5)
        assert int(heavy.degree_array().max()) > int(light.degree_array().max())

    def test_tail_dwarfs_median(self):
        g = make_fast_graph("powerlaw_cm", 3000, seed=1, exponent=2.2)
        d = g.degree_array()
        assert int(d.max()) >= 10 * float(np.median(d))


# ---------------------------------------------------------------------------
# CSR-direct build equivalence and cross-protocol breadth
# ---------------------------------------------------------------------------

def _run(graph, protocol: str) -> "tuple":
    result = run_protocol(graph, ProtocolRunConfig(
        protocol=protocol, backend="array", seed=7, initial="isolated"))
    return (result.run.converged, result.run.rounds, result.run.steps,
            result.run.messages, frozenset(result.tree_edges),
            result.node_stats)


def test_csr_direct_run_matches_nx_built_run():
    """The CSR-direct ArrayNetwork is byte-identical to the nx-built one."""
    eg = make_fast_graph("powerlaw_cm", 60, seed=7)
    direct = _run(eg, "mdst")
    via_nx = _run(eg.to_networkx(), "mdst")
    assert direct == via_nx
    assert direct[0]  # and the run actually converged


@pytest.mark.parametrize("family", NEW_FAMILIES)
@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_new_families_converge_under_every_protocol(family, protocol):
    eg = make_fast_graph(family, 24, seed=3)
    result = run_protocol(eg, ProtocolRunConfig(
        protocol=protocol, backend="array", seed=3, initial="isolated"))
    assert result.run.converged
    assert len(result.tree_edges) == eg.n - 1
