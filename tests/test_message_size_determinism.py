"""Regression test: message size accounting is hash-seed independent.

``estimate_bits`` costs sets and frozensets as a commutative sum of their
elements, so the estimate must not depend on the hash-seed-dependent
iteration order of the container.  This test computes ``size_bits`` for one
message of every protocol type (plus garbage payloads embedding string sets,
whose iteration order *does* vary with ``PYTHONHASHSEED``) in subprocesses
launched with different hash seeds, and requires identical results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: Executed in each subprocess: build one message of every type and print
#: the ``{type_name: size_bits}`` mapping as JSON.
_SIZER = r"""
import json
from repro.core.messages import (
    MInfo, Search, Remove, Back, Deblock, Reverse, UpdateDist)
from repro.sim.messages import GarbageMessage, estimate_bits

N = 32
messages = [
    MInfo(root=0, parent=1, distance=2, degree=3, sub_max=4, dmax=5, color=True),
    Search(init_edge=(3, 1), idblock=None,
           path=((1, 2), (5, 3)), visited=(1, 5)),
    Remove(init_edge=(7, 1), deg_max=4, target_edge=(2, 5),
           path=(1, 2, 5, 7), reversing=False),
    Back(init_edge=(7, 1), path=(1, 2, 5, 7), position=2),
    Deblock(idblock=9),
    Reverse(target=4),
    UpdateDist(target_edge=(1, 7), dist=3),
    GarbageMessage(payload=(frozenset({"alpha", "beta", "gamma", "delta"}),
                            frozenset({10, 20, 30}))),
]
sizes = {m.type_name(): m.size_bits(N) for m in messages}
sizes["raw_set"] = estimate_bits({"x", "yy", "zzz", "wwww"}, N)
sizes["raw_frozenset"] = estimate_bits(frozenset(range(12)), N)
print(json.dumps(sizes, sort_keys=True))
"""


def _sizes_with_hash_seed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run([sys.executable, "-c", _SIZER], env=env,
                            capture_output=True, text=True, check=True)
    return json.loads(result.stdout)


def test_size_bits_deterministic_across_hash_seeds():
    baseline = _sizes_with_hash_seed("0")
    assert baseline  # every message type sized
    for seed in ("1", "42", "12345"):
        assert _sizes_with_hash_seed(seed) == baseline
