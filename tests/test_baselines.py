"""Tests for the baseline algorithms (exact, FR, local search, simple trees)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import (
    FRResult,
    SerializationCostModel,
    evaluate_simple_trees,
    exact_mdst_degree,
    exact_mdst_tree,
    fuerer_raghavachari,
    greedy_local_search,
    has_degree_bounded_spanning_tree,
    serialized_vs_concurrent_cost,
    baseline_tree,
)
from repro.exceptions import ExactSolverBudgetError
from repro.graphs import (
    bfs_spanning_tree,
    is_spanning_tree,
    make_graph,
    mdst_lower_bound,
    tree_degree,
    tree_degrees,
)


class TestExactSolver:
    @pytest.mark.parametrize("family,n,expected", [
        ("complete", 6, 2),       # Hamiltonian path exists
        ("cycle", 7, 2),          # any tree of a cycle is a path
        ("star", 6, 5),           # the star is the only spanning tree
        ("wheel", 8, 2),          # rim forms a Hamiltonian path
        ("path", 6, 2),
    ])
    def test_known_optimal_degrees(self, family, n, expected):
        g = make_graph(family, n)
        assert exact_mdst_degree(g) == expected

    def test_two_hub_closed_form(self):
        # L leaves each adjacent to both hubs: deg(a)+deg(b) >= L+1 in any
        # spanning tree, and a balanced split achieves ceil((L+1)/2).
        for leaves in (3, 4, 5, 6):
            g = make_graph("two_hub", leaves + 2)
            assert exact_mdst_degree(g) == leaves // 2 + 1

    def test_decision_problem_infeasible_below_optimum(self):
        g = make_graph("star", 6)
        assert has_degree_bounded_spanning_tree(g, 4) is None
        assert has_degree_bounded_spanning_tree(g, 5) is not None

    def test_exact_tree_is_valid_and_optimal(self):
        g = make_graph("erdos_renyi_dense", 9, seed=1)
        tree = exact_mdst_tree(g)
        assert is_spanning_tree(g, tree)
        assert tree_degree(g.nodes, tree) == exact_mdst_degree(g)

    def test_degree_never_below_lower_bound(self):
        for seed in range(3):
            g = make_graph("erdos_renyi_sparse", 10, seed=seed)
            assert exact_mdst_degree(g) >= mdst_lower_bound(g)

    def test_budget_exhaustion_raises(self):
        g = make_graph("erdos_renyi_dense", 12, seed=0)
        with pytest.raises(ExactSolverBudgetError):
            has_degree_bounded_spanning_tree(g, 2, budget=5)

    def test_trivial_sizes(self):
        assert exact_mdst_degree(nx.path_graph(1)) == 0
        assert exact_mdst_degree(nx.path_graph(2)) == 1


class TestFuererRaghavachari:
    @pytest.mark.parametrize("family,n,seed", [
        ("wheel", 9, 0), ("complete", 8, 0), ("two_hub", 9, 0),
        ("erdos_renyi_dense", 10, 2), ("hard_hub", 9, 0),
        ("star_of_cliques", 12, 0), ("lollipop", 9, 0),
    ])
    def test_within_one_of_optimal(self, family, n, seed):
        g = make_graph(family, n, seed=seed)
        result = fuerer_raghavachari(g)
        assert is_spanning_tree(g, result.tree_edges)
        optimal = exact_mdst_degree(g)
        assert optimal <= result.final_degree <= optimal + 1

    def test_counts_swap_kinds(self, wheel8):
        result = fuerer_raghavachari(wheel8)
        assert result.swaps == result.improvement_swaps + result.deblock_swaps
        assert result.swaps > 0

    def test_accepts_custom_initial_tree(self, small_dense):
        tree = bfs_spanning_tree(small_dense)
        result = fuerer_raghavachari(small_dense, initial_tree=tree)
        assert result.initial_degree == tree_degree(small_dense.nodes, tree)
        assert result.final_degree <= result.initial_degree

    def test_no_swaps_needed_on_path(self):
        g = make_graph("cycle", 8)
        result = fuerer_raghavachari(g)
        assert result.swaps == 0
        assert result.final_degree == 2


class TestLocalSearch:
    def test_reduces_wheel_to_low_degree(self, wheel8):
        result = greedy_local_search(wheel8)
        assert is_spanning_tree(wheel8, result.tree_edges)
        assert result.final_degree < result.initial_degree

    def test_never_better_than_fr(self):
        """Direct improvements alone can stall earlier than FR (never later)."""
        for family, n, seed in [("two_hub", 9, 0), ("erdos_renyi_dense", 10, 3),
                                ("star_of_cliques", 12, 0)]:
            g = make_graph(family, n, seed=seed)
            ls = greedy_local_search(g)
            fr = fuerer_raghavachari(g)
            assert ls.final_degree >= fr.final_degree

    def test_history_is_monotone_non_increasing(self, wheel8):
        result = greedy_local_search(wheel8)
        assert all(a >= b for a, b in zip(result.degree_history,
                                          result.degree_history[1:]))


class TestSimpleTrees:
    def test_all_baselines_produce_spanning_trees(self, geometric14):
        for name, res in evaluate_simple_trees(geometric14, seed=1).items():
            assert is_spanning_tree(geometric14, res.tree_edges), name
            assert res.degree >= 1
            assert res.leaves >= 2

    def test_baseline_tree_lookup(self, small_dense):
        edges = baseline_tree("bfs", small_dense)
        assert edges == bfs_spanning_tree(small_dense)
        with pytest.raises(KeyError):
            baseline_tree("nonexistent", small_dense)

    def test_bfs_tree_on_wheel_has_high_degree(self, wheel8):
        results = evaluate_simple_trees(wheel8, seed=0)
        assert results["bfs"].degree == 7
        assert results["dfs"].degree <= 3

    def test_mean_degree_close_to_two(self, small_dense):
        results = evaluate_simple_trees(small_dense, seed=0)
        n = small_dense.number_of_nodes()
        for res in results.values():
            assert abs(res.mean_degree - 2 * (n - 1) / n) < 1e-9


class TestSerializationModel:
    def test_speedup_at_least_one(self):
        g = make_graph("star_of_cliques", 15)
        model = serialized_vs_concurrent_cost(g)
        assert model.serialized_rounds >= model.concurrent_rounds
        assert model.speedup >= 1.0
        assert model.swaps == len(model.swap_cycle_lengths)

    def test_no_swaps_means_equal_costs(self):
        g = make_graph("cycle", 8)
        model = serialized_vs_concurrent_cost(g)
        assert model.swaps == 0
        assert model.serialized_rounds == model.concurrent_rounds == 0
        assert model.speedup == 1.0
