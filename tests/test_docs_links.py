"""Documentation link check: every relative link in the Markdown docs must
point at a file (or directory) that exists in the repository.

This is the local half of the CI docs check -- it keeps README.md, PAPER.md
and docs/ from silently rotting when files move.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Markdown documents whose links are checked (root docs + everything in docs/).
DOC_FILES = sorted(
    [p for p in REPO_ROOT.glob("*.md")] + [p for p in REPO_ROOT.glob("docs/*.md")]
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(path: Path) -> list:
    """All relative (non-URL, non-anchor) link targets in a Markdown file."""
    links = []
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if "://" in target or target.startswith(("mailto:", "#")):
            continue
        links.append(target.split("#", 1)[0])
    return [t for t in links if t]


def test_doc_files_present():
    names = {p.name for p in DOC_FILES}
    assert {"README.md", "PAPER.md", "architecture.md", "experiments.md"} <= names


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_relative_links_resolve(doc):
    missing = [target for target in relative_links(doc)
               if not (doc.parent / target).exists()]
    assert not missing, f"{doc.relative_to(REPO_ROOT)} has dead links: {missing}"
