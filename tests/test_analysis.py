"""Tests for the analysis layer (metrics, convergence, memory, tables, reports)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import (
    ConvergenceRecord,
    ExperimentReport,
    MemoryReport,
    TreeQuality,
    aggregate_records,
    degree_gap,
    degree_histogram_of_tree,
    evaluate_tree,
    format_csv,
    format_table,
    gini,
    log_n_bits,
    loglog_slope,
    memory_report,
    message_bound_bits,
    paper_round_bound,
    render_rows,
    state_bound_bits,
)
from repro.core import MDSTConfig, build_mdst_network
from repro.graphs import bfs_spanning_tree, make_graph


class TestMetrics:
    def test_evaluate_tree_with_known_optimum(self, wheel8):
        tree = bfs_spanning_tree(wheel8)
        q = evaluate_tree(wheel8, tree, optimal_degree=2)
        assert q.degree == 7
        assert q.gap_to_optimal == 5
        assert q.within_one_of_optimal is False
        assert q.leaves == 7

    def test_evaluate_tree_without_optimum(self, small_dense):
        q = evaluate_tree(small_dense, bfs_spanning_tree(small_dense))
        assert q.optimal_degree is None
        assert q.gap_to_optimal is None
        assert q.lower_bound >= 2
        assert "degree" in q.as_dict()

    def test_gini_even_distribution_is_zero(self):
        assert gini([3, 3, 3, 3]) == pytest.approx(0.0)

    def test_gini_degenerate_inputs(self):
        assert gini([]) == 0.0
        assert gini([0, 0, 0]) == 0.0

    def test_gini_extreme_concentration(self):
        # one node carries all the load: G -> (n-1)/n
        n = 10
        values = [0] * (n - 1) + [100]
        assert gini(values) == pytest.approx((n - 1) / n)

    def test_gini_order_invariant_and_bounded(self):
        values = [1, 5, 2, 9, 3]
        assert gini(values) == pytest.approx(gini(sorted(values, reverse=True)))
        assert 0.0 <= gini(values) < 1.0

    def test_degree_gap_helper(self):
        assert degree_gap(4, 3) == 1
        assert degree_gap(4, None) is None

    def test_degree_histogram_totals(self, wheel8):
        hist = degree_histogram_of_tree(wheel8, bfs_spanning_tree(wheel8))
        assert sum(hist.values()) == wheel8.number_of_nodes()
        assert hist[7] == 1


class TestConvergenceAnalysis:
    def _record(self, n, rounds, converged=True):
        return ConvergenceRecord(nodes=n, edges=2 * n, rounds=rounds,
                                 convergence_round=rounds if converged else None,
                                 steps=10 * rounds, messages=50 * rounds,
                                 converged=converged, tree_degree=3, family="test")

    def test_aggregate_records(self):
        records = [self._record(10, 20), self._record(10, 30)]
        agg = aggregate_records(records)
        assert agg["runs"] == 2
        assert agg["mean_rounds"] == 25
        assert agg["max_rounds"] == 30

    def test_aggregate_empty(self):
        assert aggregate_records([]) == {"runs": 0}

    def test_loglog_slope_recovers_exponent(self):
        sizes = [10, 20, 40, 80]
        values = [s ** 2 for s in sizes]
        assert abs(loglog_slope(sizes, values) - 2.0) < 1e-9

    def test_loglog_slope_requires_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([10], [1])

    def test_paper_round_bound_growth(self):
        assert paper_round_bound(20, 40) > paper_round_bound(10, 20)
        assert paper_round_bound(1, 1) == 0.0

    def test_record_as_dict(self):
        d = self._record(5, 7).as_dict()
        assert d["n"] == 5 and d["rounds"] == 7


class TestMemoryAnalysis:
    def test_bounds_monotone(self):
        assert state_bound_bits(100, 5) > state_bound_bits(10, 5)
        assert state_bound_bits(10, 8) > state_bound_bits(10, 2)
        assert message_bound_bits(100) > message_bound_bits(10)
        assert log_n_bits(1024) >= 11

    def test_memory_report_on_mdst_network(self, small_dense):
        net = build_mdst_network(small_dense, MDSTConfig())
        rep = memory_report(net)
        assert rep.nodes == small_dense.number_of_nodes()
        assert rep.max_state_bits > 0
        assert rep.state_within_bound
        d = rep.as_dict()
        assert d["state_within_bound"] is True


class TestTablesAndReports:
    ROWS = [{"family": "wheel", "n": 8, "degree": 2, "ok": True},
            {"family": "grid", "n": 9, "degree": 3, "ok": False}]

    def test_format_table_alignment(self):
        text = format_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "wheel" in text and "grid" in text
        assert len(text.splitlines()) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_csv(self):
        csv_text = format_csv(self.ROWS)
        assert csv_text.splitlines()[0] == "family,n,degree,ok"
        assert len(csv_text.strip().splitlines()) == 3

    def test_render_rows_switch(self):
        assert "," in render_rows(self.ROWS, csv_output=True)
        assert "|" in render_rows(self.ROWS, csv_output=False)

    def test_experiment_report_round_trip(self, tmp_path):
        report = ExperimentReport("E0", "unit-test report")
        report.extend(self.ROWS)
        report.add_row(family="torus", n=9, degree=3, ok=True)
        path = report.save(tmp_path / "e0.json")
        loaded = ExperimentReport.load(path)
        assert loaded.experiment == "E0"
        assert len(loaded.rows) == 3

    def test_experiment_report_grouping_and_aggregation(self):
        report = ExperimentReport("E0")
        report.extend(self.ROWS)
        groups = report.group_by("family")
        assert set(groups) == {"wheel", "grid"}
        means = report.aggregate("family", "degree")
        assert means["wheel"] == 2
        assert report.column("n") == [8, 9]

    def test_experiment_report_to_json(self):
        report = ExperimentReport("E0", metadata={"profile": "quick"})
        report.add_row(a=1)
        data = json.loads(report.to_json())
        assert data["metadata"]["profile"] == "quick"
