"""Tests for the PIF max-degree module and the global predicates."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import bfs_spanning_tree, make_graph, parent_map_from_edges, tree_degree
from repro.sim import Network, Simulator, SynchronousScheduler, corrupt_states
from repro.stabilization import (
    MaxDegreeAggregator,
    MaxDegreeProcess,
    max_degree_process_factory,
    pif_legitimacy,
)
from repro.stabilization.predicates import (
    distances_coherent,
    dmax_agrees_with_tree,
    extract_parent_map,
    has_unique_root,
    parent_map_is_spanning_tree,
    snapshot_tree_degree,
    tree_edges_from_snapshots,
)


def build_pif_network(graph):
    tree = bfs_spanning_tree(graph)
    parent = parent_map_from_edges(graph.nodes, tree)
    net = Network(graph, max_degree_process_factory(parent))
    expected = tree_degree(graph.nodes, tree)
    return net, expected


class TestAggregator:
    def test_sub_max_takes_children_into_account(self):
        sub = MaxDegreeAggregator.sub_max(
            own_degree=2, node_id=1,
            neighbor_parent={2: 1, 3: 5}, neighbor_sub_max={2: 7, 3: 9})
        assert sub == 7  # node 3 is not a child, its value is ignored

    def test_dmax_root_uses_own_submax(self):
        assert MaxDegreeAggregator.dmax(True, 5, 0, {}) == 5

    def test_dmax_nonroot_copies_parent(self):
        assert MaxDegreeAggregator.dmax(False, 5, 2, {2: 9}) == 9


class TestMaxDegreeProtocol:
    @pytest.mark.parametrize("family,n", [("wheel", 8), ("grid", 9), ("path", 7)])
    def test_converges_to_true_degree(self, family, n):
        graph = make_graph(family, n, seed=0)
        net, expected = build_pif_network(graph)
        sim = Simulator(net, legitimacy=pif_legitimacy(expected), stability_window=2)
        report = sim.run(max_rounds=200)
        assert report.converged
        assert all(s["dmax"] == expected for s in net.snapshots().values())

    def test_recovers_from_corrupted_aggregation_state(self):
        graph = make_graph("grid", 9, seed=0)
        net, expected = build_pif_network(graph)
        corrupt_states(net, np.random.default_rng(1), fraction=1.0)
        sim = Simulator(net, legitimacy=pif_legitimacy(expected), stability_window=2)
        assert sim.run(max_rounds=300).converged

    def test_state_bits_scale_with_degree(self):
        graph = make_graph("wheel", 8)
        net, _ = build_pif_network(graph)
        hub_bits = net.processes[0].state_bits(8)
        leaf_bits = net.processes[3].state_bits(8)
        assert hub_bits > leaf_bits


class TestGlobalPredicates:
    def _snapshots_for_tree(self, graph):
        tree = bfs_spanning_tree(graph)
        parent = parent_map_from_edges(graph.nodes, tree)
        dist = nx.single_source_shortest_path_length(graph, 0)
        degree = tree_degree(graph.nodes, tree)
        return {
            v: {"root": 0, "parent": parent[v], "distance": dist[v], "dmax": degree}
            for v in graph.nodes
        }, tree, degree

    def test_unique_root(self, small_dense):
        snaps, _, _ = self._snapshots_for_tree(small_dense)
        assert has_unique_root(snaps)
        snaps[3]["root"] = 99
        assert not has_unique_root(snaps)

    def test_parent_map_extraction_and_tree_check(self, small_dense):
        snaps, tree, _ = self._snapshots_for_tree(small_dense)
        net = Network(small_dense, max_degree_process_factory(
            parent_map_from_edges(small_dense.nodes, tree)))
        assert extract_parent_map(snaps)[0] == 0
        assert parent_map_is_spanning_tree(net, snaps)
        assert tree_edges_from_snapshots(net, snaps) == tree

    def test_parent_cycle_detected(self, small_dense):
        snaps, _, _ = self._snapshots_for_tree(small_dense)
        net = Network(small_dense, max_degree_process_factory(
            parent_map_from_edges(small_dense.nodes, bfs_spanning_tree(small_dense))))
        a, b = sorted(small_dense.edges())[0]
        snaps[a]["parent"] = b
        snaps[b]["parent"] = a
        assert not parent_map_is_spanning_tree(net, snaps)

    def test_distances_coherent(self, small_dense):
        snaps, _, _ = self._snapshots_for_tree(small_dense)
        assert distances_coherent(snaps)
        snaps[4]["distance"] = 99
        assert not distances_coherent(snaps)

    def test_snapshot_tree_degree_and_dmax_agreement(self, wheel8):
        snaps, tree, degree = self._snapshots_for_tree(wheel8)
        net = Network(wheel8, max_degree_process_factory(
            parent_map_from_edges(wheel8.nodes, tree)))
        assert snapshot_tree_degree(net, snaps) == degree
        assert dmax_agrees_with_tree(net, snaps)
        snaps[2]["dmax"] = degree + 1
        assert not dmax_agrees_with_tree(net, snaps)
