"""Integration tests of the full message-passing MDST protocol."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import exact_mdst_degree
from repro.core import (
    MDSTConfig,
    MDSTNode,
    ReferenceMDST,
    build_mdst_network,
    initialize_from_tree,
    initialize_isolated,
    run_mdst,
)
from repro.exceptions import ConfigurationError
from repro.graphs import bfs_spanning_tree, is_spanning_tree, make_graph, tree_degree
from repro.sim import FaultPlan


class TestConfig:
    def test_invalid_initial_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MDSTConfig(initial="bogus").validate()

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            MDSTConfig(max_rounds=0).validate()

    def test_network_construction_builds_mdst_nodes(self, small_dense):
        net = build_mdst_network(small_dense, MDSTConfig())
        assert all(isinstance(p, MDSTNode) for p in net.processes.values())

    def test_initialize_from_tree_is_coherent(self, small_dense):
        net = build_mdst_network(small_dense, MDSTConfig())
        tree = bfs_spanning_tree(small_dense)
        initialize_from_tree(net, tree)
        snaps = net.snapshots()
        k = tree_degree(small_dense.nodes, tree)
        assert all(s["root"] == 0 for s in snaps.values())
        assert all(s["dmax"] == k for s in snaps.values())

    def test_initialize_isolated(self, small_dense):
        net = build_mdst_network(small_dense, MDSTConfig())
        initialize_isolated(net)
        snaps = net.snapshots()
        assert all(s["root"] == v for v, s in snaps.items())


class TestEndToEnd:
    @pytest.mark.parametrize("family,n,seed", [
        ("cycle", 7, 0), ("wheel", 8, 0), ("complete", 7, 0),
        ("two_hub", 7, 0), ("ring_with_chords", 9, 1),
        ("erdos_renyi_dense", 9, 2), ("hard_hub", 8, 0),
    ])
    def test_converges_to_within_one_of_optimal_from_bfs_tree(self, family, n, seed):
        g = make_graph(family, n, seed=seed)
        result = run_mdst(g, MDSTConfig(seed=seed, initial="bfs_tree", max_rounds=2500))
        assert result.converged, f"{family}: no convergence"
        assert is_spanning_tree(g, result.tree_edges)
        optimal = exact_mdst_degree(g)
        assert optimal <= result.tree_degree <= optimal + 1

    def test_matches_reference_engine_degree(self):
        """Differential test: protocol and reference engine reach trees of the
        same maximum degree (both are fixpoints of the same rule)."""
        for family, n, seed in [("wheel", 8, 0), ("complete", 7, 0),
                                ("erdos_renyi_dense", 9, 4)]:
            g = make_graph(family, n, seed=seed)
            ref = ReferenceMDST(g).run()
            proto = run_mdst(g, MDSTConfig(seed=seed, initial="bfs_tree",
                                           max_rounds=2500))
            assert proto.converged
            assert abs(proto.tree_degree - ref.final_degree) <= 1
            optimal = exact_mdst_degree(g)
            assert proto.tree_degree <= optimal + 1
            assert ref.final_degree <= optimal + 1

    def test_star_graph_no_improvement_needed(self):
        g = make_graph("star", 7)
        result = run_mdst(g, MDSTConfig(seed=0, initial="bfs_tree", max_rounds=300))
        assert result.converged
        assert result.tree_degree == g.number_of_nodes() - 1

    def test_explicit_initial_tree_argument(self, wheel8):
        tree = bfs_spanning_tree(wheel8)
        result = run_mdst(wheel8, MDSTConfig(seed=0, max_rounds=2000),
                          initial_tree=tree)
        assert result.converged
        assert result.tree_degree <= 3

    def test_isolated_cold_start(self):
        g = make_graph("wheel", 8)
        result = run_mdst(g, MDSTConfig(seed=1, initial="isolated", max_rounds=2000))
        assert result.converged
        assert result.tree_degree <= exact_mdst_degree(g) + 1

    def test_run_result_contains_statistics(self, wheel8):
        result = run_mdst(wheel8, MDSTConfig(seed=0, initial="bfs_tree",
                                             max_rounds=2000))
        assert result.run.messages > 0
        assert result.run.extra["max_message_bits"] > 0
        assert result.run.extra["max_state_bits"] > 0
        by_type = result.run.extra["deliveries_by_type"]
        assert by_type.get("MInfo", 0) > 0
        assert by_type.get("Search", 0) > 0
        assert sum(s["searches_initiated"] for s in result.node_stats.values()) > 0

    def test_tree_snapshot_exposed_when_converged(self, wheel8):
        result = run_mdst(wheel8, MDSTConfig(seed=0, initial="bfs_tree",
                                             max_rounds=2000))
        assert result.run.tree is not None
        assert result.run.tree.degree() == result.tree_degree

    def test_reduction_can_be_disabled(self, wheel8):
        result = run_mdst(wheel8, MDSTConfig(seed=0, initial="isolated",
                                             enable_reduction=False, max_rounds=500))
        assert result.converged
        # without the reduction layer the wheel keeps its star-shaped BFS tree
        assert result.tree_degree == 7


class TestSelfStabilization:
    @pytest.mark.parametrize("scheduler", ["synchronous", "random"])
    def test_converges_from_fully_corrupted_state(self, scheduler):
        g = make_graph("wheel", 8)
        result = run_mdst(g, MDSTConfig(seed=3, initial="corrupted",
                                        scheduler=scheduler, max_rounds=3000))
        assert result.converged
        assert is_spanning_tree(g, result.tree_edges)
        assert result.tree_degree <= exact_mdst_degree(g) + 1

    def test_recovers_from_mid_run_fault(self):
        g = make_graph("erdos_renyi_dense", 9, seed=5)
        plan = FaultPlan().add(round_index=40, node_fraction=0.5)
        result = run_mdst(g, MDSTConfig(seed=5, initial="bfs_tree", max_rounds=3000),
                          fault_plan=plan)
        assert result.converged
        assert is_spanning_tree(g, result.tree_edges)

    def test_adversarial_scheduler_still_converges(self):
        g = make_graph("wheel", 7)
        slow = [(0, 1), (1, 0)]
        result = run_mdst(g, MDSTConfig(seed=2, initial="bfs_tree",
                                        scheduler="adversarial", slow_links=slow,
                                        max_delay=3, max_rounds=3000))
        assert result.converged
        assert result.tree_degree <= exact_mdst_degree(g) + 1
