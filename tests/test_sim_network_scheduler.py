"""Tests for repro.sim.network, scheduler, node and simulator basics.

These use a tiny hand-written protocol (token counting / echo) so that the
simulator machinery is exercised independently of the MDST algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ProtocolError, SchedulerError
from repro.sim import (
    AdversarialScheduler,
    Message,
    Network,
    Process,
    RandomAsyncScheduler,
    Simulator,
    SynchronousScheduler,
    TraceRecorder,
    make_scheduler,
)


@dataclass(frozen=True)
class Hello(Message):
    hops: int = 0


class EchoProcess(Process):
    """Counts greetings; on timeout greets all neighbours once per round."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.received = 0
        self.greeted = 0

    def on_timeout(self):
        self.greeted += 1
        self.broadcast(Hello(hops=0))

    def on_message(self, sender, message):
        if isinstance(message, Hello):
            self.received += 1

    def corrupt(self, rng):
        self.received = int(rng.integers(0, 100))

    def state_bits(self, network_size):
        return 32

    def snapshot(self):
        return {"received": self.received, "greeted": self.greeted}


def echo_factory(node_id, neighbors):
    return EchoProcess(node_id, neighbors)


@pytest.fixture
def triangle_net():
    return Network(nx.cycle_graph(3), echo_factory)


class TestNetwork:
    def test_construction(self, triangle_net):
        assert len(triangle_net) == 3
        assert triangle_net.m == 3
        assert len(triangle_net.channels) == 6  # two directed per edge

    def test_neighbors_sorted(self, triangle_net):
        assert triangle_net.neighbors(0) == (1, 2)

    def test_send_to_non_neighbor_raises(self):
        g = nx.path_graph(3)
        net = Network(g, echo_factory)
        with pytest.raises(ProtocolError):
            net.processes[0].send(2, Hello())

    def test_flush_outbox_moves_messages(self, triangle_net):
        proc = triangle_net.processes[0]
        proc.on_timeout()
        moved = triangle_net.flush_outbox(0)
        assert moved == 2
        assert triangle_net.pending_messages() == 2

    def test_quiescence(self, triangle_net):
        assert triangle_net.is_quiescent()
        triangle_net.processes[1].on_timeout()
        assert not triangle_net.is_quiescent()

    def test_state_and_message_accounting(self, triangle_net):
        assert triangle_net.max_state_bits() == 32
        assert triangle_net.total_state_bits() == 96
        assert triangle_net.max_graph_degree() == 2

    def test_snapshots(self, triangle_net):
        snaps = triangle_net.snapshots()
        assert set(snaps) == {0, 1, 2}
        assert snaps[0]["received"] == 0


class TestSchedulers:
    @pytest.mark.parametrize("scheduler", [SynchronousScheduler(),
                                           RandomAsyncScheduler(seed=1),
                                           AdversarialScheduler(slow_links=[(0, 1)],
                                                                max_delay=2, seed=1)])
    def test_one_round_gives_every_node_a_timeout(self, scheduler):
        net = Network(nx.cycle_graph(4), echo_factory)
        stats = scheduler.run_round(net)
        assert stats.timeouts == 4
        assert stats.steps >= 4

    def test_synchronous_delivers_previous_round_messages(self):
        net = Network(nx.cycle_graph(4), echo_factory)
        sched = SynchronousScheduler()
        sched.run_round(net)   # round 1: everyone greets
        sched.run_round(net)   # round 2: greetings delivered
        assert all(net.processes[v].received == 2 for v in net.node_ids)

    def test_random_scheduler_is_seeded(self):
        def run(seed):
            net = Network(nx.cycle_graph(5), echo_factory)
            sched = RandomAsyncScheduler(seed=seed)
            trace = TraceRecorder(keep_events=True, network_size=5)
            trace.start_round(0)
            sched.run_round(net, trace)
            return [(e.kind, e.node, e.sender) for e in trace.events]
        assert run(3) == run(3)

    def test_adversarial_scheduler_delays_slow_link(self):
        net = Network(nx.path_graph(2), echo_factory)
        sched = AdversarialScheduler(slow_links=[(0, 1)], max_delay=4)
        for _ in range(3):
            sched.run_round(net)
        # messages from 0 to 1 were withheld: node 1 received fewer than node 0
        assert net.processes[1].received < net.processes[0].received
        # ... but the backlog is released within max_delay rounds (fairness)
        for _ in range(4):
            sched.run_round(net)
        assert net.processes[1].received > 0

    def test_adversarial_requires_positive_delay(self):
        with pytest.raises(SchedulerError):
            AdversarialScheduler(max_delay=0)

    def test_make_scheduler_factory(self):
        assert isinstance(make_scheduler("synchronous"), SynchronousScheduler)
        assert isinstance(make_scheduler("random", seed=1), RandomAsyncScheduler)
        assert isinstance(make_scheduler("adversarial"), AdversarialScheduler)
        with pytest.raises(SchedulerError):
            make_scheduler("no_such_daemon")


class TestSimulator:
    def test_runs_fixed_rounds_without_legitimacy(self):
        net = Network(nx.cycle_graph(4), echo_factory)
        sim = Simulator(net)
        report = sim.run(max_rounds=5)
        assert report.rounds == 5
        assert report.converged  # vacuously true without a predicate

    def test_convergence_with_predicate(self):
        net = Network(nx.cycle_graph(4), echo_factory)
        legit = lambda n: all(p.received >= 4 for p in n.processes.values())
        sim = Simulator(net, legitimacy=legit, stability_window=2)
        report = sim.run(max_rounds=50)
        assert report.converged
        assert report.convergence_round is not None
        assert report.convergence_round < 50

    def test_budget_exhaustion_reports_not_converged(self):
        net = Network(nx.cycle_graph(4), echo_factory)
        sim = Simulator(net, legitimacy=lambda n: False)
        report = sim.run(max_rounds=3)
        assert not report.converged

    def test_invariant_monitor_raises(self):
        from repro.exceptions import SimulationError
        net = Network(nx.cycle_graph(3), echo_factory)
        sim = Simulator(net, invariants=[("never", lambda n: False)])
        with pytest.raises(SimulationError):
            sim.step_round()

    def test_trace_records_message_types(self):
        net = Network(nx.cycle_graph(3), echo_factory)
        trace = TraceRecorder(keep_events=True, network_size=3)
        sim = Simulator(net, trace=trace)
        sim.run(max_rounds=3)
        assert trace.deliveries_by_type().get("Hello", 0) > 0
        assert trace.total_timeouts == 9
        assert any(e.kind == "deliver" for e in trace.events)
