"""Property-based tests (hypothesis) on the core invariants.

Strategies generate random connected graphs and random spanning trees; the
properties check the structural invariants the whole system rests on:

* every generated graph is simple and connected, every spanning-tree helper
  returns a valid spanning tree;
* fundamental cycles are consistent with their defining non-tree edge;
* an edge swap along a fundamental cycle always yields a spanning tree;
* the improvement-chain planner preserves the spanning-tree property and the
  monotonicity of the maximum degree;
* the reference engine's fixpoint satisfies the Δ*+1 guarantee on instances
  small enough for the exact solver;
* message size estimation is monotone in the path length (O(n log n) claim).
"""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.baselines import exact_mdst_degree
from repro.core import ReferenceMDST
from repro.core.improvement import TreeIndex, apply_moves, plan_improvement
from repro.core.messages import Search
from repro.graphs import (
    bfs_spanning_tree,
    fundamental_cycle,
    is_spanning_tree,
    non_tree_edges,
    random_spanning_tree,
    swap_edges,
    tree_degree,
    tree_degrees,
)

SETTINGS = settings(max_examples=40, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=12):
    """Random connected simple graph: random tree + random extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    # random tree via random parent for each node (Prüfer-like, always a tree)
    parents = [draw(st.integers(0, i - 1)) if i > 0 else 0 for i in range(n)]
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(1, n):
        g.add_edge(i, parents[i])
    extra = draw(st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                          max_size=2 * n))
    for u, v in extra:
        if u != v:
            g.add_edge(u, v)
    return g


@SETTINGS
@given(connected_graphs())
def test_generated_graphs_are_connected_and_simple(g):
    assert nx.is_connected(g)
    assert not any(u == v for u, v in g.edges)


@SETTINGS
@given(connected_graphs(), st.integers(0, 2**31 - 1))
def test_spanning_tree_helpers_return_valid_trees(g, seed):
    for edges in (bfs_spanning_tree(g), random_spanning_tree(g, seed=seed)):
        assert is_spanning_tree(g, edges)
        degrees = tree_degrees(g.nodes, edges)
        assert sum(degrees.values()) == 2 * (g.number_of_nodes() - 1)
        assert tree_degree(g.nodes, edges) == max(degrees.values())


@SETTINGS
@given(connected_graphs())
def test_fundamental_cycles_and_swaps(g):
    tree = bfs_spanning_tree(g)
    for e in sorted(non_tree_edges(g, tree))[:4]:
        cycle = fundamental_cycle(tree, e)
        assert cycle[0] == e[0] and cycle[-1] == e[1]
        assert len(set(cycle)) == len(cycle) >= 2
        remove = tuple(sorted((cycle[0], cycle[1])))
        new_tree = swap_edges(tree, add=e, remove=remove)
        assert is_spanning_tree(g, new_tree)


@SETTINGS
@given(connected_graphs())
def test_improvement_chains_preserve_tree_and_never_increase_degree(g):
    tree = bfs_spanning_tree(g)
    before = tree_degree(g.nodes, tree)
    plan = plan_improvement(g, tree)
    if plan is None:
        return
    new_tree = apply_moves(g, tree, plan)
    assert is_spanning_tree(g, new_tree)
    after = tree_degree(g.nodes, new_tree)
    assert after <= before
    # no node may exceed the previous maximum degree as a side effect
    assert max(tree_degrees(g.nodes, new_tree).values()) <= before


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_graphs(min_nodes=4, max_nodes=9))
def test_reference_engine_fixpoint_is_within_one_of_optimal(g):
    result = ReferenceMDST(g).run()
    assert is_spanning_tree(g, result.tree_edges)
    optimal = exact_mdst_degree(g)
    assert optimal <= result.final_degree <= optimal + 1
    assert plan_improvement(g, result.tree_edges) is None


@SETTINGS
@given(st.integers(2, 200), st.integers(2, 64))
def test_search_message_size_is_o_n_log_n(path_len, n_bits_base):
    n = max(path_len + 1, n_bits_base)
    msg = Search(init_edge=(1, 0), idblock=None,
                 path=tuple((i, 2) for i in range(path_len)),
                 visited=tuple(range(path_len)))
    bits = msg.size_bits(n)
    from repro.analysis import message_bound_bits
    assert bits <= message_bound_bits(n)


@SETTINGS
@given(connected_graphs())
def test_tree_index_degree_bookkeeping_consistent(g):
    tree = bfs_spanning_tree(g)
    index = TreeIndex(g, tree)
    recomputed = tree_degrees(g.nodes, index.tree_edges)
    assert index.degree == recomputed
    plan = plan_improvement(g, tree)
    if plan:
        for move in plan:
            index.apply(move)
        assert index.degree == tree_degrees(g.nodes, index.tree_edges)
