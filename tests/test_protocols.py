"""Tests for the unified protocol registry (:mod:`repro.protocols`).

Covers the registry contract (lazy built-ins, lookup errors, duplicate
guard), the adapter capability gates, the equivalence of
``run_protocol(protocol="mdst")`` with the historical :func:`run_mdst`
entry point, convergence of every registered protocol from clean and
corrupted starts, the live-topology delta hooks of the standalone
processes, and spanning-tree re-convergence under random churn plans on
the three named graph families.
"""

from __future__ import annotations

import pytest

from repro.core import MDSTConfig, run_mdst
from repro.exceptions import ConfigurationError
from repro.graphs import make_graph
from repro.protocols import (
    PROTOCOLS,
    ProtocolAdapter,
    ProtocolRunConfig,
    get_protocol,
    protocol_names,
    register_protocol,
    run_protocol,
)
from repro.sim.faults import ChurnPlan, random_churn_plan
from repro.stabilization.pif import MaxDegreeProcess
from repro.stabilization.spanning_tree import SpanningTreeProcess, st_legitimacy

CHURN_FAMILIES = ("erdos_renyi_sparse", "random_geometric", "barabasi_albert")


class TestRegistry:
    def test_builtins_registered(self):
        assert protocol_names() == ["mdst", "pif_max_degree", "spanning_tree"]
        assert sorted(PROTOCOLS) == protocol_names()
        assert len(PROTOCOLS) == 3
        assert "mdst" in PROTOCOLS

    def test_get_protocol_returns_adapter(self):
        adapter = get_protocol("spanning_tree")
        assert isinstance(adapter, ProtocolAdapter)
        assert adapter.name == "spanning_tree"
        assert PROTOCOLS["spanning_tree"] is adapter

    def test_unknown_name_lists_registry(self):
        with pytest.raises(ConfigurationError, match="registered protocols"):
            get_protocol("bogus")

    def test_capability_flags(self):
        assert PROTOCOLS["mdst"].supports_churn
        assert PROTOCOLS["spanning_tree"].supports_churn
        assert not PROTOCOLS["pif_max_degree"].supports_churn
        assert PROTOCOLS["mdst"].supports_initial_tree
        assert not PROTOCOLS["spanning_tree"].supports_initial_tree
        assert all(PROTOCOLS[name].supports_faults for name in PROTOCOLS)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_protocol(PROTOCOLS["mdst"])

    def test_adapter_initial_policies(self):
        assert PROTOCOLS["mdst"].initial_policies == (
            "bfs_tree", "random_tree", "isolated", "corrupted")
        for name in ("spanning_tree", "pif_max_degree"):
            assert PROTOCOLS[name].initial_policies == ("isolated", "corrupted")


class TestConfigValidation:
    def test_unsupported_initial_policy_rejected(self):
        graph = make_graph("wheel", 8, seed=1)
        config = ProtocolRunConfig(protocol="spanning_tree", initial="bfs_tree")
        with pytest.raises(ConfigurationError, match="initial policies"):
            run_protocol(graph, config)

    def test_generic_field_validation(self):
        graph = make_graph("wheel", 8, seed=1)
        with pytest.raises(ConfigurationError, match="max_rounds"):
            run_protocol(graph, ProtocolRunConfig(max_rounds=0))
        with pytest.raises(ConfigurationError, match="stability_window"):
            run_protocol(graph, ProtocolRunConfig(stability_window=0))

    def test_initial_tree_requires_capability(self):
        graph = make_graph("wheel", 8, seed=1)
        tree = [(0, v) for v in range(1, 8)]
        config = ProtocolRunConfig(protocol="spanning_tree", max_rounds=100)
        with pytest.raises(ConfigurationError, match="initial tree"):
            run_protocol(graph, config, initial_tree=tree)

    def test_churn_requires_capability(self):
        graph = make_graph("wheel", 8, seed=1)
        plan = ChurnPlan().remove_edge(10, 1, 3)
        config = ProtocolRunConfig(protocol="pif_max_degree", max_rounds=100)
        with pytest.raises(ConfigurationError, match="churn"):
            run_protocol(graph, config, churn_plan=plan)


class TestMDSTEquivalence:
    """run_mdst and run_protocol("mdst") are one code path: same outputs."""

    @pytest.mark.parametrize("initial", ["isolated", "corrupted"])
    def test_results_identical(self, initial):
        graph = make_graph("erdos_renyi_sparse", 12, seed=4)
        mdst_cfg = MDSTConfig(seed=4, initial=initial, max_rounds=3000)
        a = run_mdst(graph, mdst_cfg)
        b = run_protocol(graph, mdst_cfg.protocol_run_config())
        assert b.protocol == "mdst"
        assert a.converged == b.converged
        assert a.rounds == b.rounds
        assert a.run.steps == b.run.steps
        assert a.run.messages == b.run.messages
        assert a.tree_degree == b.tree_degree
        assert a.tree_edges == b.tree_edges
        assert a.run.extra == b.run.extra
        assert a.node_stats == b.node_stats

    def test_initial_tree_round_trips(self):
        graph = make_graph("wheel", 8, seed=1)
        tree = [(0, v) for v in range(1, 8)]
        a = run_mdst(graph, MDSTConfig(seed=1, max_rounds=2000),
                     initial_tree=tree)
        b = run_protocol(graph,
                         MDSTConfig(seed=1, max_rounds=2000).protocol_run_config(),
                         initial_tree=tree)
        assert a.converged and b.converged
        assert a.tree_edges == b.tree_edges


class TestProtocolRuns:
    @pytest.mark.parametrize("protocol", ["spanning_tree", "pif_max_degree"])
    @pytest.mark.parametrize("initial", ["isolated", "corrupted"])
    def test_substrate_protocols_converge(self, protocol, initial):
        graph = make_graph("erdos_renyi_sparse", 12, seed=2)
        result = run_protocol(graph, ProtocolRunConfig(
            protocol=protocol, seed=2, initial=initial, max_rounds=800))
        assert result.protocol == protocol
        assert result.converged
        assert result.report.closure_violations == []

    def test_spanning_tree_matches_direct_harness(self):
        """The registry path reproduces what the hand-rolled harness finds."""
        graph = make_graph("random_geometric", 12, seed=3)
        result = run_protocol(graph, ProtocolRunConfig(
            protocol="spanning_tree", seed=3, max_rounds=400))
        assert result.converged
        # the induced tree is rooted at the minimum id
        assert result.run.tree is not None
        parent = result.run.tree.parent
        assert parent[min(graph.nodes)] == min(graph.nodes)
        assert len(result.tree_edges) == graph.number_of_nodes() - 1

    def test_pif_reports_expected_dmax(self):
        graph = make_graph("wheel", 10, seed=1)
        result = run_protocol(graph, ProtocolRunConfig(
            protocol="pif_max_degree", seed=1, max_rounds=400))
        assert result.converged
        expected = result.run.extra["expected_dmax"]
        assert expected >= 1
        assert result.tree_degree == expected

    def test_mdst_fault_plan_through_generic_runner(self):
        from repro.sim import FaultPlan
        graph = make_graph("wheel", 8, seed=1)
        plan = FaultPlan().add(round_index=30, node_fraction=0.5)
        result = run_protocol(
            graph, ProtocolRunConfig(seed=1, max_rounds=3000), fault_plan=plan)
        assert result.converged
        assert result.run.extra["convergence_round"] > 30

    @pytest.mark.parametrize("protocol", ["spanning_tree", "pif_max_degree"])
    def test_fault_plan_on_substrate_protocols(self, protocol):
        from repro.sim import FaultPlan
        graph = make_graph("erdos_renyi_sparse", 10, seed=6)
        plan = FaultPlan().add(round_index=20, node_fraction=1.0)
        result = run_protocol(graph, ProtocolRunConfig(
            protocol=protocol, seed=6, max_rounds=800), fault_plan=plan)
        assert result.converged
        assert result.run.extra["convergence_round"] > 20


class TestSpanningTreeDeltaHooks:
    """Satellite: the standalone processes survive live neighbour deltas."""

    def test_add_neighbor_creates_unheard_view(self):
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.add_neighbor(3)
        assert proc.neighbors == (1, 2, 3)
        assert 3 in proc.view and not proc.view[3].heard

    def test_remove_neighbor_evicts_view(self):
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.remove_neighbor(2)
        assert proc.neighbors == (1,)
        assert 2 not in proc.view

    def test_losing_parent_resets_to_own_root(self):
        from repro.stabilization.spanning_tree import STInfo
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.on_message(1, STInfo(root=0, parent=1, distance=2))
        assert proc.vars.parent == 1 and proc.vars.root == 0
        proc.remove_neighbor(1)
        assert proc.vars.root == 4 and proc.vars.parent == 4
        assert proc.vars.distance == 0

    def test_losing_non_parent_keeps_tree_state(self):
        from repro.stabilization.spanning_tree import STInfo
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.on_message(1, STInfo(root=0, parent=1, distance=2))
        proc.remove_neighbor(2)
        assert proc.vars.root == 0 and proc.vars.parent == 1

    def test_stale_view_cannot_win_r1_after_removal(self):
        from repro.stabilization.spanning_tree import STInfo
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.on_message(2, STInfo(root=-3, parent=2, distance=1))
        assert proc.vars.root == -3
        proc.remove_neighbor(2)
        # the eviction re-runs the rules: no neighbour advertises -3 anymore
        assert proc.vars.root == 4 and proc.vars.parent == 4


class TestMaxDegreeDeltaHooks:
    def _proc(self):
        # star: 0 is the root, 1/2/3 its children
        parent_map = {0: 0, 1: 0, 2: 0, 3: 0}
        return MaxDegreeProcess(0, [1, 2, 3], parent_map)

    def test_add_neighbor_starts_as_non_tree(self):
        proc = self._proc()
        proc.add_neighbor(5)
        assert 5 in proc.view_parent and proc.view_parent[5] == 5
        assert proc.degree == 3  # tree degree unchanged until 5 claims us

    def test_remove_tree_neighbor_shrinks_degree(self):
        proc = self._proc()
        assert proc.degree == 3
        proc.remove_neighbor(2)
        assert proc.degree == 2
        assert 2 not in proc.view_parent
        assert 2 not in proc.view_sub_max and 2 not in proc.view_dmax
        assert proc.sub_max >= proc.degree

    def test_losing_parent_promotes_to_fragment_root(self):
        parent_map = {0: 0, 1: 0, 2: 1}
        proc = MaxDegreeProcess(1, [0, 2], parent_map)
        assert proc.parent == 0
        proc.remove_neighbor(0)
        assert proc.parent == 1  # self-parented: root of the fragment
        assert proc.degree == 1

    def test_dead_subtree_cannot_inflate_sub_max(self):
        from repro.stabilization.pif import DegreeInfo
        proc = self._proc()
        proc.on_message(2, DegreeInfo(parent=0, degree=1, sub_max=99, dmax=99))
        assert proc.sub_max == 99
        proc.remove_neighbor(2)
        assert proc.sub_max < 99


class TestCrossProtocolChurn:
    """Satellite: spanning-tree re-convergence under random churn plans on
    the three named graph families (mirroring the MDST churn coverage)."""

    @pytest.mark.parametrize("family", CHURN_FAMILIES)
    def test_spanning_tree_reconverges_after_churn(self, family):
        graph = make_graph(family, 16, seed=9)
        plan = random_churn_plan(graph, events=5, start_round=20, period=10,
                                 seed=13)
        config = ProtocolRunConfig(
            protocol="spanning_tree", seed=9, max_rounds=2000,
            n_upper=graph.number_of_nodes() + 6)
        result = run_protocol(graph, config, churn_plan=plan)
        assert result.converged, f"no re-convergence on {family}"
        assert result.run.extra["churn_applied"] >= 1
        assert result.final_graph is not None
        # the final tree spans the *mutated* graph
        assert len(result.tree_edges) == result.final_graph.number_of_nodes() - 1
        for a, b in result.tree_edges:
            assert result.final_graph.has_edge(a, b)

    def test_min_id_departure_reroots_the_tree(self):
        graph = make_graph("erdos_renyi_sparse", 12, seed=5)
        plan = ChurnPlan().remove_node(25, min(graph.nodes))
        config = ProtocolRunConfig(
            protocol="spanning_tree", seed=5, max_rounds=2000,
            n_upper=graph.number_of_nodes() + 2)
        result = run_protocol(graph, config, churn_plan=plan)
        assert result.converged
        survivors = sorted(result.final_graph.nodes)
        new_root = min(survivors)
        assert result.run.tree is not None
        assert result.run.tree.parent[new_root] == new_root

    def test_node_join_is_adopted(self):
        graph = make_graph("random_geometric", 12, seed=7)
        newcomer = max(graph.nodes) + 1
        plan = ChurnPlan().add_node(30, newcomer,
                                    attach=sorted(graph.nodes)[:2])
        config = ProtocolRunConfig(
            protocol="spanning_tree", seed=7, max_rounds=2000,
            n_upper=graph.number_of_nodes() + 3)
        result = run_protocol(graph, config, churn_plan=plan)
        assert result.converged
        assert newcomer in result.final_graph.nodes
        assert any(newcomer in edge for edge in result.tree_edges)


class TestThirdPartyAdapter:
    """The extension story: a new protocol is a small adapter subclass."""

    def test_register_and_run_a_custom_adapter(self):
        from repro.sim.network import Network
        from repro.stabilization.spanning_tree import (
            spanning_tree_process_factory,
        )

        class TightBoundSpanningTree(ProtocolAdapter):
            name = "st_tight"
            description = "spanning tree with an exact distance bound"
            initial_policies = ("isolated",)
            supports_churn = False

            def build_network(self, graph, config):
                return Network(graph, spanning_tree_process_factory(
                    n_upper=graph.number_of_nodes()))

            def prepare_initial(self, network, config, rng):
                pass

            def make_legitimacy(self, network, config):
                return st_legitimacy

        adapter = TightBoundSpanningTree()
        try:
            register_protocol(adapter)
            assert "st_tight" in protocol_names()
            graph = make_graph("cycle", 8, seed=0)
            result = run_protocol(graph, ProtocolRunConfig(
                protocol="st_tight", seed=0, max_rounds=400))
            assert result.converged
        finally:
            # keep the global registry pristine for other tests
            from repro.protocols import registry as _registry
            _registry._ADAPTERS.pop("st_tight", None)
