"""Smoke tests for the ``repro`` CLI.

Most cases drive :func:`repro.runtime.cli.main` in-process with an explicit
``argv`` (fast, assertable); one case goes through a real subprocess to
prove ``python -m repro.runtime.cli`` works as installed.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.cli import build_parser, main

SRC = Path(__file__).resolve().parents[1] / "src"

SWEEP_ARGS = ["sweep", "--families", "wheel", "--sizes", "8",
              "--repetitions", "2", "--master-seed", "7",
              "--max-rounds", "2000"]


def test_parser_has_all_subcommands():
    parser = build_parser()
    actions = [a for a in parser._actions if hasattr(a, "choices") and a.choices]
    assert set(actions[0].choices) == {"run", "sweep", "bench", "report",
                                       "protocols", "graphs"}


def test_run_prints_result_table(capsys):
    assert main(["run", "--family", "wheel", "--n", "8", "--seed", "3",
                 "--max-rounds", "2000"]) == 0
    out = capsys.readouterr().out
    assert "tree_degree" in out and "wheel" in out


def test_run_json_output_is_parseable(capsys):
    assert main(["run", "--family", "wheel", "--n", "8", "--seed", "3",
                 "--max-rounds", "2000", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spec"]["family"] == "wheel"
    assert data["row"]["converged"] is True


def test_sweep_workers_byte_identical_and_cache_short_circuits(tmp_path, capsys):
    """The acceptance criterion: N workers == 1 worker byte-for-byte, and a
    repeat invocation completes from cache without re-running simulations."""
    out1, out4 = tmp_path / "w1.json", tmp_path / "w4.json"
    cache_dir = str(tmp_path / "cache")
    assert main(SWEEP_ARGS + ["--workers", "1", "--output", str(out1)]) == 0
    assert main(SWEEP_ARGS + ["--workers", "4", "--cache-dir", cache_dir,
                              "--output", str(out4)]) == 0
    assert out1.read_bytes() == out4.read_bytes()
    capsys.readouterr()
    # repeat with the cache: everything resolves without execution
    out4b = tmp_path / "w4b.json"
    assert main(SWEEP_ARGS + ["--workers", "4", "--cache-dir", cache_dir,
                              "--output", str(out4b)]) == 0
    stderr = capsys.readouterr().err
    assert "executed 0" in stderr and "cache hits 2" in stderr
    assert out4b.read_bytes() == out1.read_bytes()


def test_run_unknown_family_lists_registered_names(capsys):
    assert main(["run", "--family", "bogus", "--n", "8"]) == 1
    err = capsys.readouterr().err
    assert "bogus" in err
    assert "registered families" in err
    assert "erdos_renyi_sparse" in err and "wheel" in err


def test_sweep_unknown_family_fails_before_any_run(capsys):
    assert main(["sweep", "--families", "wheel,bogus,phantom",
                 "--sizes", "8"]) == 1
    captured = capsys.readouterr()
    assert "bogus" in captured.err and "phantom" in captured.err
    assert "registered families" in captured.err
    # validation fires before the engine: no "sweep: N runs" banner
    assert "sweep:" not in captured.err


def test_run_churn_task_via_cli(capsys):
    assert main(["run", "--task", "churn", "--family", "erdos_renyi_sparse",
                 "--n", "12", "--seed", "5", "--max-rounds", "4000",
                 "--churn-rate", "0.05", "--churn-start", "60",
                 "--churn-events", "3", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spec"]["task"] == "churn"
    assert data["row"]["churn_applied"] + data["row"]["churn_skipped"] == 3
    assert data["row"]["converged"] is True


def test_run_rejects_churn_flags_without_churn_task(capsys):
    assert main(["run", "--family", "wheel", "--n", "8",
                 "--churn-rate", "0.1", "--churn-events", "3"]) == 1
    assert "--task churn" in capsys.readouterr().err


def test_protocols_subcommand_lists_registry(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    for name in ("mdst", "spanning_tree", "pif_max_degree"):
        assert name in out
    assert "churn" in out and "initial policies" in out
    assert "array" in out


def test_protocols_subcommand_json(capsys):
    assert main(["protocols", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    names = {row["protocol"] for row in rows}
    assert {"mdst", "spanning_tree", "pif_max_degree"} <= names
    by_name = {row["protocol"]: row for row in rows}
    assert by_name["mdst"]["churn"] == "yes"
    assert by_name["pif_max_degree"]["churn"] == "no"
    for name in ("mdst", "spanning_tree", "pif_max_degree"):
        assert by_name[name]["lossy"] == "yes"
        assert by_name[name]["crash"] == "yes"
        assert by_name[name]["byzantine"] == "yes"
        assert by_name[name]["array"] == "yes"


def test_sweep_array_backend_fails_fast_for_non_capable_protocol(
        capsys, monkeypatch):
    """--backend array with a non-capable protocol is a pre-run CLI error."""
    from repro.protocols.registry import PROTOCOLS

    monkeypatch.setattr(PROTOCOLS["pif_max_degree"],
                        "supports_array_backend", False)
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--protocols", "mdst,pif_max_degree",
                 "--backend", "array"]) == 1
    captured = capsys.readouterr()
    assert "pif_max_degree" in captured.err
    assert "array backend" in captured.err
    # capable protocols are suggested, and validation fires before the
    # engine: no "sweep: N runs" banner
    assert "mdst" in captured.err
    assert "sweep:" not in captured.err


def test_run_unknown_protocol_lists_registered_names(capsys):
    assert main(["run", "--family", "wheel", "--n", "8",
                 "--protocol", "bogus"]) == 1
    err = capsys.readouterr().err
    assert "bogus" in err
    assert "registered protocols" in err
    assert "mdst" in err and "spanning_tree" in err and "pif_max_degree" in err


def test_sweep_unknown_protocol_fails_before_any_run(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--protocols", "mdst,phantom"]) == 1
    captured = capsys.readouterr()
    assert "phantom" in captured.err
    assert "registered protocols" in captured.err
    # validation fires before the engine: no "sweep: N runs" banner
    assert "sweep:" not in captured.err


def test_run_spanning_tree_protocol_via_cli(capsys):
    assert main(["run", "--family", "wheel", "--n", "8", "--seed", "3",
                 "--protocol", "spanning_tree", "--max-rounds", "500",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spec"]["protocol"] == "spanning_tree"
    assert data["row"]["protocol"] == "spanning_tree"
    assert data["row"]["converged"] is True


def test_sweep_cross_protocol_runs_every_registry_entry(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--max-rounds", "2000",
                 "--protocols", "mdst,spanning_tree,pif_max_degree"]) == 0
    out = capsys.readouterr().out
    # the display backfills the default protocol's column
    assert "mdst" in out and "spanning_tree" in out and "pif_max_degree" in out


def test_sweep_churn_task_rejects_non_churn_protocol(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--task", "churn", "--churn-rate", "0.1",
                 "--churn-events", "2",
                 "--protocols", "pif_max_degree"]) == 1
    err = capsys.readouterr().err
    assert "pif_max_degree" in err and "churn-capable" in err


def test_sweep_rejects_churn_flags_without_churn_task(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--churn-rate", "0.1", "--churn-events", "2"]) == 1
    assert "--task churn" in capsys.readouterr().err


def test_sweep_fault_round_flows_into_every_run(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--max-rounds", "2000", "--fault-round", "30",
                 "--protocols", "mdst,spanning_tree", "--csv"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3  # header + one row per protocol
    assert lines[0].startswith("family,")


def test_run_rejects_fault_flags_on_non_fault_task(capsys):
    """--fault-round on a task that never injects faults must error, not
    silently print a clean-run row as a fault measurement."""
    assert main(["run", "--family", "wheel", "--n", "8",
                 "--task", "quality", "--fault-round", "30"]) == 1
    assert "--fault-round" in capsys.readouterr().err


def test_sweep_rejects_fault_flags_on_non_fault_task(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--task", "reference", "--fault-round", "30"]) == 1
    assert "--fault-round" in capsys.readouterr().err


def test_cross_protocol_saved_report_keeps_rows_attributable(tmp_path, capsys):
    """The saved JSON of a cross-protocol sweep backfills the protocol key
    on default-protocol rows, so `repro report --group-by protocol` works."""
    out = tmp_path / "cross.json"
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--max-rounds", "2000",
                 "--protocols", "mdst,spanning_tree",
                 "--output", str(out)]) == 0
    rows = json.loads(out.read_text())["rows"]
    assert [row["protocol"] for row in rows] == ["mdst", "spanning_tree"]
    capsys.readouterr()
    assert main(["report", str(out), "--group-by", "protocol",
                 "--value", "rounds"]) == 0
    rendered = capsys.readouterr().out
    assert "mdst" in rendered and "spanning_tree" in rendered


def test_single_protocol_saved_report_keeps_historical_shape(tmp_path):
    """Default MDST sweeps must keep their exact historical row shape."""
    out = tmp_path / "plain.json"
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--max-rounds", "2000", "--output", str(out)]) == 0
    rows = json.loads(out.read_text())["rows"]
    assert all("protocol" not in row for row in rows)


def test_sweep_csv_output(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--max-rounds", "2000", "--csv"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert lines[0].startswith("family,")
    assert len(lines) == 2


def test_report_renders_saved_sweep(tmp_path, capsys):
    out = tmp_path / "sweep.json"
    assert main(SWEEP_ARGS + ["--output", str(out)]) == 0
    capsys.readouterr()
    assert main(["report", str(out)]) == 0
    assert "tree_degree" in capsys.readouterr().out
    assert main(["report", str(out), "--group-by", "family",
                 "--value", "rounds"]) == 0
    assert "mean_rounds" in capsys.readouterr().out


def test_report_missing_file_fails_cleanly(capsys):
    assert main(["report", "/nonexistent/report.json"]) == 1
    assert "error:" in capsys.readouterr().err


def test_bench_runs_selected_experiment(tmp_path, capsys):
    # E3 only builds networks (no protocol runs), so it is fast enough here
    assert main(["bench", "--experiments", "E3", "--profile", "quick",
                 "--workers", "2", "--output-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "[E3]" in out
    saved = json.loads((tmp_path / "E3.json").read_text(encoding="utf-8"))
    assert saved["experiment"] == "E3" and saved["rows"]


def test_bench_rejects_unknown_experiment(capsys):
    assert main(["bench", "--experiments", "E99"]) == 1
    assert "unknown experiments" in capsys.readouterr().err


def test_cli_module_is_executable_via_subprocess():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.runtime.cli", "run", "--family", "wheel",
         "--n", "8", "--seed", "3", "--max-rounds", "2000", "--json"],
        capture_output=True, text=True, env=env, timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert json.loads(proc.stdout)["row"]["converged"] is True


# -- adversary flags ----------------------------------------------------------

def test_run_adversary_task_via_cli(capsys):
    assert main(["run", "--task", "adversary", "--family", "erdos_renyi_sparse",
                 "--n", "12", "--seed", "1", "--max-rounds", "1000",
                 "--loss", "0.05", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spec"]["task"] == "adversary"
    assert data["spec"]["loss_rate"] == 0.05
    assert data["row"]["adversary"] == "channel(loss=0.05)"
    assert data["row"]["verdict"] == "recovered"
    assert data["row"]["adversary_dropped"] > 0


def test_run_adversary_crash_recover_via_cli(capsys):
    assert main(["run", "--task", "adversary", "--family", "erdos_renyi_sparse",
                 "--n", "12", "--seed", "1", "--max-rounds", "500",
                 "--protocol", "spanning_tree", "--crash-count", "1",
                 "--crash-round", "5", "--crash-recover", "5", "--json"]) == 0
    row = json.loads(capsys.readouterr().out)["row"]
    assert row["node_crashes"] == 1 and row["node_recoveries"] == 1
    assert row["verdict"] == "recovered"
    assert row["recovery_rounds"] is not None


def test_run_adversary_flags_work_with_protocol_task(capsys):
    """The knobs compose with the plain protocol task, like churn does."""
    assert main(["run", "--family", "erdos_renyi_sparse", "--n", "12",
                 "--seed", "1", "--max-rounds", "500",
                 "--byzantine-count", "1", "--byzantine-start", "3",
                 "--byzantine-rounds", "3", "--json"]) == 0
    row = json.loads(capsys.readouterr().out)["row"]
    assert row["adversary"].startswith("byzantine")
    assert row["converged"] is True


def test_run_adversary_task_requires_a_knob(capsys):
    assert main(["run", "--task", "adversary", "--family", "wheel",
                 "--n", "8"]) == 1
    assert "at least one adversary knob" in capsys.readouterr().err


def test_run_rejects_adversary_flags_on_non_capable_task(capsys):
    assert main(["run", "--task", "baselines", "--family", "wheel",
                 "--n", "8", "--loss", "0.05"]) == 1
    assert "--task" in capsys.readouterr().err


def test_run_rejects_out_of_range_rates(capsys):
    assert main(["run", "--family", "wheel", "--n", "8",
                 "--loss", "1.5"]) == 1
    assert "must be in [0, 1]" in capsys.readouterr().err


def test_run_rejects_zero_crash_recover(capsys):
    assert main(["run", "--family", "wheel", "--n", "8",
                 "--crash-count", "1", "--crash-recover", "0"]) == 1
    assert "--crash-recover" in capsys.readouterr().err


def test_sweep_with_loss_over_protocols(capsys):
    assert main(["sweep", "--families", "erdos_renyi_sparse", "--sizes", "12",
                 "--seeds", "1", "--max-rounds", "500", "--loss", "0.05",
                 "--protocols", "mdst,spanning_tree",
                 "--columns", "protocol,adversary,converged"]) == 0
    out = capsys.readouterr().out
    assert "mdst" in out and "spanning_tree" in out
    assert "channel(loss=0.05)" in out


def test_sweep_rejects_adversary_flags_on_non_capable_task(capsys):
    assert main(["sweep", "--families", "wheel", "--sizes", "8",
                 "--task", "baselines", "--dup", "0.1"]) == 1
    assert "--task" in capsys.readouterr().err


def test_graphs_subcommand_lists_families(capsys):
    assert main(["graphs"]) == 0
    out = capsys.readouterr().out
    for name in ("powerlaw_cm", "small_world_fast", "kronecker", "wheel"):
        assert name in out
    assert "array-fast" in out


def test_graphs_subcommand_json(capsys):
    assert main(["graphs", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    by_name = {row["family"]: row for row in rows}
    assert by_name["powerlaw_cm"]["array_fast"] is True
    assert by_name["wheel"]["array_fast"] is False
    assert "exponent" in by_name["powerlaw_cm"]["params"]


def test_run_graph_param_flows_into_spec(capsys):
    assert main(["run", "--family", "powerlaw_cm", "--n", "24", "--seed", "3",
                 "--backend", "array", "--graph-param", "exponent=2.3",
                 "--max-rounds", "4000", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["spec"]["graph_params"] == [["exponent", 2.3]]
    assert data["row"]["graph_params"] == {"exponent": 2.3}
    assert data["row"]["converged"] is True


def test_run_rejects_unknown_graph_param(capsys):
    assert main(["run", "--family", "powerlaw_cm", "--n", "24",
                 "--graph-param", "bogus=1"]) == 1
    assert "bogus" in capsys.readouterr().err


def test_run_rejects_malformed_graph_param(capsys):
    assert main(["run", "--family", "powerlaw_cm", "--n", "24",
                 "--graph-param", "exponent"]) == 1
    assert "key=value" in capsys.readouterr().err


def test_run_graph_file_route(tmp_path, capsys):
    path = tmp_path / "ring.txt"
    path.write_text("# a comment\n0 1\n1 2\n2 3\n3 4\n4 0\n")
    assert main(["run", "--graph-file", str(path), "--n", "5",
                 "--max-rounds", "4000", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["row"]["graph_file"] == str(path)
    assert data["row"]["family"] == "file"
    assert data["row"]["n"] == 5
    assert data["row"]["converged"] is True


def test_run_rejects_graph_param_with_graph_file(tmp_path, capsys):
    path = tmp_path / "g.txt"
    path.write_text("0 1\n")
    assert main(["run", "--graph-file", str(path),
                 "--graph-param", "p=0.1"]) == 1
    assert "--graph-file" in capsys.readouterr().err
