"""Unit tests of MDSTNode internals (layers, messages, state accounting)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.core import MDSTConfig, MDSTNode, build_mdst_network, initialize_from_tree
from repro.core.messages import Back, Deblock, MInfo, Remove, Search
from repro.core.state import MDSTState
from repro.graphs import bfs_spanning_tree, make_graph, tree_degree
from repro.sim import GarbageMessage, Simulator, SynchronousScheduler


def make_node(node_id=1, neighbors=(0, 2, 3), n_upper=8, **kw):
    return MDSTNode(node_id, neighbors, n_upper=n_upper, **kw)


def info(root=0, parent=0, distance=0, degree=1, sub_max=1, dmax=1, color=True):
    return MInfo(root=root, parent=parent, distance=distance, degree=degree,
                 sub_max=sub_max, dmax=dmax, color=color)


class TestStateDerivation:
    def test_tree_edge_derived_from_parent_pointers(self):
        node = make_node()
        node.on_message(0, info(root=0, parent=0))
        node.s.parent = 0
        assert node.s.is_tree_edge(0)
        assert not node.s.is_tree_edge(2)
        # neighbour 2 claims this node as parent -> tree edge from the other side
        node.on_message(2, info(root=0, parent=1, distance=2))
        assert node.s.is_tree_edge(2)
        assert node.s.degree == 2

    def test_children_listed(self):
        node = make_node()
        node.on_message(2, info(root=0, parent=1, distance=2))
        node.on_message(3, info(root=0, parent=0, distance=1))
        assert node.s.children() == [2]

    def test_state_bits_scale_with_neighbourhood(self):
        small = make_node(neighbors=(0,)).state_bits(16)
        big = make_node(neighbors=tuple(range(10))[1:]).state_bits(16)
        assert big > small

    def test_corrupt_changes_state(self):
        node = make_node()
        before = dict(node.snapshot())
        rng = np.random.default_rng(0)
        changed = False
        for _ in range(10):
            node.corrupt(rng)
            if node.snapshot() != before:
                changed = True
                break
        assert changed

    def test_snapshot_fields(self):
        snap = make_node().snapshot()
        for key in ("root", "parent", "distance", "degree", "dmax", "color"):
            assert key in snap


class TestTreeLayer:
    def test_adopts_smaller_root(self):
        node = make_node(node_id=5, neighbors=(2, 7))
        node.on_message(2, info(root=0, parent=0, distance=3))
        assert node.s.root == 0
        assert node.s.parent == 2
        assert node.s.distance == 4

    def test_root_larger_than_own_id_triggers_reset(self):
        node = make_node(node_id=1, neighbors=(0, 2))
        node.s.root = 5
        node.s.parent = 2
        node._refresh()
        assert node.s.root == 1 and node.s.parent == 1

    def test_distance_bound_triggers_reset(self):
        node = make_node(node_id=3, neighbors=(2,), n_upper=4)
        node.s.root = 0
        node.s.parent = 2
        node.s.distance = 2
        node.on_message(2, info(root=0, parent=1, distance=10))
        # parent's advertised distance exceeds the bound: R3 then R2 fire
        assert node.s.distance < 4

    def test_garbage_is_ignored(self):
        node = make_node()
        before = node.snapshot()
        node.on_message(0, GarbageMessage())
        assert node.snapshot() == before


class TestDegreeLayer:
    def test_root_publishes_submax(self):
        node = make_node(node_id=0, neighbors=(1, 2))
        node.on_message(1, info(root=0, parent=0, distance=1, degree=3, sub_max=5))
        node.on_message(2, info(root=0, parent=0, distance=1, degree=1, sub_max=1))
        node._refresh()
        assert node.s.sub_max == 5
        assert node.s.dmax == 5  # node 0 is its own root here

    def test_non_root_copies_parent_dmax(self):
        node = make_node(node_id=4, neighbors=(1, 5))
        node.on_message(1, info(root=0, parent=0, distance=1, dmax=6))
        assert node.s.parent == 1
        assert node.s.dmax == 6

    def test_locally_stabilized_requires_dmax_agreement(self):
        node = make_node(node_id=4, neighbors=(1, 5))
        node.on_message(1, info(root=0, parent=0, distance=1, dmax=3, sub_max=3, degree=1))
        node.on_message(5, info(root=0, parent=4, distance=2, dmax=3, sub_max=1, degree=1))
        assert node.s.dmax == 3
        assert node._degree_stabilized()
        # a non-parent neighbour advertising a different dmax breaks agreement
        # (the node keeps copying its parent's value, so they now disagree)
        node.on_message(5, info(root=0, parent=4, distance=2, dmax=9, sub_max=1, degree=1))
        assert not node._degree_stabilized()


class TestGossipAndSearch:
    def test_timeout_broadcasts_info_to_all_neighbors(self):
        node = make_node()
        node.on_timeout()
        dests = [d for d, m in node.outbox.drain() if isinstance(m, MInfo)]
        assert sorted(dests) == [0, 2, 3]

    def test_search_initiation_only_when_stabilized_and_needed(self):
        g = make_graph("wheel", 8)
        net = build_mdst_network(g, MDSTConfig(search_period=1))
        initialize_from_tree(net, bfs_spanning_tree(g))
        sim = Simulator(net, scheduler=SynchronousScheduler())
        for _ in range(3):
            sim.step_round()
        total_searches = sum(p.stats["searches_initiated"] for p in net.processes.values())
        assert total_searches > 0

    def test_no_search_when_tree_already_path(self):
        g = make_graph("cycle", 8)
        net = build_mdst_network(g, MDSTConfig(search_period=1))
        initialize_from_tree(net, bfs_spanning_tree(g))
        sim = Simulator(net, scheduler=SynchronousScheduler())
        for _ in range(5):
            sim.step_round()
        # dmax == 2: improvements are impossible, so no node starts a search
        assert sum(p.stats["searches_initiated"] for p in net.processes.values()) == 0

    def test_search_token_reaches_target_and_triggers_action(self):
        g = make_graph("wheel", 7)
        net = build_mdst_network(g, MDSTConfig(search_period=1))
        initialize_from_tree(net, bfs_spanning_tree(g))
        sim = Simulator(net, scheduler=SynchronousScheduler())
        for _ in range(12):
            sim.step_round()
        actions = sum(p.stats["actions_on_cycle"] for p in net.processes.values())
        assert actions > 0

    def test_improvement_produces_removals_and_attachments(self):
        g = make_graph("wheel", 7)
        net = build_mdst_network(g, MDSTConfig(search_period=1))
        initialize_from_tree(net, bfs_spanning_tree(g))
        sim = Simulator(net, scheduler=SynchronousScheduler())
        for _ in range(30):
            sim.step_round()
        removals = sum(p.stats["removals_performed"] for p in net.processes.values())
        attachments = sum(p.stats["attachments"] for p in net.processes.values())
        assert removals > 0
        assert attachments > 0

    def test_stale_remove_is_discarded(self):
        """A Remove whose target edge no longer satisfies the guard must abort."""
        g = make_graph("wheel", 7)
        net = build_mdst_network(g, MDSTConfig())
        initialize_from_tree(net, bfs_spanning_tree(g))
        hub = net.processes[0]
        # Craft a Remove claiming the hub's degree is 3 (it is 6): guard fails.
        msg = Remove(init_edge=(2, 1), deg_max=3, target_edge=(0, 1),
                     path=(1, 0, 2), reversing=False)
        before = dict(hub.snapshot())
        net.processes[0].on_message(1, msg)
        assert hub.stats["removals_aborted"] == 1
        assert hub.snapshot()["parent"] == before["parent"]

    def test_deblock_flood_is_throttled(self):
        node = make_node(node_id=2, neighbors=(0, 1, 3), deblock_cooldown=100)
        node.on_message(0, info(root=0, parent=0, distance=1))
        node.s.parent = 0
        node.on_message(1, Deblock(idblock=7))
        first = len(node.outbox.drain())
        node.on_message(1, Deblock(idblock=7))
        second = len(node.outbox.drain())
        assert second <= first
