"""Tests for repro.graphs.generators."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.graphs import generators as gen
from repro.graphs import make_graph, family_names


class TestStructuredFamilies:
    def test_complete_graph_sizes(self):
        g = gen.complete_graph(6)
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 15

    def test_complete_graph_rejects_zero(self):
        with pytest.raises(GraphError):
            gen.complete_graph(0)

    def test_cycle_graph(self):
        g = gen.cycle_graph(7)
        assert g.number_of_edges() == 7
        assert all(d == 2 for _, d in g.degree())

    def test_cycle_graph_minimum_size(self):
        with pytest.raises(GraphError):
            gen.cycle_graph(2)

    def test_path_graph_is_tree(self):
        g = gen.path_graph(9)
        assert nx.is_tree(g)

    def test_star_graph_degrees(self):
        g = gen.star_graph(5)
        degrees = sorted(d for _, d in g.degree())
        assert degrees == [1, 1, 1, 1, 1, 5]

    def test_wheel_graph_hub(self):
        g = gen.wheel_graph(8)
        assert max(d for _, d in g.degree()) == 7

    def test_grid_graph_dimensions(self):
        g = gen.grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert nx.is_connected(g)

    def test_torus_graph_regular(self):
        g = gen.torus_graph(3, 3)
        assert all(d == 4 for _, d in g.degree())

    def test_hypercube_graph(self):
        g = gen.hypercube_graph(3)
        assert g.number_of_nodes() == 8
        assert all(d == 3 for _, d in g.degree())

    def test_ring_with_chords_contains_cycle(self):
        g = gen.ring_with_chords(10, 4, seed=1)
        assert g.number_of_edges() >= 10
        assert nx.is_connected(g)

    def test_two_hub_graph_structure(self):
        g = gen.two_hub_graph(5)
        assert g.number_of_nodes() == 7
        # both hubs adjacent to every leaf and to each other
        assert g.degree[0] == 6 and g.degree[1] == 6

    def test_spider_graph_centre_degree(self):
        g = gen.spider_graph(4, 3)
        assert g.degree[0] == 4
        assert g.number_of_nodes() == 1 + 4 * 3

    def test_hard_hub_graph(self):
        g = gen.hard_hub_graph(6)
        assert g.degree[0] == 6
        assert nx.is_connected(g)

    def test_star_of_cliques_multiple_hubs(self):
        g = gen.star_of_cliques(3, 4)
        assert nx.is_connected(g)
        hubs_degree = [g.degree[h] for h in range(3)]
        assert all(d >= 4 for d in hubs_degree)

    def test_caterpillar_with_hubs(self):
        g = gen.caterpillar_with_hubs(3, 2, extra_edges=2, seed=0)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 3 + 3 * 2


class TestRandomFamilies:
    def test_erdos_renyi_connected_and_seeded(self):
        g1 = gen.erdos_renyi_connected(20, 0.2, seed=5)
        g2 = gen.erdos_renyi_connected(20, 0.2, seed=5)
        assert nx.is_connected(g1)
        assert set(g1.edges) == set(g2.edges)

    def test_erdos_renyi_patched_when_sparse(self):
        g = gen.erdos_renyi_connected(30, 0.01, seed=3)
        assert nx.is_connected(g)

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(GraphError):
            gen.erdos_renyi_connected(10, 1.5)

    def test_random_geometric_connected(self):
        g = gen.random_geometric_connected(25, seed=11)
        assert nx.is_connected(g)

    def test_barabasi_albert_has_hubs(self):
        g = gen.barabasi_albert_graph(30, 2, seed=1)
        assert max(d for _, d in g.degree()) >= 4

    def test_watts_strogatz_connected(self):
        g = gen.watts_strogatz_connected(20, 4, 0.3, seed=2)
        assert nx.is_connected(g)

    def test_random_regular(self):
        g = gen.random_regular_connected(10, 3, seed=4)
        assert all(d == 3 for _, d in g.degree())

    def test_dense_hamiltonian_certificate(self):
        g = gen.dense_hamiltonian_graph(12, 0.3, seed=9)
        path = g.graph["hamiltonian_path"]
        assert len(path) == 12
        assert all(g.has_edge(u, v) for u, v in zip(path, path[1:]))


class TestRegistry:
    def test_family_names_sorted_and_nonempty(self):
        names = family_names()
        assert names == sorted(names)
        assert "complete" in names and "random_geometric" in names

    @pytest.mark.parametrize("family", family_names())
    def test_every_family_builds_connected_graph(self, family):
        g = make_graph(family, 12, seed=1)
        assert g.number_of_nodes() >= 2
        assert nx.is_connected(g)
        assert not any(u == v for u, v in g.edges)

    def test_unknown_family_raises(self):
        with pytest.raises(GraphError):
            make_graph("no_such_family", 10)

    def test_nodes_are_contiguous_ints(self):
        g = make_graph("grid", 9)
        assert sorted(g.nodes) == list(range(g.number_of_nodes()))
