"""Tier-1 guards for the array kernel backend (``backend="array"``).

Four invariants protect the backend's central promise -- byte-identical
results, only faster -- across the v4 -> v5 schema bump:

* **Gating** -- the array kernel freezes the topology and owns the
  channel objects, so churn, adversary models and non-capable protocols
  are rejected up front, never silently degraded.
* **Equivalence** -- object and array backends produce identical results
  step for step: same per-round trace, same messages, same tree, same
  channel-derived statistics.  Checked on fixed regression cases (fault
  plans included) and as a hypothesis property over random graphs, seeds,
  schedulers and initial policies.
* **Determinism** -- an array-backend run does not depend on the process
  hash seed (subprocesses under different ``PYTHONHASHSEED`` values agree
  byte for byte).
* **Cache key discipline** -- mirroring ``tests/test_adversary_guard.py``
  for schema v5: legacy v4 dicts (no ``backend`` key) deserialize to the
  object backend and share its cache entries; selecting the array backend
  changes the key; default rows carry no ``backend`` column, so the
  committed E1-E8 tables keep their historical shape.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments.config import get_profile
from repro.experiments.workloads import scaling_workload
from repro.graphs.generators import GRAPH_FAMILIES
from repro.protocols import PROTOCOLS
from repro.protocols.base import ProtocolRunConfig
from repro.protocols.runner import run_protocol
from repro.runtime.spec import CACHE_SCHEMA_VERSION, RunSpec, spec_key
from repro.runtime.tasks import run_protocol_task
from repro.sim.adversary import Adversary, make_channel_model
from repro.sim.faults import ChurnPlan, FaultPlan

from test_adversary_guard import E2_FAST_SLICE_MD5, LEGACY_V3_DICT

SRC = str(Path(__file__).resolve().parent.parent / "src")

#: A spec dict exactly as schema v4 wrote it: adversary keys, no backend.
LEGACY_V4_DICT = {**LEGACY_V3_DICT,
                  "loss_rate": 0.0, "dup_rate": 0.0, "reorder_rate": 0.0,
                  "crash_count": 0, "crash_round": 50, "crash_recover": None,
                  "byzantine_count": 0, "byzantine_start": 10,
                  "byzantine_rounds": 20}


def _graph(n: int, seed: int):
    return GRAPH_FAMILIES["erdos_renyi_sparse"](n, seed=seed)


def _result_key(result):
    """Everything a run reports, flattened into one comparable value."""
    run, tr = result.run, result.trace
    return (
        run.converged, run.rounds, run.steps, run.messages, run.tree_degree,
        tuple(sorted(result.tree_edges)),
        tuple(sorted((v, tuple(sorted(d.items())))
                     for v, d in result.node_stats.items())),
        tuple(sorted(run.extra["deliveries_by_type"].items())),
        run.extra["max_message_bits"], run.extra["max_state_bits"],
        run.extra["convergence_round"],
        tr.total_deliveries, tr.total_timeouts, tr.total_messages_sent,
        tuple((rec.round_index, rec.steps, rec.deliveries, rec.timeouts,
               rec.messages_sent) for rec in tr.rounds),
    )


def _run_both(graph, fault_plan=None, **cfg):
    obj = run_protocol(graph, ProtocolRunConfig(backend="object", **cfg),
                       fault_plan=fault_plan)
    arr = run_protocol(graph, ProtocolRunConfig(backend="array", **cfg),
                       fault_plan=fault_plan)
    return obj, arr


class TestBackendGating:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ProtocolRunConfig(backend="simd").validate()

    def test_registry_flags(self):
        for name in ("mdst", "pif_max_degree", "spanning_tree"):
            assert PROTOCOLS[name].supports_array_backend

    def test_array_rejects_non_capable_protocol(self):
        from repro.protocols.pif import PIFMaxDegreeProtocol

        class NoArrayProtocol(PIFMaxDegreeProtocol):
            supports_array_backend = False

        with pytest.raises(ConfigurationError, match="array backend"):
            run_protocol(_graph(8, 1),
                         ProtocolRunConfig(protocol="pif_max_degree",
                                           backend="array"),
                         adapter=NoArrayProtocol())

    def test_array_rejects_churn(self):
        with pytest.raises(ConfigurationError, match="churn"):
            run_protocol(_graph(8, 1), ProtocolRunConfig(backend="array"),
                         churn_plan=ChurnPlan())

    def test_array_rejects_adversary(self):
        adversary = Adversary(channel_model=make_channel_model(loss=0.1))
        with pytest.raises(ConfigurationError, match="adversary"):
            run_protocol(_graph(8, 1), ProtocolRunConfig(backend="array"),
                         adversary=adversary)


class TestByteIdentity:
    """Fixed regression cases; the hypothesis property below widens them."""

    def test_isolated_synchronous(self):
        obj, arr = _run_both(_graph(16, 7), scheduler="synchronous",
                             initial="isolated", seed=5, max_rounds=400)
        assert _result_key(obj) == _result_key(arr)

    def test_corrupted_synchronous(self):
        obj, arr = _run_both(_graph(16, 7), scheduler="synchronous",
                             initial="corrupted", seed=5, max_rounds=400)
        assert _result_key(obj) == _result_key(arr)

    def test_corrupted_synchronous_with_faults(self):
        plan = FaultPlan().add(20, node_fraction=0.5, channel_fraction=0.25)
        obj, arr = _run_both(_graph(16, 7), scheduler="synchronous",
                             initial="corrupted", seed=5, max_rounds=600,
                             fault_plan=plan)
        assert _result_key(obj) == _result_key(arr)

    def test_e2_fast_slice_matches_object_digest(self):
        """The array backend reproduces E2's committed quick-profile rows.

        The only permitted difference is the identifying ``backend``
        column itself (non-default backends are labelled so timing rows
        never alias); every measured value must be byte-identical to the
        object-backend digest recorded in ``test_adversary_guard.py``.
        """
        profile = get_profile("quick")
        rows = []
        for inst in list(scaling_workload(profile))[:3]:
            row = run_protocol_task(
                RunSpec(task="protocol", family=inst.family, n=inst.n,
                        seed=inst.seed, initial="isolated",
                        max_rounds=profile.max_rounds,
                        backend="array")).row
            assert row.pop("backend") == "array"
            rows.append(row)
        digest = hashlib.md5(json.dumps(rows, sort_keys=True,
                                        default=str).encode()).hexdigest()
        assert digest == E2_FAST_SLICE_MD5


class TestStepForStepProperty:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(n=st.integers(min_value=6, max_value=20),
           graph_seed=st.integers(min_value=0, max_value=10_000),
           run_seed=st.integers(min_value=0, max_value=10_000),
           scheduler=st.sampled_from(("synchronous", "random", "adversarial",
                                      "weighted")),
           initial=st.sampled_from(("isolated", "corrupted")),
           fault=st.booleans())
    def test_array_equals_object(self, n, graph_seed, run_seed, scheduler,
                                 initial, fault):
        plan = (FaultPlan().add(15, node_fraction=0.5, channel_fraction=0.25)
                if fault else None)
        obj, arr = _run_both(_graph(n, graph_seed), scheduler=scheduler,
                             initial=initial, seed=run_seed,
                             max_rounds=2500, fault_plan=plan)
        assert _result_key(obj) == _result_key(arr)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(protocol=st.sampled_from(("mdst", "spanning_tree",
                                     "pif_max_degree")),
           graph_seed=st.integers(min_value=0, max_value=10_000),
           run_seed=st.integers(min_value=0, max_value=10_000),
           scheduler=st.sampled_from(("synchronous", "random", "adversarial",
                                      "weighted")),
           initial=st.sampled_from(("isolated", "corrupted")),
           fault=st.booleans())
    def test_array_equals_object_across_protocols(self, protocol, graph_seed,
                                                  run_seed, scheduler,
                                                  initial, fault):
        """Every array-capable registry protocol is byte-identical."""
        plan = (FaultPlan().add(15, node_fraction=0.5, channel_fraction=0.25)
                if fault else None)
        obj, arr = _run_both(_graph(14, graph_seed), protocol=protocol,
                             scheduler=scheduler, initial=initial,
                             seed=run_seed, max_rounds=2500, fault_plan=plan)
        assert _result_key(obj) == _result_key(arr)


class TestHashSeedDeterminism:
    @pytest.mark.parametrize("scheduler", ["synchronous", "random"])
    def test_array_run_is_hash_seed_independent(self, scheduler):
        """Two subprocesses with different PYTHONHASHSEED agree exactly."""
        script = (
            "import sys, json, hashlib\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.runtime.spec import RunSpec\n"
            "from repro.runtime.tasks import run_protocol_task\n"
            "row = run_protocol_task(RunSpec(task='protocol',"
            " family='erdos_renyi_sparse', n=24, seed=7,"
            f" scheduler={scheduler!r},"
            " initial='corrupted', max_rounds=600, backend='array')).row\n"
            "print(hashlib.md5(json.dumps(row, sort_keys=True,"
            " default=str).encode()).hexdigest())\n")
        digests = []
        for hash_seed in ("0", "31337"):
            env = {**os.environ, "PYTHONHASHSEED": hash_seed}
            proc = subprocess.run([sys.executable, "-c", script], env=env,
                                  capture_output=True, text=True, check=True)
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]


class TestThroughputProfile:
    def test_profile_param_profiles_the_array_round_loop(self):
        """``profile=N`` under backend='array' ranks kernel work, not imports.

        Runs in a subprocess so the array modules (and scipy) are cold:
        before the pre-warm fix, the lazy import storm landed inside the
        profiled region and importlib frames drowned the round loop.
        """
        script = (
            "import sys, json\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.runtime.spec import RunSpec\n"
            "from repro.runtime.tasks import run_throughput_task\n"
            "spec = RunSpec(task='throughput', family='erdos_renyi_sparse',"
            " n=64, seed=3, max_rounds=30, stability_window=31,"
            " backend='array').with_params(profile=15)\n"
            "row = run_throughput_task(spec).row\n"
            "print(json.dumps(row['profile_top']))\n")
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, check=True)
        top = json.loads(proc.stdout.strip().splitlines()[-1])
        assert len(top) == 15
        functions = [entry["function"] for entry in top]
        assert not any("importlib" in f for f in functions), functions
        assert any("array_kernel" in f for f in functions), functions


class TestSchemaV5:
    def test_schema_version_bumped_for_the_backend_axis(self):
        # >= 5: the backend axis landed in v5; later PRs may bump further
        # (v6 added graph_params/graph_file) without invalidating this guard
        assert CACHE_SCHEMA_VERSION >= 5

    def test_legacy_v4_dict_loads_object_backend(self):
        spec = RunSpec.from_dict(LEGACY_V4_DICT)
        assert spec.backend == "object"
        assert "-array" not in spec.label

    def test_array_spec_round_trips_exactly(self):
        spec = RunSpec(task="protocol", family="wheel", n=12, seed=5,
                       backend="array")
        payload = spec.to_dict()
        assert payload["backend"] == "array"
        clone = RunSpec.from_dict(payload)
        assert clone == spec
        assert spec_key(clone) == spec_key(spec)

    def test_legacy_and_explicit_object_specs_hash_identically(self):
        """A v4 dict and the equivalent v5 spec share one cache entry."""
        legacy = RunSpec.from_dict(LEGACY_V4_DICT)
        explicit = RunSpec.from_dict({**LEGACY_V4_DICT, "backend": "object"})
        assert spec_key(legacy) == spec_key(explicit)

    def test_array_backend_changes_the_cache_key(self):
        base = RunSpec(task="protocol", family="wheel", n=12, seed=5)
        assert spec_key(replace(base, backend="array")) != spec_key(base)

    def test_array_label_is_suffixed(self):
        assert RunSpec(backend="array").label.endswith("-array")

    def test_default_rows_carry_no_backend_column(self):
        """E1-E8 row shape: the column appears only for non-default kernels."""
        row = run_protocol_task(RunSpec(task="protocol", family="wheel",
                                        n=8, seed=1)).row
        assert "backend" not in row
