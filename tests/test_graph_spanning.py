"""Tests for repro.graphs.spanning (tree construction, cycles, swaps)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import NotASpanningTreeError, NotConnectedError
from repro.graphs import (
    bfs_spanning_tree,
    dfs_spanning_tree,
    edges_from_parent_map,
    fundamental_cycle,
    fundamental_cycle_edges,
    is_spanning_tree,
    make_graph,
    minimum_spanning_tree,
    non_tree_edges,
    parent_map_from_edges,
    random_spanning_tree,
    swap_edges,
    tree_degree,
    tree_degrees,
    tree_path,
)


class TestTreeConstruction:
    def test_bfs_tree_is_spanning_tree(self, wheel8):
        edges = bfs_spanning_tree(wheel8)
        assert is_spanning_tree(wheel8, edges)

    def test_bfs_tree_rooted_at_min_id_has_hub_shape_on_wheel(self, wheel8):
        edges = bfs_spanning_tree(wheel8)
        # the hub (node 0) is adjacent to all others, so the BFS tree is a star
        assert tree_degree(wheel8.nodes, edges) == 7

    def test_dfs_tree_is_spanning_tree(self, small_dense):
        edges = dfs_spanning_tree(small_dense)
        assert is_spanning_tree(small_dense, edges)

    def test_dfs_tree_on_complete_graph_is_path(self):
        g = make_graph("complete", 8)
        edges = dfs_spanning_tree(g)
        assert tree_degree(g.nodes, edges) == 2

    def test_random_tree_seeded_and_valid(self, small_dense):
        t1 = random_spanning_tree(small_dense, seed=3)
        t2 = random_spanning_tree(small_dense, seed=3)
        t3 = random_spanning_tree(small_dense, seed=4)
        assert t1 == t2
        assert is_spanning_tree(small_dense, t1)
        assert is_spanning_tree(small_dense, t3)

    def test_mst_is_spanning_tree(self, geometric14):
        assert is_spanning_tree(geometric14, minimum_spanning_tree(geometric14))

    def test_bfs_requires_connected_graph(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            bfs_spanning_tree(g)

    def test_bfs_custom_root(self, wheel8):
        edges = bfs_spanning_tree(wheel8, root=3)
        assert is_spanning_tree(wheel8, edges)


class TestParentMaps:
    def test_parent_map_round_trip(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        parent = parent_map_from_edges(small_dense.nodes, edges)
        assert edges_from_parent_map(parent) == edges
        assert sum(1 for v, p in parent.items() if v == p) == 1

    def test_parent_map_detects_non_spanning(self, small_dense):
        edges = list(bfs_spanning_tree(small_dense))[:-1]  # drop one edge
        with pytest.raises(NotASpanningTreeError):
            parent_map_from_edges(small_dense.nodes, edges)

    def test_parent_map_custom_root(self, wheel8):
        edges = bfs_spanning_tree(wheel8)
        parent = parent_map_from_edges(wheel8.nodes, edges, root=4)
        assert parent[4] == 4


class TestDegreesAndCycles:
    def test_tree_degrees_sum(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        degrees = tree_degrees(small_dense.nodes, edges)
        assert sum(degrees.values()) == 2 * len(edges)

    def test_non_tree_edges_count(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        extra = non_tree_edges(small_dense, edges)
        assert len(extra) == small_dense.number_of_edges() - len(edges)

    def test_fundamental_cycle_endpoints(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        for e in sorted(non_tree_edges(small_dense, edges))[:5]:
            cycle = fundamental_cycle(edges, e)
            assert cycle[0] == e[0] and cycle[-1] == e[1]
            assert len(cycle) == len(set(cycle))

    def test_fundamental_cycle_edges_are_tree_edges(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        e = sorted(non_tree_edges(small_dense, edges))[0]
        for ce in fundamental_cycle_edges(edges, e):
            assert ce in edges

    def test_tree_path_trivial(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        assert tree_path(edges, 3, 3) == [3]

    def test_tree_path_is_connected_in_tree(self, geometric14):
        edges = bfs_spanning_tree(geometric14)
        path = tree_path(edges, 0, max(geometric14.nodes))
        for a, b in zip(path, path[1:]):
            assert tuple(sorted((a, b))) in edges


class TestSwaps:
    def test_swap_preserves_spanning_tree(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        e = sorted(non_tree_edges(small_dense, edges))[0]
        cycle_edges = fundamental_cycle_edges(edges, e)
        new_tree = swap_edges(edges, add=e, remove=cycle_edges[0])
        assert is_spanning_tree(small_dense, new_tree)

    def test_swap_rejects_missing_edge(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        e = sorted(non_tree_edges(small_dense, edges))[0]
        with pytest.raises(NotASpanningTreeError):
            swap_edges(edges, add=e, remove=e)

    def test_swap_rejects_adding_tree_edge(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        some_tree_edge = next(iter(edges))
        with pytest.raises(NotASpanningTreeError):
            swap_edges(edges, add=some_tree_edge, remove=some_tree_edge)

    def test_is_spanning_tree_rejects_foreign_edges(self, small_dense):
        edges = set(bfs_spanning_tree(small_dense))
        n = small_dense.number_of_nodes()
        edges.add((n + 5, n + 6))
        assert not is_spanning_tree(small_dense, edges)
