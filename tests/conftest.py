"""Shared fixtures for the test-suite."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graphs import make_graph


@pytest.fixture
def wheel8() -> nx.Graph:
    """Wheel graph on 8 nodes: hub degree 7, Δ* = 2."""
    return make_graph("wheel", 8)


@pytest.fixture
def small_dense() -> nx.Graph:
    """Small dense random graph with a known seed."""
    return make_graph("erdos_renyi_dense", 9, seed=42)


@pytest.fixture
def geometric14() -> nx.Graph:
    """Sparse geometric graph, typical ad-hoc topology."""
    return make_graph("random_geometric", 14, seed=7)


@pytest.fixture
def two_hub7() -> nx.Graph:
    """Two hubs sharing 5 leaves: Δ* = 3, BFS tree degree 6."""
    return make_graph("two_hub", 7)
