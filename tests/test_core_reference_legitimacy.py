"""Tests for the reference engine and the legitimacy predicates."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.baselines import exact_mdst_degree
from repro.core import (
    MDSTConfig,
    ReferenceMDST,
    build_mdst_network,
    current_tree_degree,
    current_tree_edges,
    degree_layer_coherent,
    initialize_from_tree,
    make_mdst_legitimacy,
    mdst_legitimacy,
    reduce_tree_degree,
    reduction_finished,
    tree_coherent,
)
from repro.graphs import (
    bfs_spanning_tree,
    is_spanning_tree,
    make_graph,
    random_spanning_tree,
    tree_degree,
)


class TestReferenceEngine:
    @pytest.mark.parametrize("family,n,seed", [
        ("wheel", 10, 0), ("complete", 8, 0), ("two_hub", 9, 0),
        ("erdos_renyi_dense", 10, 1), ("lollipop", 9, 0),
        ("star_of_cliques", 12, 0), ("hard_hub", 10, 0),
        ("ring_with_chords", 10, 2), ("random_geometric", 12, 4),
    ])
    def test_final_degree_within_one_of_optimal(self, family, n, seed):
        g = make_graph(family, n, seed=seed)
        result = ReferenceMDST(g).run()
        assert is_spanning_tree(g, result.tree_edges)
        optimal = exact_mdst_degree(g)
        assert result.final_degree <= optimal + 1
        assert result.final_degree >= optimal

    def test_degree_history_non_increasing_overall(self, wheel8):
        result = ReferenceMDST(wheel8).run()
        assert result.degree_history[0] >= result.degree_history[-1]
        assert result.initial_degree == result.degree_history[0]
        assert result.final_degree == result.degree_history[-1]

    def test_star_graph_is_already_optimal(self):
        g = make_graph("star", 8)
        result = ReferenceMDST(g).run()
        assert result.swaps == 0
        assert result.final_degree == g.number_of_nodes() - 1

    def test_custom_initial_tree(self, small_dense):
        tree = random_spanning_tree(small_dense, seed=9)
        result = ReferenceMDST(small_dense, initial_tree=tree).run()
        assert result.initial_degree == tree_degree(small_dense.nodes, tree)
        assert result.final_degree <= result.initial_degree

    def test_record_moves(self, wheel8):
        result = ReferenceMDST(wheel8).run(record_moves=True)
        assert len(result.moves) == result.swaps
        assert result.swaps > 0

    def test_reduce_tree_degree_wrapper(self, wheel8):
        result = reduce_tree_degree(wheel8)
        assert result.final_degree <= exact_mdst_degree(wheel8) + 1

    def test_phases_counted(self, wheel8):
        result = ReferenceMDST(wheel8).run()
        # the wheel's BFS tree has degree 7 and the optimum is 2: at least
        # 7 - 3 = 4 strict degree decreases must have happened
        assert result.phases >= 4


class TestLegitimacyPredicates:
    def _coherent_network(self, graph, tree=None):
        net = build_mdst_network(graph, MDSTConfig())
        initialize_from_tree(net, tree if tree is not None else bfs_spanning_tree(graph))
        return net

    def test_tree_coherent_after_initialization(self, small_dense):
        net = self._coherent_network(small_dense)
        assert tree_coherent(net)
        assert degree_layer_coherent(net)

    def test_current_tree_matches_installed_tree(self, small_dense):
        tree = bfs_spanning_tree(small_dense)
        net = self._coherent_network(small_dense, tree)
        assert current_tree_edges(net) == tree
        assert current_tree_degree(net) == tree_degree(small_dense.nodes, tree)

    def test_reduction_not_finished_on_star_tree_of_wheel(self, wheel8):
        net = self._coherent_network(wheel8)
        assert not reduction_finished(net)
        assert not mdst_legitimacy(net)

    def test_legitimacy_holds_on_optimal_tree(self):
        g = make_graph("complete", 7)
        optimal_tree = ReferenceMDST(g).run().tree_edges
        net = self._coherent_network(g, optimal_tree)
        assert mdst_legitimacy(net)

    def test_restricted_predicate_ignores_reduction(self, wheel8):
        net = self._coherent_network(wheel8)
        substrate_only = make_mdst_legitimacy(require_reduction=False)
        assert substrate_only(net)
        assert not make_mdst_legitimacy(require_reduction=True)(net)

    def test_tree_coherent_fails_on_fresh_network(self, small_dense):
        net = build_mdst_network(small_dense, MDSTConfig())
        # every node is its own root: no unique root, not a spanning tree
        assert not tree_coherent(net)
