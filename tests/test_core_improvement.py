"""Tests for repro.core.improvement (Eq. 1, blocking nodes, chain planning)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import NotASpanningTreeError
from repro.graphs import (
    bfs_spanning_tree,
    dfs_spanning_tree,
    is_spanning_tree,
    make_graph,
    tree_degree,
)
from repro.core.improvement import (
    Move,
    TreeIndex,
    apply_moves,
    blocking_nodes,
    improvement_possible,
    is_improving_edge,
    plan_improvement,
)
from repro.baselines import exact_mdst_degree


class TestTreeIndex:
    def test_rejects_non_spanning_edge_sets(self, wheel8):
        with pytest.raises(NotASpanningTreeError):
            TreeIndex(wheel8, list(bfs_spanning_tree(wheel8))[:-1])

    def test_degrees_match_definition(self, wheel8):
        tree = bfs_spanning_tree(wheel8)
        index = TreeIndex(wheel8, tree)
        assert index.tree_degree() == tree_degree(wheel8.nodes, tree)
        assert index.degree[0] == 7  # the hub

    def test_cycle_path_endpoints(self, small_dense):
        tree = bfs_spanning_tree(small_dense)
        index = TreeIndex(small_dense, tree)
        u, v = index.non_tree_edges()[0]
        path = index.cycle_path(u, v)
        assert path[0] == u and path[-1] == v

    def test_apply_swap_updates_degrees(self, wheel8):
        tree = bfs_spanning_tree(wheel8)
        index = TreeIndex(wheel8, tree)
        u, v = index.non_tree_edges()[0]
        path = index.cycle_path(u, v)
        w = max(path, key=lambda x: index.degree[x])
        pos = path.index(w)
        z = path[pos - 1] if pos > 0 else path[pos + 1]
        before = index.degree[w]
        index.apply(Move(add=(u, v), remove=tuple(sorted((w, z))), target=w))
        assert index.degree[w] == before - 1
        assert is_spanning_tree(wheel8, index.tree_edges)

    def test_apply_rejects_bad_moves(self, wheel8):
        index = TreeIndex(wheel8, bfs_spanning_tree(wheel8))
        non_tree = index.non_tree_edges()[0]
        tree_edge = next(iter(index.tree_edges))
        with pytest.raises(NotASpanningTreeError):
            index.apply(Move(add=non_tree, remove=non_tree, target=0))
        with pytest.raises(NotASpanningTreeError):
            index.apply(Move(add=tree_edge, remove=tree_edge, target=0))

    def test_copy_is_independent(self, wheel8):
        index = TreeIndex(wheel8, bfs_spanning_tree(wheel8))
        clone = index.copy()
        u, v = index.non_tree_edges()[0]
        path = index.cycle_path(u, v)
        w = max(path, key=lambda x: index.degree[x])
        pos = path.index(w)
        z = path[pos - 1] if pos > 0 else path[pos + 1]
        clone.apply(Move(add=(u, v), remove=tuple(sorted((w, z))), target=w))
        assert index.tree_edges != clone.tree_edges


class TestEq1Predicates:
    def test_improving_edge_on_wheel_star_tree(self, wheel8):
        # the BFS tree of a wheel is the star centred at the hub: every rim
        # edge is improving (the hub has degree 7, rim nodes degree 1).
        index = TreeIndex(wheel8, bfs_spanning_tree(wheel8))
        rim_edge = index.non_tree_edges()[0]
        assert is_improving_edge(index, rim_edge)

    def test_tree_edge_is_never_improving(self, wheel8):
        index = TreeIndex(wheel8, bfs_spanning_tree(wheel8))
        assert not is_improving_edge(index, next(iter(index.tree_edges)))

    def test_no_improving_edge_on_path_tree(self):
        g = make_graph("complete", 6)
        path_tree = dfs_spanning_tree(g)  # a Hamiltonian path, degree 2
        index = TreeIndex(g, path_tree)
        assert not any(is_improving_edge(index, e) for e in index.non_tree_edges())

    def test_blocking_nodes_identified(self):
        # two_hub: hubs 0 and 1 both have degree leaf_count+1 in the graph;
        # in the BFS tree one hub has maximum degree, the other degree 1.
        g = make_graph("two_hub", 7)
        index = TreeIndex(g, bfs_spanning_tree(g))
        k = index.tree_degree()
        for edge in index.non_tree_edges():
            blockers = blocking_nodes(index, edge)
            for b in blockers:
                assert index.degree[b] == k - 1


class TestPlanning:
    @pytest.mark.parametrize("family,n", [("wheel", 8), ("complete", 7),
                                          ("two_hub", 8), ("hard_hub", 9),
                                          ("erdos_renyi_dense", 9)])
    def test_plan_respects_spanning_tree_invariant(self, family, n):
        g = make_graph(family, n, seed=2)
        tree = bfs_spanning_tree(g)
        plan = plan_improvement(g, tree)
        if plan is None:
            return
        new_tree = apply_moves(g, tree, plan)
        assert is_spanning_tree(g, new_tree)

    def test_plan_last_move_reduces_a_max_degree_node(self, wheel8):
        tree = bfs_spanning_tree(wheel8)
        plan = plan_improvement(wheel8, tree)
        assert plan is not None
        assert plan[-1].kind in ("improve", "deblock")
        new_tree = apply_moves(wheel8, tree, plan)
        assert tree_degree(wheel8.nodes, new_tree) <= tree_degree(wheel8.nodes, tree)

    def test_no_plan_on_star_graph(self):
        g = make_graph("star", 7)  # the star is its own unique spanning tree
        tree = bfs_spanning_tree(g)
        assert plan_improvement(g, tree) is None
        assert not improvement_possible(g, tree)

    def test_no_plan_when_degree_two(self):
        g = make_graph("cycle", 8)
        assert plan_improvement(g, bfs_spanning_tree(g)) is None

    def test_fixpoint_of_planner_is_within_one_of_optimal(self):
        """Iterating the planner to a fixpoint yields deg <= Δ* + 1 (Theorem 2)."""
        for family, n, seed in [("wheel", 9, 0), ("two_hub", 8, 0),
                                ("erdos_renyi_dense", 9, 3), ("lollipop", 8, 0),
                                ("hard_hub", 9, 0), ("ring_with_chords", 9, 1)]:
            g = make_graph(family, n, seed=seed)
            tree = bfs_spanning_tree(g)
            for _ in range(200):
                plan = plan_improvement(g, tree)
                if plan is None:
                    break
                tree = apply_moves(g, tree, plan)
            assert plan_improvement(g, tree) is None
            optimal = exact_mdst_degree(g)
            assert tree_degree(g.nodes, tree) <= optimal + 1, (family, n, seed)

    def test_iterated_chains_on_two_hub_reach_optimum(self):
        """Iterating chains on the two-hub graph balances the hubs exactly."""
        g = make_graph("two_hub", 9)  # 7 leaves: Δ* = 7 // 2 + 1 = 4
        tree = bfs_spanning_tree(g)
        chains = []
        for _ in range(50):
            plan = plan_improvement(g, tree)
            if plan is None:
                break
            chains.append(plan)
            tree = apply_moves(g, tree, plan)
        assert chains
        assert all(m.kind in ("improve", "deblock") for c in chains for m in c)
        assert tree_degree(g.nodes, tree) <= exact_mdst_degree(g) + 1

    def test_deblock_chain_appears_when_endpoint_is_blocking(self):
        """Craft a tree where the only cycle through the max-degree node has a
        blocking endpoint, forcing the planner to emit a deblock move."""
        g = nx.Graph()
        # hub 0 with four spokes; spoke 1 also attached to a path that closes
        # a cycle back to spoke 2 through node 5.
        g.add_edges_from([(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (5, 6), (6, 2),
                          (1, 7), (7, 2)])
        tree = {(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (5, 6), (1, 7)}
        assert is_spanning_tree(g, tree)
        plans = []
        for _ in range(20):
            plan = plan_improvement(g, tree)
            if plan is None:
                break
            plans.append(plan)
            tree = apply_moves(g, tree, plan)
        assert plans
        assert tree_degree(g.nodes, tree) <= exact_mdst_degree(g) + 1
