"""Tests for repro.graphs.properties, validation and io."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError, NotASpanningTreeError, NotConnectedError
from repro.graphs import (
    bfs_spanning_tree,
    check_distances,
    check_network,
    check_parent_map,
    check_spanning_tree,
    cut_vertex_lower_bound,
    degree_histogram,
    density,
    graph_from_dict,
    graph_to_dict,
    is_hamiltonian_path_certificate,
    make_graph,
    max_degree,
    mdst_lower_bound,
    min_degree,
    parent_map_from_edges,
    read_edge_list,
    read_graph_json,
    read_tree,
    spanning_tree_violations,
    summarize,
    write_edge_list,
    write_graph_json,
    write_tree,
)


class TestProperties:
    def test_degree_histogram_totals(self, wheel8):
        hist = degree_histogram(wheel8)
        assert sum(hist.values()) == wheel8.number_of_nodes()

    def test_max_min_degree(self, wheel8):
        assert max_degree(wheel8) == 7
        assert min_degree(wheel8) == 3

    def test_density_range(self, small_dense):
        assert 0 < density(small_dense) <= 1

    def test_cut_vertex_bound_on_spider(self):
        g = make_graph("spider", 17)  # 4 legs
        assert cut_vertex_lower_bound(g) >= 4

    def test_cut_vertex_bound_biconnected(self):
        g = make_graph("complete", 6)
        assert cut_vertex_lower_bound(g) == 1
        assert mdst_lower_bound(g) == 2

    def test_mdst_lower_bound_small_graphs(self):
        assert mdst_lower_bound(nx.path_graph(2)) == 1
        assert mdst_lower_bound(make_graph("star", 6)) == 5

    def test_hamiltonian_certificate(self):
        g = make_graph("dense_hamiltonian", 10, seed=2)
        assert is_hamiltonian_path_certificate(g, g.graph["hamiltonian_path"])
        assert not is_hamiltonian_path_certificate(g, [0, 0, 1])

    def test_summarize_fields(self, geometric14):
        s = summarize(geometric14)
        assert s.nodes == geometric14.number_of_nodes()
        assert s.edges == geometric14.number_of_edges()
        assert s.mdst_lower_bound >= 2
        d = s.as_dict()
        assert d["nodes"] == s.nodes

    def test_summarize_rejects_empty(self):
        with pytest.raises(GraphError):
            summarize(nx.Graph())


class TestValidation:
    def test_check_network_accepts_valid(self, small_dense):
        check_network(small_dense)

    def test_check_network_rejects_disconnected(self):
        with pytest.raises(NotConnectedError):
            check_network(nx.Graph([(0, 1), (2, 3)]))

    def test_check_network_rejects_directed(self):
        with pytest.raises(GraphError):
            check_network(nx.DiGraph([(0, 1)]))

    def test_check_network_rejects_empty(self):
        with pytest.raises(GraphError):
            check_network(nx.Graph())

    def test_check_spanning_tree_accepts_bfs(self, small_dense):
        degrees = check_spanning_tree(small_dense, bfs_spanning_tree(small_dense))
        assert sum(degrees.values()) == 2 * (small_dense.number_of_nodes() - 1)

    def test_check_spanning_tree_rejects_wrong_count(self, small_dense):
        edges = list(bfs_spanning_tree(small_dense))[:-1]
        with pytest.raises(NotASpanningTreeError):
            check_spanning_tree(small_dense, edges)

    def test_check_parent_map_valid(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        parent = parent_map_from_edges(small_dense.nodes, edges)
        root = check_parent_map(small_dense, parent)
        assert parent[root] == root

    def test_check_parent_map_detects_cycle(self, small_dense):
        parent = {v: v for v in small_dense.nodes}
        a, b = sorted(small_dense.nodes)[:2]
        if not small_dense.has_edge(a, b):
            small_dense.add_edge(a, b)
        parent[a] = b
        parent[b] = a
        with pytest.raises(NotASpanningTreeError):
            check_parent_map(small_dense, parent)

    def test_check_distances(self, small_dense):
        edges = bfs_spanning_tree(small_dense)
        parent = parent_map_from_edges(small_dense.nodes, edges)
        root = next(v for v, p in parent.items() if v == p)
        distance = {root: 0}
        frontier = [root]
        while frontier:
            nxt = []
            for v in small_dense.nodes:
                if v not in distance and parent[v] in distance:
                    distance[v] = distance[parent[v]] + 1
                    nxt.append(v)
            frontier = nxt
        check_distances(parent, distance)
        distance[max(small_dense.nodes)] += 5
        with pytest.raises(NotASpanningTreeError):
            check_distances(parent, distance)

    def test_spanning_tree_violations_empty_for_valid(self, small_dense):
        assert spanning_tree_violations(small_dense, bfs_spanning_tree(small_dense)) == []

    def test_spanning_tree_violations_reports_problems(self, small_dense):
        problems = spanning_tree_violations(small_dense, [])
        assert problems  # wrong edge count + disconnected


def _canon(edges):
    return {tuple(sorted(e)) for e in edges}


class TestIO:
    def test_edge_list_round_trip(self, tmp_path, geometric14):
        path = tmp_path / "graph.edges"
        write_edge_list(geometric14, path)
        g = read_edge_list(path)
        assert _canon(g.edges) == _canon(geometric14.edges)
        assert g.number_of_nodes() == geometric14.number_of_nodes()

    def test_tree_round_trip(self, tmp_path, geometric14):
        path = tmp_path / "tree.edges"
        edges = bfs_spanning_tree(geometric14)
        write_tree(edges, path)
        assert read_tree(path) == edges

    def test_json_round_trip(self, tmp_path, small_dense):
        path = tmp_path / "graph.json"
        write_graph_json(small_dense, path)
        g = read_graph_json(path)
        assert _canon(g.edges) == _canon(small_dense.edges)

    def test_dict_round_trip(self, wheel8):
        g = graph_from_dict(graph_to_dict(wheel8))
        assert _canon(g.edges) == _canon(wheel8.edges)
        assert g.graph["family"] == "wheel"

    def test_read_edge_list_ignores_extra_columns(self, tmp_path):
        # Weighted/SNAP-style exports carry trailing columns; the first
        # two are the endpoints and the rest is ignored.
        path = tmp_path / "weighted.edges"
        path.write_text("1 2 3\n2 0 0.5\n", encoding="utf-8")
        g = read_edge_list(path)
        assert _canon(g.edges) == {(1, 2), (0, 2)}

    def test_read_edge_list_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("1\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)
        path.write_text("one two\n", encoding="utf-8")
        with pytest.raises(GraphError):
            read_edge_list(path)
