"""Tier-1 guards: the adversary axis must not disturb adversary-free runs.

Three invariants protect the cache and the committed experiment tables
across the v3 -> v4 schema bump:

* **Legacy compatibility** -- pre-v4 spec dicts (no adversary keys)
  deserialize to adversary-free specs; the new fields carry inert defaults.
* **Cache key discipline** -- v4 dicts round-trip exactly, the adversary
  knobs are part of the hashed payload (turning one on changes the key),
  and the schema version bump retired every v3 entry at once.
* **Byte identity** -- with no adversary configured, experiment rows are
  bit-for-bit what the pre-adversary code produced.  The default check
  replays a fast slice of E2's quick workload against a recorded digest;
  ``REPRO_E2_FULL_GUARD=1`` replays the whole E2 quick profile (~25s).
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.experiments.config import get_profile
from repro.experiments.workloads import scaling_workload
from repro.runtime.spec import CACHE_SCHEMA_VERSION, RunSpec, spec_key
from repro.runtime.tasks import run_protocol_task

#: md5 over the rows of the first three E2 quick-profile instances,
#: recorded while the full E1-E8 quick tables matched their pre-adversary
#: digests (see docs/experiments.md).
E2_FAST_SLICE_MD5 = "48c8c1fd2aebeb74f0b2b8102062df34"

#: md5 over the full E2 quick-profile row list (env-gated: ~25s).
E2_FULL_MD5 = "88fcf617654ea5cd99e8917fbede123d"

#: A spec dict exactly as schema v3 wrote it: no adversary keys.
LEGACY_V3_DICT = {
    "task": "protocol",
    "protocol": "mdst",
    "family": "erdos_renyi_sparse",
    "n": 16,
    "seed": 3,
    "scheduler": "synchronous",
    "initial": "isolated",
    "max_rounds": 500,
    "stability_window": 5,
    "enable_reduction": True,
    "fault_round": None,
    "fault_fraction": 0.3,
    "churn_rate": 0.0,
    "churn_start": 10,
    "churn_events": 0,
    "params": [],
}

ADVERSARY_FIELDS = ("loss_rate", "dup_rate", "reorder_rate", "crash_count",
                    "crash_round", "crash_recover", "byzantine_count",
                    "byzantine_start", "byzantine_rounds")


class TestSchemaCompatibility:
    def test_schema_version_covers_the_adversary_axis(self):
        # v4 introduced the adversary fields; later axes (v5: the kernel
        # backend) keep bumping the version, never reuse v3's.
        assert CACHE_SCHEMA_VERSION >= 4

    def test_legacy_v3_dict_loads_adversary_free(self):
        spec = RunSpec.from_dict(LEGACY_V3_DICT)
        assert not spec.adversary_enabled
        assert spec.build_adversary() is None
        assert "-adv" not in spec.label
        assert spec.loss_rate == 0.0 and spec.crash_count == 0
        assert spec.byzantine_count == 0

    def test_default_spec_round_trips_exactly(self):
        spec = RunSpec(task="protocol", family="wheel", n=12, seed=5)
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert spec_key(clone) == spec_key(spec)

    def test_v4_dict_carries_every_adversary_field(self):
        payload = RunSpec().to_dict()
        for name in ADVERSARY_FIELDS:
            assert name in payload

    def test_legacy_and_default_specs_hash_identically(self):
        """A v3 dict and the equivalent v4 spec share one cache entry."""
        legacy = RunSpec.from_dict(LEGACY_V3_DICT)
        explicit = RunSpec.from_dict({**LEGACY_V3_DICT,
                                      **{f: RunSpec().to_dict()[f]
                                         for f in ADVERSARY_FIELDS}})
        assert spec_key(legacy) == spec_key(explicit)

    @pytest.mark.parametrize("field,value", [
        ("loss_rate", 0.05), ("dup_rate", 0.05), ("reorder_rate", 0.1),
        ("crash_count", 1), ("byzantine_count", 1),
    ])
    def test_enabling_a_knob_changes_the_cache_key(self, field, value):
        from dataclasses import replace
        base = RunSpec(task="protocol", family="wheel", n=12, seed=5)
        assert spec_key(replace(base, **{field: value})) != spec_key(base)


class TestAdversaryFreeByteIdentity:
    def test_default_rows_carry_no_adversary_columns(self):
        """E1-E8 row shape: adversary columns appear only when enabled."""
        row = run_protocol_task(RunSpec(task="protocol", family="wheel",
                                        n=8, seed=1)).row
        assert not any(key.startswith("adversary") for key in row)

    def test_e2_fast_slice_is_byte_identical(self):
        profile = get_profile("quick")
        rows = [
            run_protocol_task(RunSpec(task="protocol", family=inst.family,
                                      n=inst.n, seed=inst.seed,
                                      initial="isolated",
                                      max_rounds=profile.max_rounds)).row
            for inst in list(scaling_workload(profile))[:3]
        ]
        digest = hashlib.md5(json.dumps(rows, sort_keys=True,
                                        default=str).encode()).hexdigest()
        assert digest == E2_FAST_SLICE_MD5

    @pytest.mark.skipif(not os.environ.get("REPRO_E2_FULL_GUARD"),
                        reason="slow full-profile guard; set "
                               "REPRO_E2_FULL_GUARD=1 to run")
    def test_e2_full_quick_profile_is_byte_identical(self):
        from repro.experiments import EXPERIMENTS

        rows = EXPERIMENTS["E2"]("quick").rows
        digest = hashlib.md5(json.dumps(rows, sort_keys=True,
                                        default=str).encode()).hexdigest()
        assert digest == E2_FULL_MD5
