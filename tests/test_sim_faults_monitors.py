"""Tests for repro.sim.faults, monitors and rng."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.sim import (
    AdversarialScheduler,
    ConvergenceMonitor,
    ClosureMonitor,
    FaultPlan,
    GarbageMessage,
    InvariantMonitor,
    Network,
    Simulator,
    corrupt_channels,
    corrupt_everything,
    corrupt_states,
    derive_seed,
    spawn_generators,
)
from repro.stabilization import (
    SpanningTreeProcess,
    spanning_tree_process_factory,
    st_legitimacy,
)


def _net(n=6):
    return Network(nx.cycle_graph(n), spanning_tree_process_factory(n_upper=n + 1))


class TestFaultInjection:
    def test_corrupt_all_states(self):
        net = _net()
        rng = np.random.default_rng(0)
        corrupted = corrupt_states(net, rng, fraction=1.0)
        assert sorted(corrupted) == net.node_ids

    def test_corrupt_fraction(self):
        net = _net(10)
        rng = np.random.default_rng(0)
        corrupted = corrupt_states(net, rng, fraction=0.5)
        assert len(corrupted) == 5

    def test_corrupt_explicit_nodes(self):
        net = _net()
        rng = np.random.default_rng(0)
        assert corrupt_states(net, rng, nodes=[1, 3]) == [1, 3]

    def test_corrupt_unknown_node_rejected(self):
        net = _net()
        with pytest.raises(ConfigurationError):
            corrupt_states(net, np.random.default_rng(0), nodes=[99])

    def test_corrupt_invalid_fraction_rejected(self):
        net = _net()
        with pytest.raises(ConfigurationError):
            corrupt_states(net, np.random.default_rng(0), fraction=1.5)

    def test_corrupt_channels_injects_garbage(self):
        net = _net()
        injected = corrupt_channels(net, np.random.default_rng(1), fraction=1.0)
        assert injected > 0
        assert net.pending_messages() == injected
        some_channel = next(c for c in net.channels.values() if c)
        assert isinstance(some_channel.peek(), GarbageMessage)

    def test_corrupt_everything_report(self):
        net = _net()
        report = corrupt_everything(net, np.random.default_rng(2))
        assert report["corrupted_nodes"] == len(net)

    def test_fault_plan_scheduling(self):
        plan = FaultPlan().add(5, node_fraction=0.5).add(9)
        assert plan.last_round == 9
        assert [e.round_index for e in plan.pending_at(5)] == [5]
        assert plan.pending_at(6) == []

    def test_fault_plan_apply_due(self):
        net = _net()
        plan = FaultPlan().add(2, node_fraction=1.0, channel_fraction=1.0)
        fired = plan.apply_due(net, np.random.default_rng(3), 2)
        assert len(fired) == 1
        assert net.pending_messages() > 0


class TestMonitors:
    def test_convergence_monitor_requires_window(self):
        net = _net()
        flags = iter([True, True, False, True, True, True, True])
        monitor = ConvergenceMonitor(lambda n: next(flags), stability_window=3)
        results = [monitor.observe(net, i) for i in range(7)]
        assert results[:5] == [False] * 5
        assert monitor.converged
        assert monitor.converged_round == 5
        assert monitor.first_hold_round == 3

    def test_convergence_monitor_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(lambda n: True, stability_window=0)

    def test_closure_monitor_records_violations(self):
        net = _net()
        closure = ClosureMonitor(lambda n: False)
        closure.observe(net, 1)       # not armed yet: no violation
        assert not closure.violated
        closure.arm()
        closure.observe(net, 2)
        assert closure.violations == [2]

    def test_invariant_monitor_collects_without_raise(self):
        net = _net()
        mon = InvariantMonitor([("always_bad", lambda n: "broken")],
                               raise_on_violation=False)
        mon.observe(net, 1)
        mon.observe(net, 2)
        assert len(mon.violations) == 2
        assert mon.violations[0].detail == "broken"


class TestAdversarialSchedulerWithFaults:
    """AdversarialScheduler + FaultPlan interaction (previously untested)."""

    def test_recovery_under_slow_links(self):
        """A mid-run fault under adversarially slow links still re-stabilizes."""
        n = 6
        net = _net(n)
        fault_round = 30
        plan = FaultPlan().add(fault_round, node_fraction=0.5)
        sched = AdversarialScheduler(slow_links=[(0, 1), (3, 2)], max_delay=3)
        sim = Simulator(net, scheduler=sched, legitimacy=st_legitimacy,
                        stability_window=3, fault_plan=plan,
                        rng=np.random.default_rng(7))
        report = sim.run(max_rounds=600)
        assert report.converged
        assert report.fault_rounds == [fault_round]
        # re-convergence is measured after the fault, never before it
        assert report.convergence_round is not None
        assert report.convergence_round > fault_round

    def test_fault_channel_garbage_released_by_slow_link(self):
        """Garbage injected on a slow link is withheld, then flushed, and the
        protocol still converges (FIFO + bounded delay preserved)."""
        net = _net(6)
        plan = FaultPlan().add(10, node_fraction=0.0, channel_fraction=1.0)
        sched = AdversarialScheduler(slow_links=[(1, 0)], max_delay=4)
        sim = Simulator(net, scheduler=sched, legitimacy=st_legitimacy,
                        stability_window=3, fault_plan=plan,
                        rng=np.random.default_rng(11))
        report = sim.run(max_rounds=600)
        assert report.converged
        assert net.pending_messages() == sum(len(c) for c in net.channels.values())

    def test_slow_link_ages_only_while_pending(self):
        """An empty slow link must not accumulate delay credit.

        The first gossip lands on the slow link during round 1, so the link
        is first seen non-empty (and starts aging) at round 2; the backlog
        must be withheld until exactly round ``1 + max_delay``.  A scheduler
        that aged the still-empty link during round 1 would release one
        round early.
        """
        max_delay = 3
        net = Network(nx.path_graph(2), spanning_tree_process_factory(n_upper=3))
        sched = AdversarialScheduler(slow_links=[(0, 1)], max_delay=max_delay)
        delivered_per_round = []
        for _ in range(1 + max_delay):
            sched.run_round(net)
            delivered_per_round.append(net.channel(0, 1).stats.delivered)
        # withheld through round max_delay, released exactly at 1 + max_delay
        assert delivered_per_round[:max_delay] == [0] * max_delay
        assert delivered_per_round[max_delay] > 0


class TestClosureMonitorRecording:
    """ClosureMonitor violation recording through the simulator."""

    def test_simulator_records_closure_violation(self):
        """A predicate that holds for a window and then breaks after
        convergence must surface as recorded closure violations."""
        net = _net(6)
        # Converges once every node knows root 0; later rounds break the
        # (artificial) predicate when total steps pass a threshold.
        def fickle(network):
            total = sum(p.steps_taken for p in network.processes.values())
            return total < 120
        sim = Simulator(net, legitimacy=fickle, stability_window=2,
                        cache_predicate=False)
        report = sim.run(max_rounds=40, extra_rounds_after_convergence=30)
        assert report.converged
        assert report.closure_violations, "violations after convergence must be recorded"
        # violations are only recorded once closure is armed (at convergence)
        assert min(report.closure_violations) > sim.monitor.converged_round

    def test_closure_monitor_not_active_before_arm(self):
        net = _net()
        closure = ClosureMonitor(lambda n: False)
        for r in range(3):
            closure.observe(net, r)
        assert closure.violations == []
        closure.arm()
        closure.observe(net, 3)
        closure.observe(net, 4)
        assert closure.violations == [3, 4]
        assert closure.violated

    def test_violations_stop_counting_when_predicate_recovers(self):
        net = _net()
        flags = iter([False, True, False])
        closure = ClosureMonitor(lambda n: next(flags))
        closure.arm()
        for r in (1, 2, 3):
            closure.observe(net, r)
        assert closure.violations == [1, 3]


class TestRng:
    def test_spawn_generators_deterministic(self):
        a = spawn_generators(42, ["x", "y"])
        b = spawn_generators(42, ["x", "y"])
        assert a["x"].integers(0, 1000) == b["x"].integers(0, 1000)

    def test_spawn_generators_independent_streams(self):
        gens = spawn_generators(42, ["x", "y"])
        assert gens["x"].integers(0, 10**9) != gens["y"].integers(0, 10**9)

    def test_derive_seed_stable(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
