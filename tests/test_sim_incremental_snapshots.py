"""Equivalence tests for the dirty-set incremental snapshot kernel.

The property at stake: after *any* interleaving of sends, deliveries,
corruptions, fault-style out-of-band writes, enable/disable toggles,
cache-churning snapshot reads **and live topology events** (node/edge churn
through the network mutation APIs), the incrementally maintained
``Network.snapshots()`` / ``Network.snapshot_key()`` must equal a
from-scratch recomputation -- against the network's own processes, against
a fresh identical network driven through the same operations, and against a
fresh network *built from the mutated graph* with the live state installed.

Also covers the satellites that ride on the same plumbing: the read-only
snapshot views, the targeted ``note_state_write(node)`` invalidation, the
O(1) quiescence counter and the interned gossip payload.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.messages import MInfo
from repro.core.protocol import MDSTConfig, build_mdst_network
from repro.graphs import make_graph
from repro.protocols import PROTOCOLS, ProtocolRunConfig
from repro.sim import Network, SynchronousScheduler
from repro.sim.faults import corrupt_channels, corrupt_states
from repro.sim.scheduler import RoundStats

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

FAMILIES = ("wheel", "cycle", "erdos_renyi_sparse", "two_hub")

#: Every registry entry runs through the equivalence property: the kernel's
#: incremental snapshot plumbing is protocol-agnostic and must stay correct
#: for any process type, not just the MDST node.
PROTOCOL_NAMES = ("mdst", "spanning_tree", "pif_max_degree")

#: Per-protocol targeted out-of-band state write (op code 6): each pokes a
#: snapshot-visible variable directly, bypassing the message layer, the way
#: a fault-injection hook would.
POKES = {
    "mdst": lambda proc, b, n: setattr(proc.s, "root", b % (n + 2)),
    "spanning_tree": lambda proc, b, n: setattr(proc.vars, "root", b % (n + 2)),
    "pif_max_degree": lambda proc, b, n: setattr(proc, "sub_max", b % (n + 2)),
}


def scratch_snapshots(net: Network) -> dict:
    """Per-node snapshots recomputed directly from the processes."""
    return {v: net.processes[v].snapshot() for v in net.node_ids}


def scratch_key(net: Network) -> tuple:
    """The canonical fingerprint recomputed from scratch (pre-refactor code)."""
    return tuple((v, tuple(sorted(snap.items())))
                 for v, snap in scratch_snapshots(net).items())


def build_net(family: str, n: int, seed: int, protocol: str = "mdst") -> Network:
    graph = make_graph(family, n, seed=seed)
    if protocol == "mdst":
        return build_mdst_network(graph, MDSTConfig(seed=seed))
    adapter = PROTOCOLS[protocol]
    return adapter.build_network(graph, ProtocolRunConfig(protocol=protocol,
                                                          seed=seed))


def apply_op(net: Network, sched: SynchronousScheduler, op: tuple, index: int,
             protocol: str = "mdst") -> None:
    """Apply one mutation/read operation; deterministic given (op, index).

    Topology operations (codes 10-13) stay connectivity-preserving so the
    mutated graph is always a legal :class:`Network` input.
    """
    code, a, b = op
    n = net.n
    v = net.node_ids[a % n]
    if code == 0:                                   # one synchronous round
        sched.run_round(net)
    elif code == 1:                                 # deliver one pending message
        deliveries = net.enabled_deliveries()
        if deliveries:
            src, dst, _ = deliveries[b % len(deliveries)]
            sched._deliver_one(net, src, dst, None, RoundStats())
    elif code == 2:                                 # timeout step of one node
        if net.node_enabled(v):
            sched._timeout_one(net, v, None, RoundStats())
    elif code == 3:                                 # transient fault: corrupt one node
        corrupt_states(net, np.random.default_rng(1000 + index), nodes=[v])
    elif code == 4:                                 # garbage on the channels
        corrupt_channels(net, np.random.default_rng(2000 + index), fraction=0.3)
    elif code == 5:                                 # enable/disable toggle
        net.set_node_enabled(v, not net.node_enabled(v))
    elif code == 6:                                 # targeted out-of-band write
        POKES[protocol](net.processes[v], b, n)
        net.note_state_write(v)
    elif code == 7:                                 # blanket out-of-band notification
        net.note_state_write()
    elif code == 8:                                 # churn the snapshot cache
        net.snapshots()
    elif code == 9:                                 # churn the key cache
        net.snapshot_key()
    elif code == 10:                                # topology: add an edge
        absent = sorted((u, w) for u in net.node_ids for w in net.node_ids
                        if u < w and not net.has_edge(u, w))
        if absent:
            net.add_edge(*absent[b % len(absent)])
    elif code == 11:                                # topology: remove a non-bridge edge
        bridges = {tuple(sorted(e)) for e in nx.bridges(net.graph)}
        removable = sorted(e for e in
                           (tuple(sorted(edge)) for edge in net.graph.edges)
                           if e not in bridges)
        if removable:
            net.remove_edge(*removable[b % len(removable)])
    elif code == 12:                                # topology: a node joins
        attach = sorted({net.node_ids[a % n], net.node_ids[b % n]})
        net.add_node(max(net.node_ids) + 1, attach)
    else:                                           # topology: a node leaves
        if net.n > 3:
            cut = set(nx.articulation_points(net.graph))
            leavable = [u for u in net.node_ids if u not in cut]
            if leavable:
                net.remove_node(leavable[a % len(leavable)])


ops_strategy = st.lists(
    st.tuples(st.integers(0, 13), st.integers(0, 63), st.integers(0, 63)),
    min_size=1, max_size=25)


class TestIncrementalEquivalence:
    @SETTINGS
    @given(protocol=st.sampled_from(PROTOCOL_NAMES),
           family=st.sampled_from(FAMILIES), n=st.integers(5, 9),
           seed=st.integers(0, 5), ops=ops_strategy)
    def test_matches_scratch_recomputation(self, protocol, family, n, seed, ops):
        net = build_net(family, n, seed, protocol)
        sched = SynchronousScheduler()
        for index, op in enumerate(ops):
            apply_op(net, sched, op, index, protocol)
            assert dict(net.snapshots()) == scratch_snapshots(net)
            assert net.snapshot_key() == scratch_key(net)

    @SETTINGS
    @given(protocol=st.sampled_from(PROTOCOL_NAMES),
           family=st.sampled_from(FAMILIES), n=st.integers(5, 9),
           seed=st.integers(0, 5), ops=ops_strategy)
    def test_matches_fresh_identical_network(self, protocol, family, n, seed, ops):
        """Replaying the ops on a fresh identical network yields the same
        snapshots and fingerprint, regardless of when each network's caches
        were (re)built."""
        net_a = build_net(family, n, seed, protocol)
        net_b = build_net(family, n, seed, protocol)
        sched_a = SynchronousScheduler()
        sched_b = SynchronousScheduler()
        for index, op in enumerate(ops):
            apply_op(net_a, sched_a, op, index, protocol)
        for index, op in enumerate(ops):
            apply_op(net_b, sched_b, op, index, protocol)
            net_b.snapshot_key()        # rebuild B's caches at every step
        assert dict(net_a.snapshots()) == dict(net_b.snapshots())
        assert net_a.snapshot_key() == net_b.snapshot_key()

    @SETTINGS
    @given(family=st.sampled_from(FAMILIES), n=st.integers(5, 9),
           seed=st.integers(0, 5), ops=ops_strategy)
    def test_matches_network_rebuilt_from_mutated_graph(self, family, n, seed, ops):
        """Post-churn cache coherence: after any interleaving of topology
        events, deliveries and corruptions, the live network's
        ``snapshots()``/``snapshot_key()`` equal those of a *fresh* network
        built from the mutated graph with the same protocol state installed
        -- no incremental structure leaks state from dead nodes or edges."""
        net = build_net(family, n, seed)
        sched = SynchronousScheduler()
        for index, op in enumerate(ops):
            apply_op(net, sched, op, index)
        fresh = Network(net.graph.copy(),
                        lambda v, nbrs: _clone_process(net.processes[v], nbrs))
        assert fresh.node_ids == net.node_ids
        assert fresh.adjacency == net.adjacency
        assert set(fresh.channels) == set(net.channels)
        assert dict(fresh.snapshots()) == dict(net.snapshots())
        assert fresh.snapshot_key() == net.snapshot_key()


def _clone_process(proc, neighbors):
    """A fresh MDSTNode over ``neighbors`` carrying ``proc``'s protocol state."""
    from repro.core.node_algorithm import MDSTNode

    clone = MDSTNode(proc.node_id, neighbors, n_upper=proc.n_upper)
    src, dst = proc.s, clone.s
    for name in ("root", "parent", "distance", "sub_max", "dmax", "color"):
        setattr(dst, name, getattr(src, name))
    assert set(src.view) == set(dst.view)
    for u, sv in src.view.items():
        dv = dst.view[u]
        for name in ("root", "parent", "distance", "degree", "sub_max",
                     "dmax", "color", "heard"):
            setattr(dv, name, getattr(sv, name))
    return clone


class TestReadOnlySnapshots:
    def test_outer_mapping_rejects_writes(self):
        net = build_net("wheel", 6, 0)
        snaps = net.snapshots()
        with pytest.raises(TypeError):
            snaps[0] = {}                           # type: ignore[index]

    def test_inner_mapping_rejects_writes(self):
        net = build_net("wheel", 6, 0)
        snaps = net.snapshots()
        with pytest.raises(TypeError):
            snaps[0]["root"] = 99                   # type: ignore[index]

    def test_misbehaving_reader_cannot_corrupt_the_cache(self):
        """Even a reader that defeats the proxy via dict() copies cannot
        reach the cached dicts: mutating the copy leaves the cache intact."""
        net = build_net("wheel", 6, 0)
        mutated = {v: dict(snap) for v, snap in net.snapshots().items()}
        mutated[0]["root"] = 12345
        assert dict(net.snapshots()) == scratch_snapshots(net)
        assert net.snapshots()[0]["root"] != 12345


class TestQuiescenceCounter:
    def test_tracks_ground_truth_across_a_run(self):
        net = build_net("erdos_renyi_sparse", 8, 3)
        sched = SynchronousScheduler()

        def scan(network: Network) -> bool:
            return (sum(len(c) for c in network.channels.values()) == 0
                    and all(len(p.outbox) == 0
                            for p in network.processes.values()))

        assert net.is_quiescent() == scan(net)
        for _ in range(6):
            sched.run_round(net)
            assert net.is_quiescent() == scan(net)

    def test_unflushed_outbox_blocks_quiescence(self):
        net = build_net("cycle", 5, 0)
        assert net.is_quiescent()
        net.processes[0].on_timeout()               # fills the outbox, no flush
        assert not net.is_quiescent()
        net.flush_outbox(0)                         # outbox -> channels
        assert not net.is_quiescent()
        while net.pending_messages():
            src, dst, _ = net.enabled_deliveries()[0]
            SynchronousScheduler._deliver_one(net, src, dst, None, RoundStats())
        # delivered messages may have triggered replies; drain fully
        for _ in range(200):
            if net.is_quiescent():
                break
            deliveries = net.enabled_deliveries()
            if not deliveries:
                break
            src, dst, _ = deliveries[0]
            SynchronousScheduler._deliver_one(net, src, dst, None, RoundStats())
        assert net.is_quiescent() == (
            net.pending_messages() == 0
            and all(len(p.outbox) == 0 for p in net.processes.values()))


class TestTargetedInvalidation:
    def test_note_state_write_single_node(self):
        net = build_net("wheel", 6, 0)
        net.snapshot_key()
        net.processes[3].s.distance = 41
        net.note_state_write(3)
        assert net.snapshot_key() == scratch_key(net)
        assert net.snapshots()[3]["distance"] == 41

    def test_unchanged_configuration_reuses_key_object(self):
        net = build_net("wheel", 6, 0)
        k0 = net.snapshot_key()
        net.note_state_write()                      # version bump, same state
        assert net.snapshot_key() is k0


class TestGossipInterning:
    def test_stable_state_reuses_minfo_object(self):
        net = build_net("cycle", 5, 0)
        node = net.processes[0]
        node.on_timeout()
        first = [m for _, m in node.outbox.drain() if isinstance(m, MInfo)]
        node.on_timeout()
        second = [m for _, m in node.outbox.drain() if isinstance(m, MInfo)]
        assert first and second
        # state did not change between the two gossips: same interned object
        assert first[0] is second[0]

    def test_changed_state_mints_a_new_minfo(self):
        net = build_net("cycle", 5, 0)
        node = net.processes[0]
        node.on_timeout()
        first = [m for _, m in node.outbox.drain() if isinstance(m, MInfo)][0]
        # Observable change that survives the pre-gossip refresh: neighbour 1
        # becomes a child, so the gossiped tree degree changes.
        view = node.s.view[1]
        view.heard = True
        view.parent = 0
        view.root = 0
        view.distance = 1
        node.on_timeout()
        second = [m for _, m in node.outbox.drain() if isinstance(m, MInfo)][0]
        assert second is not first
        assert second.degree != first.degree
