"""Tests for repro.sim.messages and repro.sim.channel."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.exceptions import ChannelError
from repro.sim import Channel, GarbageMessage, Message, estimate_bits, id_bits
from repro.core.messages import MInfo, Remove, Search


@dataclass(frozen=True)
class Ping(Message):
    value: int = 0


class TestMessageSizes:
    def test_id_bits_monotone(self):
        assert id_bits(2) <= id_bits(16) <= id_bits(1024)

    def test_estimate_bits_scalar_types(self):
        assert estimate_bits(None, 10) == 1
        assert estimate_bits(True, 10) == 1
        assert estimate_bits(7, 10) == id_bits(10)
        assert estimate_bits(1.5, 10) == 32

    def test_estimate_bits_containers(self):
        n = 16
        assert estimate_bits([1, 2, 3], n) == id_bits(n) + 3 * id_bits(n)
        assert estimate_bits({1: 2}, n) == id_bits(n) + 2 * id_bits(n)

    def test_message_size_includes_type_tag(self):
        assert Ping(value=3).size_bits(8) > id_bits(8)

    def test_info_message_size_constant_in_n(self):
        small = MInfo(root=0, parent=1, distance=2, degree=1, sub_max=2, dmax=2,
                      color=True).size_bits(8)
        large = MInfo(root=0, parent=1, distance=2, degree=1, sub_max=2, dmax=2,
                      color=True).size_bits(1024)
        # grows only logarithmically with n (same number of fields)
        assert large < 3 * small

    def test_search_message_size_grows_with_path(self):
        short = Search(init_edge=(1, 0), idblock=None, path=((0, 1),), visited=(0,))
        long = Search(init_edge=(1, 0), idblock=None,
                      path=tuple((i, 2) for i in range(20)),
                      visited=tuple(range(20)))
        assert long.size_bits(32) > short.size_bits(32)

    def test_type_name(self):
        assert Ping().type_name() == "Ping"
        assert GarbageMessage().type_name() == "GarbageMessage"


class TestChannel:
    def test_fifo_order(self):
        ch = Channel(0, 1, network_size=4)
        for i in range(5):
            ch.send(Ping(value=i))
        assert [ch.deliver().value for _ in range(5)] == list(range(5))

    def test_reject_self_loop(self):
        with pytest.raises(ChannelError):
            Channel(3, 3)

    def test_deliver_empty_raises(self):
        ch = Channel(0, 1)
        with pytest.raises(ChannelError):
            ch.deliver()

    def test_send_rejects_non_message(self):
        ch = Channel(0, 1)
        with pytest.raises(ChannelError):
            ch.send("not a message")  # type: ignore[arg-type]

    def test_peek_does_not_consume(self):
        ch = Channel(0, 1)
        ch.send(Ping(value=9))
        assert ch.peek().value == 9
        assert len(ch) == 1

    def test_stats_tracking(self):
        ch = Channel(0, 1, network_size=8)
        ch.send(Ping(value=1))
        ch.send(Ping(value=2))
        ch.deliver()
        assert ch.stats.sent == 2
        assert ch.stats.delivered == 1
        assert ch.stats.max_queue_length == 2
        assert ch.stats.max_message_bits > 0

    def test_preload_and_clear(self):
        ch = Channel(0, 1)
        ch.preload([GarbageMessage(), GarbageMessage()])
        assert len(ch) == 2
        ch.clear()
        assert not ch

    def test_preload_rejects_non_messages(self):
        ch = Channel(0, 1)
        with pytest.raises(ChannelError):
            ch.preload(["junk"])  # type: ignore[list-item]

    def test_endpoints(self):
        assert Channel(2, 5).endpoints == (2, 5)
