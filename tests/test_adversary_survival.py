"""The adversary survival matrix (PR 6 satellite).

Every registered protocol runs against every adversary model at low
intensity on three graph families, and must either re-converge within the
round budget or appear in :data:`EXPECTED_FAILURES` with a documented
reason.  The matrix is the executable form of the claim in
``docs/experiments.md``: the paper's protocols are self-stabilizing under
transient disruptions (channel noise, crash-recover, bounded Byzantine
windows) but *not* under permanent faults (crash-stop) when the legitimacy
predicate judges the whole configuration.

Intensities are deliberately low (one victim, 5-10% channel noise): the
matrix asserts *survival*, not stress limits -- the adversary benchmark
(``benchmarks/test_bench_adversary.py``) explores intensity scaling.
"""

from __future__ import annotations

import pytest

from repro.graphs import make_graph
from repro.protocols import ProtocolRunConfig, run_protocol
from repro.sim import (
    Adversary,
    ByzantineModel,
    NodeFaultModel,
    UnreliableChannelModel,
)

PROTOCOL_NAMES = ("mdst", "spanning_tree", "pif_max_degree")
FAMILIES = ("erdos_renyi_sparse", "random_geometric", "barabasi_albert")

#: The low-intensity adversary roster, one fresh instance per run (models
#: hold private rng state and cumulative counters).
MODELS = {
    "loss": lambda: Adversary(
        channel_model=UnreliableChannelModel(loss=0.05, seed=7)),
    "dup": lambda: Adversary(
        channel_model=UnreliableChannelModel(dup=0.05, seed=7)),
    "reorder": lambda: Adversary(
        channel_model=UnreliableChannelModel(reorder=0.1, seed=7)),
    "crash-recover": lambda: Adversary(
        node_faults=NodeFaultModel(crash_round=5, count=1, recover_after=5,
                                   seed=7)),
    "crash-stop": lambda: Adversary(
        node_faults=NodeFaultModel(crash_round=5, count=1, seed=7)),
    "byzantine": lambda: Adversary(
        byzantine=ByzantineModel(count=1, start_round=3, rounds=5, seed=7)),
}

#: ``(protocol, model, family)`` combinations that by design do NOT
#: re-converge, with the reason.  Self-stabilization masks *transient*
#: faults; crash-stop is permanent: the victim's frozen mid-protocol state
#: stays in the configuration forever, and the MDST legitimacy predicate
#: (tree + fragment + degree stages over *all* nodes) can never accept it.
#: The spanning-tree and PIF predicates tolerate the frozen node on these
#: instances because its pre-crash state already agrees with the stable
#: configuration the live nodes settle into.
EXPECTED_FAILURES = {
    ("mdst", "crash-stop", "erdos_renyi_sparse"): "permanent fault",
    ("mdst", "crash-stop", "random_geometric"): "permanent fault",
    ("mdst", "crash-stop", "barabasi_albert"): "permanent fault",
}


@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("model", sorted(MODELS))
@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_survival(protocol, model, family):
    graph = make_graph(family, 10, seed=1)
    config = ProtocolRunConfig(protocol=protocol, seed=2, max_rounds=500)
    result = run_protocol(graph, config, adversary=MODELS[model]())
    if (protocol, model, family) in EXPECTED_FAILURES:
        assert not result.converged, (
            f"{protocol} x {model} on {family} unexpectedly recovered; "
            "remove it from EXPECTED_FAILURES")
    else:
        assert result.converged, (
            f"{protocol} did not survive {model} on {family} "
            f"(ran {result.rounds} rounds)")


def test_expected_failures_only_name_real_combinations():
    """Guard against stale entries surviving a roster change."""
    for protocol, model, family in EXPECTED_FAILURES:
        assert protocol in PROTOCOL_NAMES
        assert model in MODELS
        assert family in FAMILIES
