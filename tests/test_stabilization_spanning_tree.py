"""Tests for the standalone self-stabilizing spanning-tree module (§3.2.1)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import make_graph
from repro.sim import (
    Network,
    RandomAsyncScheduler,
    Simulator,
    SynchronousScheduler,
    corrupt_everything,
)
from repro.stabilization import (
    SpanningTreeProcess,
    spanning_tree_process_factory,
    st_legitimacy,
)
from repro.stabilization.predicates import (
    extract_parent_map,
    parent_map_is_spanning_tree,
)


def build(graph, n_upper=None):
    n_upper = n_upper or graph.number_of_nodes() + 1
    return Network(graph, spanning_tree_process_factory(n_upper=n_upper))


def run_to_convergence(net, scheduler=None, max_rounds=400):
    sim = Simulator(net, scheduler=scheduler or SynchronousScheduler(),
                    legitimacy=st_legitimacy, stability_window=3)
    return sim.run(max_rounds=max_rounds)


class TestLocalPredicates:
    def test_initial_state_is_own_root(self):
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        assert proc.vars.root == 4 and proc.vars.parent == 4 and proc.vars.distance == 0
        assert proc.coherent_parent() and proc.coherent_distance()
        assert not proc.better_parent()

    def test_better_parent_after_hearing_smaller_root(self):
        proc = SpanningTreeProcess(4, [1, 2], n_upper=8)
        proc.on_message(1, __import__("repro.stabilization.spanning_tree",
                                      fromlist=["STInfo"]).STInfo(root=0, parent=1, distance=2))
        assert proc.vars.root == 0
        assert proc.vars.parent == 1
        assert proc.vars.distance == 3

    def test_distance_bound_forces_reset(self):
        proc = SpanningTreeProcess(4, [1], n_upper=5)
        proc.vars.distance = 10
        assert proc.new_root_candidate()
        proc.apply_rules()
        assert proc.vars.distance == 0 and proc.vars.root == 4

    def test_garbage_messages_are_ignored(self):
        from repro.sim import GarbageMessage
        proc = SpanningTreeProcess(4, [1], n_upper=8)
        before = proc.snapshot()
        proc.on_message(1, GarbageMessage())
        assert proc.snapshot() == before

    def test_state_bits_scale_with_degree(self):
        small = SpanningTreeProcess(0, [1], n_upper=8).state_bits(8)
        large = SpanningTreeProcess(0, list(range(1, 9)), n_upper=8).state_bits(8)
        assert large > small


class TestConvergence:
    @pytest.mark.parametrize("family,n", [("cycle", 8), ("grid", 9),
                                          ("erdos_renyi_dense", 10),
                                          ("random_geometric", 15)])
    def test_converges_from_clean_start(self, family, n):
        graph = make_graph(family, n, seed=1)
        net = build(graph)
        report = run_to_convergence(net)
        assert report.converged
        assert st_legitimacy(net)

    def test_resulting_tree_rooted_at_min_id(self):
        graph = make_graph("random_geometric", 12, seed=3)
        net = build(graph)
        run_to_convergence(net)
        snaps = net.snapshots()
        assert all(s["root"] == 0 for s in snaps.values())
        assert snaps[0]["parent"] == 0 and snaps[0]["distance"] == 0

    def test_distances_are_bfs_distances(self):
        graph = make_graph("grid", 9, seed=0)
        net = build(graph)
        run_to_convergence(net)
        snaps = net.snapshots()
        sp = nx.single_source_shortest_path_length(graph, 0)
        for v, snap in snaps.items():
            assert snap["distance"] == sp[v]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converges_from_corrupted_state(self, seed):
        graph = make_graph("erdos_renyi_sparse", 12, seed=seed)
        net = build(graph)
        corrupt_everything(net, np.random.default_rng(seed))
        report = run_to_convergence(net, max_rounds=800)
        assert report.converged
        assert parent_map_is_spanning_tree(net)

    def test_converges_under_random_scheduler(self):
        graph = make_graph("random_geometric", 12, seed=5)
        net = build(graph)
        corrupt_everything(net, np.random.default_rng(5))
        report = run_to_convergence(net, scheduler=RandomAsyncScheduler(seed=5),
                                    max_rounds=800)
        assert report.converged

    def test_closure_no_violations_after_convergence(self):
        graph = make_graph("cycle", 8)
        net = build(graph)
        sim = Simulator(net, legitimacy=st_legitimacy, stability_window=3)
        report = sim.run(max_rounds=200, extra_rounds_after_convergence=20)
        assert report.converged
        assert report.closure_violations == []

    def test_fake_root_is_eventually_evicted(self):
        """A root identifier smaller than every real id must not survive."""
        graph = make_graph("cycle", 8)
        net = build(graph)
        # Manually install a fake root -5 at two nodes with a consistent shape.
        for v in (3, 4):
            proc = net.processes[v]
            proc.vars.root = -5
            proc.vars.parent = 3 if v == 4 else 4
            proc.vars.distance = v
        report = run_to_convergence(net, max_rounds=600)
        assert report.converged
        assert all(s["root"] == 0 for s in net.snapshots().values())
