"""Tests for the activity-aware simulation kernel.

Covers the kernel features added by the kernel refactor: the configuration
version, per-node enabled flags, the enabled-event set, quiescence
detection, the weighted-fair scheduler, the predicate cache, and the
``first_hold_round`` reset after mid-run faults.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import SchedulerError, SimulationError
from repro.sim import (
    FaultPlan,
    Message,
    Network,
    PredicateCache,
    Process,
    Simulator,
    SynchronousScheduler,
    WeightedFairScheduler,
    make_scheduler,
)


@dataclass(frozen=True)
class Ping(Message):
    payload: int = 0


class CounterProcess(Process):
    """Greets all neighbours each timeout; counts receipts."""

    def __init__(self, node_id, neighbors):
        super().__init__(node_id, neighbors)
        self.received = 0

    def on_timeout(self):
        self.broadcast(Ping())

    def on_message(self, sender, message):
        self.received += 1

    def corrupt(self, rng):
        self.received = int(rng.integers(0, 100))

    def snapshot(self):
        return {"received": self.received}


class SilentProcess(Process):
    """Never sends anything (used for quiescence tests)."""

    def on_timeout(self):
        pass

    def on_message(self, sender, message):
        pass

    def snapshot(self):
        return {}


def counter_factory(node_id, neighbors):
    return CounterProcess(node_id, neighbors)


def silent_factory(node_id, neighbors):
    return SilentProcess(node_id, neighbors)


class TestConfigurationVersion:
    def test_send_and_deliver_bump_version(self):
        net = Network(nx.path_graph(2), counter_factory)
        v0 = net.version
        net.processes[0].on_timeout()
        net.flush_outbox(0)                    # one send
        assert net.version > v0
        v1 = net.version
        SynchronousScheduler().run_round(net)  # deliveries + timeouts
        assert net.version > v1

    def test_note_state_write_bumps_and_invalidates(self):
        net = Network(nx.path_graph(2), counter_factory)
        snaps = net.snapshots()
        assert net.snapshots() is snaps        # cached at same version
        net.processes[0].received = 7          # out-of-band mutation
        net.note_state_write()
        fresh = net.snapshots()
        assert fresh is not snaps
        assert fresh[0]["received"] == 7

    def test_snapshot_key_tracks_observable_state(self):
        net = Network(nx.path_graph(2), counter_factory)
        k0 = net.snapshot_key()
        net.note_state_write()                 # version bump, same state
        assert net.snapshot_key() == k0
        net.processes[1].received = 3
        net.note_state_write()
        assert net.snapshot_key() != k0


class TestEnabledEvents:
    def test_default_event_set(self):
        net = Network(nx.cycle_graph(3), counter_factory)
        events = net.enabled_events()
        assert events.timeouts == (0, 1, 2)
        assert events.deliveries == ()
        net.processes[0].on_timeout()
        net.flush_outbox(0)
        events = net.enabled_events()
        assert set(events.deliveries) == {(0, 1, 1), (0, 2, 1)}
        assert events.total == 5

    def test_pending_counters_stay_consistent(self):
        net = Network(nx.cycle_graph(4), counter_factory)
        sched = SynchronousScheduler()
        for _ in range(3):
            sched.run_round(net)
            assert net.pending_messages() == sum(len(c) for c in net.channels.values())
            active = {c.endpoints for c in net.pending_channels()}
            assert active == {k for k, c in net.channels.items() if c}

    def test_disabled_node_takes_no_steps(self):
        net = Network(nx.cycle_graph(3), counter_factory)
        net.set_node_enabled(1, False)
        sched = SynchronousScheduler()
        sched.run_round(net)  # everyone else gossips
        sched.run_round(net)  # deliveries happen, but not to node 1
        assert net.processes[1].steps_taken == 0
        assert net.processes[1].received == 0
        # messages addressed to the disabled node stay queued
        assert len(net.channel(0, 1)) > 0
        # re-enabling restores delivery
        net.set_node_enabled(1, True)
        sched.run_round(net)
        assert net.processes[1].received > 0

    def test_set_enabled_unknown_node_rejected(self):
        net = Network(nx.path_graph(2), counter_factory)
        with pytest.raises(SimulationError):
            net.set_node_enabled(99, False)


class TestQuiescence:
    def test_all_enabled_is_never_quiescent(self):
        net = Network(nx.path_graph(2), silent_factory)
        assert net.has_enabled_events()

    def test_all_disabled_silent_network_is_quiescent(self):
        net = Network(nx.path_graph(2), silent_factory)
        for v in net.node_ids:
            net.set_node_enabled(v, False)
        assert not net.has_enabled_events()

    def test_simulator_short_circuits_on_quiescence(self):
        net = Network(nx.path_graph(2), silent_factory)
        for v in net.node_ids:
            net.set_node_enabled(v, False)
        report = Simulator(net).run(max_rounds=1000)
        assert report.rounds == 0
        assert report.quiescent

    def test_pending_message_to_disabled_node_is_quiescent(self):
        net = Network(nx.path_graph(2), counter_factory)
        net.processes[0].on_timeout()
        net.flush_outbox(0)
        for v in net.node_ids:
            net.set_node_enabled(v, False)
        # the queued message cannot be delivered: no enabled event remains
        assert not net.has_enabled_events()

    def test_unflushable_outbox_is_quiescent(self):
        """With all nodes disabled an un-flushed outbox can never be flushed,
        so it must not keep the round loop alive."""
        net = Network(nx.path_graph(2), counter_factory)
        net.processes[0].on_timeout()  # fills the outbox, no flush
        for v in net.node_ids:
            net.set_node_enabled(v, False)
        assert not net.has_enabled_events()
        report = Simulator(net).run(max_rounds=1000)
        assert report.rounds == 0
        assert report.quiescent


class TestWeightedFairScheduler:
    def test_weights_multiply_timeouts(self):
        net = Network(nx.cycle_graph(4), counter_factory)
        sched = WeightedFairScheduler(weights={0: 3, 2: 2})
        stats = sched.run_round(net)
        assert stats.timeouts == 3 + 1 + 2 + 1
        assert net.processes[0].steps_taken == 3
        assert net.processes[1].steps_taken == 1

    def test_weak_fairness_every_node_steps(self):
        net = Network(nx.cycle_graph(5), counter_factory)
        sched = WeightedFairScheduler(weights={0: 4})
        sched.run_round(net)
        assert all(net.processes[v].steps_taken >= 1 for v in net.node_ids)

    def test_default_weight_matches_synchronous(self):
        g = nx.cycle_graph(4)
        a, b = Network(g, counter_factory), Network(g, counter_factory)
        sync, weighted = SynchronousScheduler(), WeightedFairScheduler()
        for _ in range(4):
            sa, sb = sync.run_round(a), weighted.run_round(b)
            assert (sa.steps, sa.deliveries, sa.timeouts) == (sb.steps, sb.deliveries, sb.timeouts)
        assert [a.processes[v].received for v in a.node_ids] == \
               [b.processes[v].received for v in b.node_ids]

    def test_invalid_weights_rejected(self):
        with pytest.raises(SchedulerError):
            WeightedFairScheduler(default_weight=0)
        net = Network(nx.path_graph(2), counter_factory)
        sched = WeightedFairScheduler(weights={0: 0})
        with pytest.raises(SchedulerError):
            sched.run_round(net)

    def test_factory_builds_weighted(self):
        sched = make_scheduler("weighted", weights={1: 2})
        assert isinstance(sched, WeightedFairScheduler)
        assert sched.weight(1) == 2
        assert sched.weight(0) == 1


class TestPredicateCache:
    def test_skips_reevaluation_on_unchanged_configuration(self):
        net = Network(nx.path_graph(2), silent_factory)
        calls = []
        cache = PredicateCache(lambda n: calls.append(1) or True)
        assert cache(net) is True
        assert cache(net) is True
        assert len(calls) == 1
        assert cache.hits == 1
        net.processes[0].received = 1  # SilentProcess has empty snapshot...
        net.note_state_write()
        assert cache(net) is True      # snapshot unchanged -> still cached
        assert len(calls) == 1

    def test_reevaluates_on_observable_change(self):
        net = Network(nx.path_graph(2), counter_factory)
        evals = []
        cache = PredicateCache(lambda n: evals.append(1) or n.processes[0].received >= 1)
        assert cache(net) is False
        net.processes[0].received = 1
        net.note_state_write()
        assert cache(net) is True
        assert len(evals) == 2

    def test_cached_and_uncached_runs_agree(self):
        """The cache may only skip redundant evaluations, never change results."""
        g = nx.cycle_graph(5)
        legit = lambda n: all(p.received >= 6 for p in n.processes.values())
        reports = []
        for cached in (True, False):
            net = Network(g, counter_factory)
            sim = Simulator(net, legitimacy=legit, stability_window=3,
                            cache_predicate=cached)
            reports.append(sim.run(max_rounds=50))
        a, b = reports
        assert (a.converged, a.rounds, a.convergence_round, a.steps,
                a.deliveries, a.messages_sent) == \
               (b.converged, b.rounds, b.convergence_round, b.steps,
                b.deliveries, b.messages_sent)
        assert a.predicate_cache_hits + a.predicate_evaluations >= b.rounds
        assert b.predicate_evaluations == 0  # uncached simulator reports zero


class TestLegitimacyMemoIsolation:
    def test_predicate_reuse_across_graphs_is_safe(self):
        """The tree-fixpoint memo of make_mdst_legitimacy is held per graph:
        the same edge set on a different graph must be re-judged."""
        from repro.core.legitimacy import make_mdst_legitimacy
        from repro.core.protocol import build_mdst_network, initialize_from_tree

        star_edges = [(0, 1), (0, 2), (0, 3)]
        g_star = nx.Graph(star_edges)
        g_chord = nx.Graph(star_edges + [(1, 2)])
        legit = make_mdst_legitimacy()
        net_star = build_mdst_network(g_star)
        initialize_from_tree(net_star, star_edges)
        assert legit(net_star)  # K1,3 star: no non-tree edge, fixpoint
        net_chord = build_mdst_network(g_chord)
        initialize_from_tree(net_chord, star_edges)
        # same induced tree edges, but the chord (1,2) makes the hub
        # improvable: a stale cross-graph memo hit would wrongly say True
        assert not legit(net_chord)


class TestFirstHoldRoundReset:
    def test_convergence_round_never_predates_last_fault(self):
        """Regression: a late fault that leaves the predicate holding must not
        let the reported convergence round predate the fault (the stale
        ``first_hold_round`` bug)."""
        net = Network(nx.cycle_graph(3), counter_factory)
        # A fault event that corrupts nothing: the predicate keeps holding
        # through it, which is exactly the scenario that leaked the stale
        # first_hold_round before the fix.
        plan = FaultPlan().add(round_index=5, node_fraction=0.0)
        sim = Simulator(net, legitimacy=lambda n: True, stability_window=2,
                        fault_plan=plan)
        report = sim.run(max_rounds=100)
        assert report.converged
        assert report.fault_rounds == [5]
        assert report.convergence_round is not None
        assert report.convergence_round >= 5

    def test_reset_stability_clears_everything(self):
        from repro.sim import ConvergenceMonitor
        net = Network(nx.path_graph(2), counter_factory)
        monitor = ConvergenceMonitor(lambda n: True, stability_window=1)
        monitor.observe(net, 1)
        assert monitor.converged and monitor.first_hold_round == 1
        monitor.reset_stability()
        assert not monitor.converged
        assert monitor.consecutive_holds == 0
        assert monitor.first_hold_round is None
