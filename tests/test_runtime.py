"""Tests for the parallel sweep engine (specs, tasks, cache, execution).

The determinism tests are the load-bearing ones: the engine's contract is
that the worker count never changes results, and that a cached re-run is a
pure lookup.  They run on deliberately tiny graphs so the whole module
stays fast.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import run_workload, workload_records
from repro.experiments.workloads import WorkloadInstance
from repro.runtime import (
    ResultCache,
    RunOutcome,
    RunSpec,
    SweepEngine,
    SweepSpec,
    execute_spec,
    run_sweep,
    spec_key,
    task_names,
)

FAST = dict(max_rounds=2000)


def tiny_sweep(**overrides) -> SweepSpec:
    base = dict(families=("wheel", "erdos_renyi_sparse"), sizes=(8,),
                repetitions=2, master_seed=7, max_rounds=2000)
    base.update(overrides)
    return SweepSpec(**base)


class TestRunSpec:
    def test_round_trip(self):
        spec = RunSpec(task="protocol", family="wheel", n=8, seed=3,
                       fault_round=10, params=(("k", 2),))
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            RunSpec.from_dict({"family": "wheel", "bogus": 1})

    def test_with_params_merges_sorted(self):
        spec = RunSpec(params=(("b", 2),)).with_params(a=1)
        assert spec.params == (("a", 1), ("b", 2))
        assert spec.param("a") == 1
        assert spec.param("missing", "dflt") == "dflt"

    def test_spec_key_stable_and_sensitive(self):
        spec = RunSpec(family="wheel", n=8, seed=3)
        assert spec_key(spec) == spec_key(RunSpec(family="wheel", n=8, seed=3))
        for changed in (dataclasses.replace(spec, seed=4),
                        dataclasses.replace(spec, max_rounds=999),
                        dataclasses.replace(spec, scheduler="random"),
                        spec.with_params(x=1)):
            assert spec_key(changed) != spec_key(spec)

    def test_mdst_config_mirrors_spec(self):
        cfg = RunSpec(seed=5, scheduler="random", initial="corrupted",
                      max_rounds=123).mdst_config()
        assert (cfg.seed, cfg.scheduler, cfg.initial, cfg.max_rounds) == \
            (5, "random", "corrupted", 123)

    def test_build_graph_matches_workload_instance(self):
        spec = RunSpec(family="erdos_renyi_sparse", n=12, seed=9)
        a, b = spec.build_graph(), WorkloadInstance("erdos_renyi_sparse", 12, 9).build()
        assert sorted(a.edges) == sorted(b.edges)


class TestSweepSpec:
    def test_expand_order_and_size(self):
        sweep = tiny_sweep(schedulers=("synchronous", "random"))
        specs = sweep.expand()
        assert len(specs) == 2 * 2 * 1 * 2
        # repetition-major, then family, then scheduler
        assert specs[0].family == "wheel" and specs[0].scheduler == "synchronous"
        assert specs[1].scheduler == "random"
        assert specs[2].family == "erdos_renyi_sparse"

    def test_seed_derivation_is_deterministic_and_stable(self):
        sweep = tiny_sweep()
        assert sweep.seed_for(0) == tiny_sweep().seed_for(0)
        assert sweep.seed_for(0) != sweep.seed_for(1)
        # adding repetitions never changes earlier seeds
        more = tiny_sweep(repetitions=5)
        assert [more.seed_for(r) for r in range(2)] == \
            [sweep.seed_for(r) for r in range(2)]

    def test_explicit_seeds_override_derivation(self):
        sweep = tiny_sweep(seeds=(11, 23))
        assert sweep.seed_for(0) == 11 and sweep.seed_for(2) == 11

    def test_expand_validates(self):
        with pytest.raises(ConfigurationError):
            tiny_sweep(repetitions=0).expand()
        with pytest.raises(ConfigurationError):
            tiny_sweep(families=()).expand()


class TestTasks:
    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_spec(RunSpec(task="nope"))

    def test_task_registry_covers_experiments(self):
        assert {"protocol", "reference", "memory", "quality", "baselines",
                "hub", "improvement"} <= set(task_names())

    def test_protocol_task_row_and_record(self):
        outcome = execute_spec(RunSpec(family="wheel", n=8, seed=3, **FAST))
        assert outcome.row["converged"] is True
        assert outcome.row["tree_degree"] <= 3
        assert outcome.record is not None
        assert outcome.record.nodes == 8
        assert not outcome.from_cache

    def test_outcome_json_round_trip(self):
        outcome = execute_spec(RunSpec(family="wheel", n=8, seed=3, **FAST))
        data = json.loads(json.dumps(outcome.to_dict()))
        clone = RunOutcome.from_dict(data)
        assert clone.spec == outcome.spec
        assert clone.record == outcome.record
        # JSON round-trip stringifies nothing in a protocol row
        assert clone.row == json.loads(json.dumps(outcome.row))

    def test_fault_round_perturbs_the_run_but_still_converges(self):
        base = RunSpec(family="wheel", n=8, seed=3, initial="bfs_tree", **FAST)
        faulty = dataclasses.replace(base, fault_round=5, fault_fraction=0.5)
        faulty_row = execute_spec(faulty).row
        assert faulty_row != execute_spec(base).row
        assert faulty_row["converged"] is True


class TestProtocolSpecs:
    """The protocol axis of the registry refactor (PR 5)."""

    def test_protocol_field_round_trips(self):
        spec = RunSpec(task="protocol", protocol="spanning_tree",
                       family="wheel", n=8, seed=3)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_legacy_spec_dicts_default_to_mdst(self):
        """Pre-registry spec dicts (no 'protocol' key) still load."""
        legacy = RunSpec(family="wheel", n=8, seed=3).to_dict()
        del legacy["protocol"]
        assert RunSpec.from_dict(legacy).protocol == "mdst"

    def test_protocol_changes_the_cache_key(self):
        base = RunSpec(family="wheel", n=8, seed=3)
        other = dataclasses.replace(base, protocol="spanning_tree")
        assert spec_key(base) != spec_key(other)

    def test_label_tags_non_default_protocols_only(self):
        assert "spanning_tree" in RunSpec(protocol="spanning_tree").label
        assert "mdst" not in RunSpec().label

    @pytest.mark.parametrize("protocol", ["spanning_tree", "pif_max_degree"])
    def test_protocol_task_dispatches_on_registry(self, protocol):
        outcome = execute_spec(RunSpec(protocol=protocol, family="wheel",
                                       n=8, seed=3, **FAST))
        assert outcome.row["protocol"] == protocol
        assert outcome.row["converged"] is True
        assert outcome.record is not None

    def test_default_mdst_rows_keep_their_historical_shape(self):
        """Byte-identity contract: no 'protocol' column on default rows."""
        outcome = execute_spec(RunSpec(family="wheel", n=8, seed=3, **FAST))
        assert "protocol" not in outcome.row

    def test_throughput_task_dispatches_on_registry(self):
        outcome = execute_spec(RunSpec(task="throughput",
                                       protocol="spanning_tree",
                                       family="wheel", n=8, seed=3, **FAST))
        assert outcome.row["protocol"] == "spanning_tree"
        assert outcome.row["rounds_per_sec"] > 0

    @pytest.mark.parametrize("task", ["quality", "hub", "improvement",
                                      "memory", "reference", "baselines"])
    def test_mdst_only_tasks_reject_other_protocols(self, task):
        spec = RunSpec(task=task, protocol="spanning_tree", family="wheel",
                       n=8, seed=3)
        with pytest.raises(ConfigurationError, match="MDST-specific"):
            execute_spec(spec)

    def test_churn_task_rejects_non_churn_protocol(self):
        spec = RunSpec(task="churn", protocol="pif_max_degree",
                       family="wheel", n=8, seed=3,
                       churn_rate=0.1, churn_events=2)
        with pytest.raises(ConfigurationError, match="churn"):
            execute_spec(spec)

    def test_churn_task_runs_spanning_tree(self):
        spec = RunSpec(task="churn", protocol="spanning_tree",
                       family="erdos_renyi_sparse", n=12, seed=5,
                       churn_rate=0.1, churn_start=20, churn_events=3,
                       max_rounds=2000)
        row = execute_spec(spec).row
        assert row["protocol"] == "spanning_tree"
        assert row["converged"] is True
        assert row["churn_applied"] + row["churn_skipped"] == 3

    def test_sweep_expands_the_protocol_axis(self):
        sweep = tiny_sweep(protocols=("mdst", "spanning_tree"))
        specs = sweep.expand()
        assert len(specs) == 2 * 2 * 2
        assert [s.protocol for s in specs[:2]] == ["mdst", "spanning_tree"]
        # single-protocol default expands exactly as before
        assert all(s.protocol == "mdst" for s in tiny_sweep().expand())

    def test_sweep_forwards_fault_and_churn_knobs(self):
        sweep = tiny_sweep(task="churn", protocols=("spanning_tree",),
                           fault_round=15, churn_rate=0.1, churn_events=2)
        spec = sweep.expand()[0]
        assert spec.fault_round == 15
        assert spec.churn_rate == 0.1 and spec.churn_events == 2

    def test_cross_protocol_sweep_executes_deterministically(self):
        sweep = tiny_sweep(families=("wheel",), repetitions=1,
                           protocols=("mdst", "spanning_tree",
                                      "pif_max_degree"))
        a = SweepEngine(workers=1).report(sweep.expand()).rows
        b = SweepEngine(workers=1).report(sweep.expand()).rows
        assert a == b
        assert [row.get("protocol", "mdst") for row in a] == \
            ["mdst", "spanning_tree", "pif_max_degree"]


class TestChurnSpecs:
    def test_churn_fields_round_trip(self):
        spec = RunSpec(task="churn", family="erdos_renyi_sparse", n=12,
                       seed=5, churn_rate=0.05, churn_start=60,
                       churn_events=4)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert spec.churn_enabled
        assert spec.churn_period == 20

    def test_churn_params_change_the_cache_key(self):
        base = RunSpec(task="churn", churn_rate=0.05, churn_events=4)
        assert spec_key(base) != spec_key(dataclasses.replace(base, churn_rate=0.1))
        assert spec_key(base) != spec_key(dataclasses.replace(base, churn_events=5))
        assert spec_key(base) != spec_key(dataclasses.replace(base, churn_start=99))

    def test_build_churn_plan_deterministic_and_disabled_by_default(self):
        spec = RunSpec(task="churn", family="erdos_renyi_sparse", n=12,
                       seed=5, churn_rate=0.05, churn_start=60,
                       churn_events=4)
        graph = spec.build_graph()
        p1, p2 = spec.build_churn_plan(graph), spec.build_churn_plan(graph)
        assert p1.events == p2.events and len(p1.events) == 4
        assert [e.round_index for e in p1.events] == [60, 80, 100, 120]
        assert RunSpec().build_churn_plan(graph) is None

    def test_churn_task_executes_and_reports_recovery(self):
        spec = RunSpec(task="churn", family="erdos_renyi_sparse", n=12,
                       seed=5, max_rounds=4000, churn_rate=0.05,
                       churn_start=60, churn_events=3)
        outcome = execute_spec(spec)
        row = outcome.row
        assert row["churn_applied"] + row["churn_skipped"] == 3
        assert row["converged"] is True
        assert row["recovery_rounds"] is None or row["recovery_rounds"] >= 0
        assert row["rounds_per_sec"] > 0
        assert outcome.record is not None

    def test_churn_task_is_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        spec = RunSpec(task="churn", family="wheel", n=8, seed=3,
                       max_rounds=2000, churn_rate=0.1, churn_events=2)
        engine = SweepEngine(workers=1, cache=cache)
        engine.execute([spec])
        engine.execute([spec])
        assert engine.last_stats.cache_hits == 0


class TestEngineDeterminism:
    def test_same_seed_same_records_1_vs_n_workers(self):
        specs = tiny_sweep().expand()
        serial = SweepEngine(workers=1).execute(specs)
        parallel = SweepEngine(workers=4).execute(specs)
        assert [o.record for o in serial] == [o.record for o in parallel]
        assert [o.row for o in serial] == [o.row for o in parallel]

    def test_reports_byte_identical_across_worker_counts(self):
        specs = tiny_sweep().expand()
        json1 = SweepEngine(workers=1).report(specs).to_json()
        json4 = SweepEngine(workers=4).report(specs).to_json()
        assert json1.encode() == json4.encode()

    def test_stats_accounting(self):
        engine = SweepEngine(workers=1)
        engine.execute(tiny_sweep().expand())
        stats = engine.last_stats
        assert (stats.total, stats.executed, stats.cache_hits) == (4, 4, 0)

    def test_records_and_aggregate(self):
        engine = SweepEngine(workers=1)
        specs = tiny_sweep().expand()
        records = engine.records(specs)
        assert len(records) == len(specs)
        summary = engine.aggregate(specs)
        assert summary["runs"] == len(specs)
        assert summary["converged"] == len(specs)


class TestCache:
    def test_hit_after_put_and_incremental_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = tiny_sweep().expand()
        engine = SweepEngine(workers=1, cache=cache)
        first = engine.execute(specs)
        assert engine.last_stats.executed == len(specs)
        second = engine.execute(specs)
        assert engine.last_stats.executed == 0
        assert engine.last_stats.cache_hits == len(specs)
        assert all(o.from_cache for o in second)
        assert [o.record for o in first] == [o.record for o in second]

    def test_config_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(family="wheel", n=8, seed=3, **FAST)
        SweepEngine(workers=1, cache=cache).execute([spec])
        changed = dataclasses.replace(spec, max_rounds=1999)
        assert spec in cache
        assert changed not in cache
        engine = SweepEngine(workers=1, cache=cache)
        engine.execute([changed])
        assert engine.last_stats.executed == 1

    def test_throughput_task_is_never_cached(self, tmp_path):
        """Timing rows must always be fresh: the engine bypasses the cache
        for throughput specs even when one is configured."""
        cache = ResultCache(tmp_path)
        spec = RunSpec(task="throughput", family="wheel", n=8, seed=3, **FAST)
        engine = SweepEngine(workers=1, cache=cache)
        engine.execute([spec])
        assert spec not in cache
        engine.execute([spec])
        assert engine.last_stats.cache_hits == 0
        assert engine.last_stats.executed == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec(family="wheel", n=8, seed=3, **FAST)
        path = cache.put(execute_spec(spec))
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(spec) is None
        engine = SweepEngine(workers=1, cache=cache)
        engine.execute([spec])
        assert engine.last_stats.executed == 1
        # the fresh result was re-persisted over the corrupt entry
        assert cache.get(spec) is not None

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepEngine(workers=1, cache=cache).execute(tiny_sweep().expand())
        assert len(cache) == 4
        assert cache.clear() == 4
        assert len(cache) == 0


class TestConvenienceAPIs:
    def test_run_sweep_report(self):
        report = run_sweep(tiny_sweep(families=("wheel",), repetitions=1))
        assert report.experiment == "sweep"
        assert len(report.rows) == 1
        assert report.rows[0]["converged"] is True
        assert report.metadata["sweep"]["families"] == ["wheel"]

    def test_runner_dispatches_workloads_through_engine(self):
        instances = [WorkloadInstance("wheel", 8, 3),
                     WorkloadInstance("wheel", 8, 4)]
        outcomes = run_workload(instances, max_rounds=2000, workers=2)
        assert [o.spec.seed for o in outcomes] == [3, 4]
        records = workload_records(instances, max_rounds=2000)
        assert [o.record for o in outcomes] == records


class TestExperimentsThroughEngine:
    """E1-E8 accept workers/cache; parallel == serial on a tiny profile."""

    def test_e2_parallel_matches_serial_and_caches(self, tmp_path):
        from repro.experiments import experiment_e2_convergence
        from repro.experiments.config import ExperimentProfile
        tiny = ExperimentProfile(name="tiny", protocol_sizes=(8,),
                                 reference_sizes=(12,), exact_sizes=(6,),
                                 repetitions=1, max_rounds=1500, seeds=(5,),
                                 schedulers=("synchronous",))
        cache = ResultCache(tmp_path)
        serial = experiment_e2_convergence(tiny)
        parallel = experiment_e2_convergence(tiny, workers=4, cache=cache)
        assert serial.to_json() == parallel.to_json()
        # second run resolves entirely from cache and is still identical
        cached = experiment_e2_convergence(tiny, workers=1, cache=cache)
        assert cache.stats.hits >= len(serial.rows)
        assert cached.to_json() == serial.to_json()
